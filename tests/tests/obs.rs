//! Properties of the observability layer (`em-obs`): recorded span trees
//! are well-formed, counters sum across threads, the aggregated
//! [`em_obs::TraceReport`] structure is invariant to how work is
//! scheduled, and — the contract that lets the probes live in hot paths —
//! enabling observation never changes what the instrumented code computes.
//!
//! Obs state is process-global, so every test body runs under one
//! file-local lock and resets the recorder before measuring.

use em_obs::TraceReport;
use propcheck::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialize all obs-touching tests in this binary and start each one
/// from a clean, enabled recorder.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    em_obs::set_enabled(true);
    em_obs::reset();
    guard
}

/// Collect and disable (the inverse of [`guard`]'s setup).
fn finish() -> TraceReport {
    let report = em_obs::collect();
    em_obs::set_enabled(false);
    report
}

/// Enter a `width`-ary span tree of the given depth once: every node at
/// level `l` is a span named `c{j}` nested under its level-`l-1` parent.
fn run_span_tree(level: usize, depth: usize, width: usize) {
    if level == depth {
        return;
    }
    for j in 0..width {
        let _span = em_obs::span!(&format!("c{j}"));
        run_span_tree(level + 1, depth, width);
    }
}

/// One pool fan-out whose recorded structure must not depend on the
/// thread budget: tasks adopt the submitter's span context, so they
/// aggregate under `submit` wherever they actually run.
fn run_pool_workload(tasks: usize, budget: usize) {
    let _span = em_obs::span!("submit");
    em_pool::global().run(tasks, budget, &|i| {
        let _task = em_obs::span!("task");
        em_obs::counter!("prop/done", 1);
        if i % 2 == 0 {
            let _even = em_obs::span!("even");
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any nested execution produces a well-formed tree: one aggregated
    // node per distinct path, counts equal to the number of entries,
    // children preceded by their parents, depth consistent with the
    // path, and self time bounded by total time. Re-running the same
    // execution reproduces the structure projection exactly.
    #[test]
    fn span_trees_are_well_formed(
        depth in 1usize..4,
        width in 1usize..4,
        reps in 1u64..4,
    ) {
        let _g = guard();
        for _ in 0..reps {
            run_span_tree(0, depth, width);
        }
        let report = finish();

        // Distinct paths: width + width^2 + ... + width^depth.
        let expected: usize = (1..=depth).map(|d| width.pow(d as u32)).sum();
        prop_assert_eq!(report.spans.len(), expected);
        let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        prop_assert!(paths == sorted, "spans must be sorted by path");
        for s in &report.spans {
            // Each full path is entered exactly once per repetition.
            prop_assert!(s.count == reps, "path {}: count {} != reps {reps}", s.path, s.count);
            prop_assert_eq!(s.depth, s.path.split('/').count() - 1);
            prop_assert!(s.self_ns <= s.total_ns, "path {}", s.path);
            if s.depth > 0 {
                let parent = s.path.rsplit_once('/').unwrap().0;
                prop_assert!(
                    report.span(parent).is_some(),
                    "child {} has no aggregated parent",
                    s.path
                );
            }
        }

        // The structure projection is reproducible from scratch.
        let structure = report.structure();
        em_obs::set_enabled(true);
        em_obs::reset();
        for _ in 0..reps {
            run_span_tree(0, depth, width);
        }
        prop_assert_eq!(finish().structure(), structure);
    }

    // Counter increments from any number of threads sum exactly; gauges
    // keep the maximum observed value regardless of arrival order.
    #[test]
    fn counters_sum_and_gauges_max_across_threads(
        threads in 1usize..5,
        per_thread in 1u64..40,
    ) {
        let _g = guard();
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        em_obs::counter!("prop/sum", (t + 1) as u64);
                    }
                    em_obs::gauge!("prop/peak", (t + 1) as u64);
                });
            }
        });
        let report = finish();
        let expected: u64 = (1..=threads as u64).map(|t| t * per_thread).sum();
        prop_assert_eq!(
            report.counters,
            vec![("prop/sum".to_string(), expected)]
        );
        prop_assert_eq!(
            report.gauges,
            vec![("prop/peak".to_string(), threads as u64)]
        );
    }

    // The same fan-out traced with a 1-thread budget and a 4-thread
    // budget yields identical reports up to wall-clock: context
    // propagation anchors the tasks under the submitting span, and the
    // pool counts its batch once at submission.
    #[test]
    fn pool_trace_structure_is_budget_invariant(tasks in 1usize..12) {
        let _g = guard();
        run_pool_workload(tasks, 1);
        let sequential = finish();

        em_obs::set_enabled(true);
        em_obs::reset();
        run_pool_workload(tasks, 4);
        let concurrent = finish();

        prop_assert_eq!(sequential.structure(), concurrent.structure());
        let task = sequential.span("submit/task").expect("tasks recorded");
        prop_assert_eq!(task.count, tasks as u64);
        prop_assert!(sequential.span("task").is_none(), "task escaped its context");
    }
}

/// The acceptance property of the traced experiment driver: the same
/// seeded smoke suite traced at `--jobs 1` and `--jobs 4` aggregates to
/// bitwise-identical structure (span paths and counts, counters, gauges
/// — everything except nanoseconds). Store computations anchor at the
/// root precisely so that this holds even though *which* experiment pays
/// a shared miss differs between schedules.
#[test]
fn suite_trace_structure_is_jobs_invariant() {
    let _g = guard();
    let run = |jobs: usize| {
        em_obs::set_enabled(true);
        em_obs::reset();
        let session = em_eval::EvalSession::new(em_eval::ExperimentConfig::smoke());
        for r in em_eval::run_suite(&session, jobs) {
            r.result.expect("experiment failed");
        }
        finish()
    };
    let sequential = run(1);
    let concurrent = run(4);
    assert_eq!(
        sequential.structure(),
        concurrent.structure(),
        "trace structure must not depend on --jobs"
    );
    // The trace actually covers the pipeline: experiment spans, the
    // root-anchored store/matcher computations, and the CREW stages.
    for path in [
        "suite/T1",
        "store/explain",
        "store/context",
        "matcher/train",
        "store/explain/crew/cluster",
    ] {
        assert!(
            sequential.span(path).is_some(),
            "expected span {path} in the suite trace"
        );
    }
    assert!(
        sequential
            .counters
            .iter()
            .any(|(name, v)| name == "crew/explanations" && *v > 0),
        "crew explanation counter missing"
    );
}

/// Turning observation on must never change what the instrumented code
/// computes: a CREW explanation produced under full tracing is bitwise
/// identical to one produced with the recorder off.
#[test]
fn enabling_obs_never_changes_explanations() {
    use em_data::{EntityPair, Record, Schema};
    use em_matchers::Matcher;
    use std::sync::Arc;

    struct AnchorMatcher;
    impl Matcher for AnchorMatcher {
        fn name(&self) -> &str {
            "anchor"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            let l = em_text::tokenize(&pair.left().full_text());
            let r = em_text::tokenize(&pair.right().full_text());
            if l.iter().any(|t| t == "anchor") && r.iter().any(|t| t == "anchor") {
                0.95
            } else {
                0.05
            }
        }
    }

    let _g = guard();
    let schema = Arc::new(Schema::new(vec!["t"]));
    let pair = EntityPair::new(
        schema,
        Record::new(0, vec!["anchor alpha beta".into()]),
        Record::new(1, vec!["anchor gamma delta".into()]),
    )
    .unwrap();
    let corpus: Vec<Vec<String>> = vec![em_text::tokenize("anchor alpha beta gamma delta anchor")];
    let embeddings = Arc::new(
        em_embed::WordEmbeddings::train(
            corpus.iter().map(|v| v.as_slice()),
            em_embed::EmbeddingOptions {
                dimensions: 8,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let crew = crew_core::Crew::new(embeddings, crew_core::CrewOptions::default());

    let explain = |enabled: bool| {
        em_obs::set_enabled(enabled);
        em_obs::reset();
        crew.explain_clusters(&AnchorMatcher, &pair).unwrap()
    };
    let traced = explain(true);
    let report = finish();
    let quiet = explain(false);

    assert!(
        report.span("crew/perturb").is_some(),
        "tracing was on, the perturbation stage must be recorded"
    );
    let bits = |ws: &[f64]| ws.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&traced.word_level.weights),
        bits(&quiet.word_level.weights)
    );
    assert_eq!(traced.selected_k, quiet.selected_k);
    assert_eq!(traced.group_r2.to_bits(), quiet.group_r2.to_bits());
    assert_eq!(traced.silhouette.to_bits(), quiet.silhouette.to_bits());
    assert_eq!(traced.clusters.len(), quiet.clusters.len());
    for (t, q) in traced.clusters.iter().zip(&quiet.clusters) {
        assert_eq!(t.member_indices, q.member_indices);
        assert_eq!(t.weight.to_bits(), q.weight.to_bits());
    }
}
