//! Integration tests for the extension features: blocking → match →
//! explain pipeline, counterfactuals, global explanations and JSON export.

use crew_core::{
    cluster_explanation_to_json, explain_dataset, find_counterfactual, CounterfactualOptions, Crew,
    CrewOptions, PerturbOptions,
};
use em_data::{block, candidates_to_pairs, BlockingStrategy, Record};
use em_eval::{EvalContext, MatcherKind};
use em_synth::{Family, GeneratorConfig};
use std::sync::Arc;

fn ctx() -> EvalContext {
    EvalContext::prepare(
        Family::Products,
        GeneratorConfig {
            entities: 80,
            pairs: 200,
            match_rate: 0.25,
            seed: 21,
            ..Default::default()
        },
    )
    .unwrap()
}

fn fast_crew(ctx: &EvalContext) -> Crew {
    Crew::new(
        Arc::clone(&ctx.embeddings),
        CrewOptions {
            perturb: PerturbOptions {
                samples: 64,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[test]
fn blocking_recovers_true_matches() {
    let ctx = ctx();
    // Build raw tables from the dataset's pairs; the i-th left and right
    // records of a match pair describe the same entity.
    let matches: Vec<_> = ctx
        .dataset
        .examples()
        .iter()
        .filter(|e| e.label.is_match())
        .take(30)
        .collect();
    let left: Vec<Record> = matches.iter().map(|e| e.pair.left().clone()).collect();
    let right: Vec<Record> = matches.iter().map(|e| e.pair.right().clone()).collect();
    let schema = ctx.dataset.schema_arc();

    let res = block(
        &schema,
        &left,
        &right,
        &BlockingStrategy::TokenOverlap { min_shared: 3 },
    )
    .unwrap();
    // Recall of blocking on the aligned (i, i) truth pairs.
    let recalled = (0..left.len())
        .filter(|&i| res.candidates.contains(&(i, i)))
        .count();
    assert!(
        recalled as f64 / left.len() as f64 > 0.8,
        "blocking recall too low: {recalled}/{}",
        left.len()
    );
    // And it prunes the cross product.
    assert!(res.reduction_ratio(left.len(), right.len()) > 0.3);

    // Materialised candidates are explainable end to end.
    let pairs = candidates_to_pairs(
        &schema,
        &left,
        &right,
        &res.candidates[..3.min(res.candidates.len())],
    )
    .unwrap();
    let matcher = ctx.matcher(MatcherKind::Logistic).unwrap();
    let crew = fast_crew(&ctx);
    for p in &pairs {
        let ce = crew.explain_clusters(matcher.as_ref(), p).unwrap();
        assert!(!ce.clusters.is_empty());
    }
}

#[test]
fn counterfactuals_actually_flip_the_trained_matcher() {
    let ctx = ctx();
    let matcher = ctx.matcher(MatcherKind::Logistic).unwrap();
    let crew = fast_crew(&ctx);
    let mut flipped = 0;
    let mut tried = 0;
    for ex in ctx.pairs_to_explain(8) {
        let ce = crew.explain_clusters(matcher.as_ref(), &ex.pair).unwrap();
        let cf = find_counterfactual(
            matcher.as_ref(),
            &ex.pair,
            &ce,
            CounterfactualOptions {
                max_removals: ce.clusters.len(),
            },
        )
        .unwrap();
        tried += 1;
        if let Some(cf) = cf {
            flipped += 1;
            // Verify the flip is real: re-query the matcher on the pair.
            let before = matcher.predict(&ex.pair);
            let after = matcher.predict(&cf.flipped_pair);
            assert_ne!(before, after, "counterfactual did not flip");
        }
    }
    assert!(tried == 8);
    assert!(flipped >= 1, "no counterfactual found on any of 8 pairs");
}

#[test]
fn global_explanation_over_trained_matcher() {
    let ctx = ctx();
    let matcher = ctx.matcher(MatcherKind::Logistic).unwrap();
    let crew = fast_crew(&ctx);
    let sample = ctx.split.test.sample(10, 5);
    let g = explain_dataset(&crew, matcher.as_ref(), &sample, 10, 2).unwrap();
    assert_eq!(g.pairs_explained, 10);
    assert_eq!(g.attributes.len(), ctx.dataset.schema().len());
    // Attribute masses are sorted descending.
    for w in g.attributes.windows(2) {
        assert!(w[0].mean_abs_mass >= w[1].mean_abs_mass);
    }
    assert!(!g.recurring_words.is_empty());
    assert!(g.mean_clusters >= 1.0);
}

#[test]
fn json_export_is_valid_for_real_explanations() {
    let ctx = ctx();
    let matcher = ctx.matcher(MatcherKind::Logistic).unwrap();
    let crew = fast_crew(&ctx);
    for ex in ctx.pairs_to_explain(4) {
        let ce = crew.explain_clusters(matcher.as_ref(), &ex.pair).unwrap();
        let json = cluster_explanation_to_json(&ce, ex.pair.schema());
        assert!(
            crew_core::report::looks_like_valid_json(&json),
            "invalid JSON: {}",
            &json[..json.len().min(200)]
        );
        // Cluster count in the JSON matches the explanation.
        assert!(json.contains(&format!("\"selected_k\":{}", ce.selected_k)));
    }
}

#[test]
fn ensemble_is_explainable_and_calibrated() {
    let ctx = ctx();
    let members: Vec<Arc<dyn em_matchers::Matcher>> = vec![
        ctx.matcher(MatcherKind::Logistic).unwrap(),
        ctx.matcher(MatcherKind::Rules).unwrap(),
    ];
    let mut ensemble = em_matchers::EnsembleMatcher::uniform(members).unwrap();
    ensemble.calibrate(&ctx.split.validation);
    let quality = em_matchers::evaluate(&ensemble, &ctx.split.test);
    assert!(
        quality.f1 > 0.5,
        "calibrated ensemble too weak: {quality:?}"
    );
    let crew = fast_crew(&ctx);
    let pair = &ctx.pairs_to_explain(1)[0].pair;
    let ce = crew.explain_clusters(&ensemble, pair).unwrap();
    assert!(!ce.clusters.is_empty());
}
