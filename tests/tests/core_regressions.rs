//! Regression tests for the crew-core decision machinery on a seeded
//! synthetic family with a *trained* matcher (the crate's own unit tests
//! use planted toy models): counterfactuals found by
//! [`crew_core::find_counterfactual`] must actually flip the matcher's
//! thresholded decision, and the surrogate fidelity a fit reports must be
//! reproducible from the fit itself — never an overstatement.

use crew_core::{
    find_counterfactual, fit_word_surrogate, kernel_weight, CounterfactualOptions, Crew,
    CrewOptions, PerturbationSet, SurrogateOptions,
};
use em_data::TokenizedPair;
use em_eval::{EvalContext, MatcherKind};
use em_matchers::Matcher;
use em_synth::{Family, GeneratorConfig};
use std::sync::Arc;

/// One small seeded family with a trained logistic matcher — the
/// cheapest "real model on real-shaped data" configuration.
fn seeded_context() -> EvalContext {
    EvalContext::prepare(
        Family::Restaurants,
        GeneratorConfig {
            entities: 50,
            pairs: 120,
            match_rate: Family::Restaurants.standard_match_rate(),
            hard_negative_rate: 0.6,
            seed: 7,
        },
    )
    .unwrap()
}

fn crew_for(ctx: &EvalContext) -> Crew {
    Crew::new(Arc::clone(&ctx.embeddings), CrewOptions::default())
}

/// Recompute the weighted R² of a surrogate fit on its own perturbation
/// sample, from first principles (same kernel, same weighted mean).
fn recomputed_fidelity(
    set: &PerturbationSet,
    weights: &[f64],
    intercept: f64,
    kernel_width: f64,
) -> f64 {
    let k: Vec<f64> = set
        .kept_fraction
        .iter()
        .map(|&f| kernel_weight(f, kernel_width))
        .collect();
    let wsum: f64 = k.iter().sum();
    let ymean: f64 = set
        .responses
        .iter()
        .zip(&k)
        .map(|(&y, &w)| w / wsum * y)
        .sum();
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in 0..set.len() {
        let pred: f64 = intercept
            + set.masks[i]
                .iter()
                .zip(weights)
                .map(|(&kept, &w)| if kept { w } else { 0.0 })
                .sum::<f64>();
        ss_res += k[i] * (set.responses[i] - pred) * (set.responses[i] - pred);
        ss_tot += k[i] * (set.responses[i] - ymean) * (set.responses[i] - ymean);
    }
    if ss_tot <= f64::EPSILON {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(-1.0, 1.0)
    }
}

/// A counterfactual returned by the greedy search must realise an actual
/// decision flip of the trained matcher — before and after probabilities
/// on opposite sides of the threshold, and the stored flipped pair
/// reproducing the after-probability when re-queried.
#[test]
fn counterfactuals_flip_the_trained_matcher() {
    let ctx = seeded_context();
    let matcher = ctx.matcher(MatcherKind::Logistic).unwrap();
    let crew = crew_for(&ctx);
    let threshold = matcher.threshold();

    let mut flips = 0;
    let mut predicted_matches = 0;
    for labeled in ctx.pairs_to_explain(10) {
        let pair = &labeled.pair;
        let base = matcher.predict_proba(pair);
        let explanation = crew.explain_clusters(matcher.as_ref(), pair).unwrap();
        let cf = find_counterfactual(
            matcher.as_ref(),
            pair,
            &explanation,
            CounterfactualOptions {
                max_removals: explanation.clusters.len(),
            },
        )
        .unwrap();
        if base >= threshold {
            predicted_matches += 1;
        }
        let Some(cf) = cf else { continue };
        flips += 1;
        assert_eq!(cf.probability_before, base, "before-probability drifted");
        assert_ne!(
            cf.probability_before >= threshold,
            cf.probability_after >= threshold,
            "counterfactual did not cross the decision threshold"
        );
        // The stored pair must reproduce the flip when re-queried.
        let requeried = matcher.predict_proba(&cf.flipped_pair);
        assert_eq!(
            requeried.to_bits(),
            cf.probability_after.to_bits(),
            "flipped pair does not reproduce the after-probability"
        );
        assert!(cf.cost() >= 1 && cf.cost() <= explanation.clusters.len());
        assert!(
            !cf.removed_words.is_empty(),
            "a flip with no removed words is vacuous"
        );
        // Every removed word belongs to a removed cluster.
        let allowed: std::collections::HashSet<usize> = cf
            .removed_clusters
            .iter()
            .flat_map(|&ci| explanation.clusters[ci].member_indices.iter().copied())
            .collect();
        for w in &cf.removed_words {
            assert!(allowed.contains(w), "word {w} removed outside its clusters");
        }
    }
    assert!(
        predicted_matches > 0,
        "the stratified sample should contain predicted matches"
    );
    assert!(
        flips > 0,
        "no counterfactual flip found on the whole seeded sample"
    );
}

/// The fidelity (weighted R²) a surrogate fit reports must equal the
/// fidelity actually achieved by its weights on the perturbation sample
/// — recomputed from first principles — and CREW must propagate that
/// exact value into the explanation it emits.
#[test]
fn reported_surrogate_fidelity_is_reproducible() {
    let ctx = seeded_context();
    let matcher = ctx.matcher(MatcherKind::Logistic).unwrap();
    let crew = crew_for(&ctx);
    let surrogate = SurrogateOptions::default();

    for labeled in ctx.pairs_to_explain(4) {
        let tokenized = TokenizedPair::new(labeled.pair.clone());
        let set = crew.perturbation_set(matcher.as_ref(), &tokenized).unwrap();
        let fit = fit_word_surrogate(&set, &surrogate).unwrap();
        let achieved =
            recomputed_fidelity(&set, &fit.weights, fit.intercept, surrogate.kernel_width);
        assert!(
            (achieved - fit.r_squared).abs() < 1e-9,
            "reported R² {} is not the achieved fidelity {}",
            fit.r_squared,
            achieved
        );
        // The explanation carries the same value, not a recomputation.
        let explanation = crew.explain_clusters_with_set(&tokenized, &set).unwrap();
        assert_eq!(
            explanation.word_level.surrogate_r2.to_bits(),
            fit.r_squared.to_bits(),
            "explanation drifted from the surrogate fit"
        );
    }
}

/// On a matcher that *is* linear in the kept words, the surrogate must
/// report near-perfect fidelity — a floor for the estimator itself.
#[test]
fn linear_model_reaches_near_perfect_fidelity() {
    use em_data::{EntityPair, Record, Schema};

    struct LinearMatcher;
    impl Matcher for LinearMatcher {
        fn name(&self) -> &str {
            "linear"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            // 0.1 per word present across both sides (8 words → [0, 0.8]).
            let count = em_text::token_count(&pair.left().full_text())
                + em_text::token_count(&pair.right().full_text());
            count as f64 * 0.1
        }
    }

    let schema = Arc::new(Schema::new(vec!["t"]));
    let pair = EntityPair::new(
        schema,
        Record::new(0, vec!["alpha beta gamma delta".into()]),
        Record::new(1, vec!["epsilon zeta eta theta".into()]),
    )
    .unwrap();
    let tokenized = TokenizedPair::new(pair);
    let set = crew_core::perturb(
        &tokenized,
        &LinearMatcher,
        &crew_core::PerturbOptions {
            samples: 200,
            ..Default::default()
        },
    )
    .unwrap();
    let fit = fit_word_surrogate(&set, &SurrogateOptions::default()).unwrap();
    assert!(
        fit.r_squared > 0.99,
        "linear model fit only reached R² {}",
        fit.r_squared
    );
    // Every word's weight must be close to its true contribution.
    for (i, w) in fit.weights.iter().enumerate() {
        assert!(
            (w - 0.1).abs() < 0.05,
            "word {i} weight {w} far from the true 0.1"
        );
    }
}
