//! Properties of the byte-budgeted explanation stores: with eviction
//! enabled, served explanations are bitwise identical to the unbounded
//! store; the byte budget is never exceeded (asserted both on the store
//! accessors and on the `em-obs` evict/peak instrumentation); and an
//! evicted-then-recomputed entry equals its first computation exactly.

use crew_core::{Crew, CrewOptions};
use em_data::{EntityPair, TokenizedPair};
use em_eval::{pair_content_fingerprint, EvalContext, MatcherKind, SlotMap, StoreBudget};
use em_matchers::Matcher;
use em_stream::{explanation_fingerprint, StreamStores};
use em_synth::{record_collections, CollectionsConfig, Family, GeneratorConfig};
use propcheck::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};

/// The two explanation tests share the global obs registry and the
/// `stream_*` store names; serialize them so the gauge/counter
/// assertions see only their own run.
fn obs_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Shared context: matcher training is the expensive part, and one
/// trained matcher serves every case.
fn shared() -> &'static (EvalContext, Arc<dyn Matcher>) {
    static SHARED: OnceLock<(EvalContext, Arc<dyn Matcher>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let ctx = EvalContext::prepare(
            Family::Restaurants,
            GeneratorConfig {
                entities: 60,
                pairs: 150,
                ..Default::default()
            },
        )
        .expect("context prepares");
        let matcher = ctx.matcher(MatcherKind::Logistic).expect("matcher trains");
        (ctx, matcher)
    })
}

/// Distinct-content pairs drawn from a synthetic collection's true
/// duplicates (matched content, so explanations are non-degenerate).
fn workload(n: usize) -> Vec<EntityPair> {
    let c = record_collections(
        Family::Restaurants,
        CollectionsConfig {
            entities: n.max(8) * 2,
            duplicate_rate: 0.9,
            extra_right: 0,
            seed: 23,
        },
    )
    .expect("collections generate");
    c.true_matches
        .iter()
        .take(n)
        .map(|&(lid, rid)| {
            let left = c.left.iter().find(|r| r.id == lid).unwrap().clone();
            let right = c.right.iter().find(|r| r.id == rid).unwrap().clone();
            EntityPair::new(Arc::clone(&c.schema), left, right).expect("schema matches")
        })
        .collect()
}

fn crew() -> Crew {
    let (ctx, _) = shared();
    Crew::new(
        ctx.embeddings.clone(),
        CrewOptions {
            perturb: crew_core::PerturbOptions {
                samples: 32,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

fn explain_all(stores: &StreamStores, pairs: &[EntityPair]) -> Vec<u64> {
    let (_, matcher) = shared();
    let crew = crew();
    pairs
        .iter()
        .map(|pair| {
            let tokenized = TokenizedPair::new(pair.clone());
            let ce = stores
                .explain(
                    &crew,
                    matcher.as_ref(),
                    &tokenized,
                    pair_content_fingerprint(pair),
                )
                .expect("explanation succeeds");
            explanation_fingerprint(&ce)
        })
        .collect()
}

/// A budget sized from a probe explanation so roughly `keep` perturbation
/// sets fit — small enough to force eviction on a ~10-pair workload.
fn tiny_budget(pairs: &[EntityPair], keep: usize) -> StoreBudget {
    let probe = StreamStores::unbounded();
    let _ = explain_all(&probe, &pairs[..1]);
    let (_, matcher) = shared();
    let crew = crew();
    let tokenized = TokenizedPair::new(pairs[0].clone());
    let set = crew
        .perturbation_set(matcher.as_ref(), &tokenized)
        .expect("probe set");
    let per_set = set.approx_bytes();
    // explanation_bytes is 1/4 of the total, perturbation_bytes 3/4.
    StoreBudget::total(per_set * keep * 4 / 3)
}

#[test]
fn bounded_store_serves_bitwise_identical_explanations() {
    let _guard = obs_lock().lock().unwrap();
    let pairs = workload(10);
    let unbounded = StreamStores::unbounded();
    let expected = explain_all(&unbounded, &pairs);

    let budget = tiny_budget(&pairs, 3);
    let bounded = StreamStores::bounded(budget);
    // Two passes: the second revisits keys whose entries were evicted by
    // the first, exercising the recompute path.
    let first = explain_all(&bounded, &pairs);
    let second = explain_all(&bounded, &pairs);

    assert_eq!(expected, first, "bounded pass 1 diverged from unbounded");
    assert_eq!(expected, second, "evicted-then-recomputed entries diverged");
    let stats = bounded.perturbation_stats();
    assert!(
        stats.evictions > 0,
        "budget was meant to force evictions, got {stats}"
    );
    let total = budget.explanation_bytes + budget.perturbation_bytes;
    assert!(
        bounded.peak_bytes() <= total,
        "peak {} exceeded budget {total}",
        bounded.peak_bytes()
    );
}

#[test]
fn bounded_store_reports_budget_through_obs_gauges() {
    let _guard = obs_lock().lock().unwrap();
    let pairs = workload(8);
    let budget = tiny_budget(&pairs, 2);
    let bounded = StreamStores::bounded(budget);

    em_obs::reset();
    em_obs::set_enabled(true);
    let _ = explain_all(&bounded, &pairs);
    em_obs::set_enabled(false);
    let report = em_obs::collect();

    let gauge = |name: &str| {
        report
            .gauges
            .iter()
            .find(|(g, _)| g == name)
            .map(|&(_, v)| v)
    };
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|(c, _)| c == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let peak =
        gauge("store/stream_perturb/bytes_peak").expect("bounded store publishes its peak gauge");
    assert!(
        peak <= budget.perturbation_bytes as u64,
        "gauged peak {peak} exceeds budget {}",
        budget.perturbation_bytes
    );
    assert!(
        counter("store/stream_perturb/evict") > 0,
        "expected evictions on a two-set budget"
    );
    assert_eq!(
        counter("store/stream_perturb/miss"),
        pairs.len() as u64,
        "every distinct-content pair misses once in a single pass"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Pure SlotMap property: under an arbitrary access sequence the
    // resident size never exceeds the budget, values served equal fresh
    // computation, and oversized values are computed but not retained.
    #[test]
    fn slot_map_budget_holds_under_arbitrary_access(
        budget in 64usize..2048,
        keys in propcheck::collection::vec(0u64..32, 1..120),
    ) {
        let map: SlotMap<u64, Vec<u8>> =
            SlotMap::bounded("bounded_prop", |v| v.len(), budget);
        for &k in &keys {
            // Value size is a pure function of the key, so recomputation
            // after eviction must reproduce it exactly.
            let size = (k as usize * 37) % 512;
            let value = map
                .get_or_compute::<std::convert::Infallible>(&k, || Ok(vec![k as u8; size]))
                .unwrap();
            let fresh = vec![k as u8; size];
            prop_assert_eq!(value.as_slice(), fresh.as_slice());
            prop_assert!(map.resident_bytes() <= budget);
        }
        prop_assert!(map.peak_bytes() <= budget);
        let stats = map.stats();
        prop_assert_eq!(stats.hits + stats.misses, keys.len());
    }
}
