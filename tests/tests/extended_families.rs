//! End-to-end checks on the extended dataset families (electronics,
//! scholar) and on calibrated matchers inside the explanation pipeline.

use crew_core::{Crew, CrewOptions, PerturbOptions};
use em_eval::{EvalContext, MatcherKind};
use em_synth::{generate, Family, GeneratorConfig};
use std::sync::Arc;

fn config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        entities: 80,
        pairs: 200,
        match_rate: 0.25,
        seed,
        ..Default::default()
    }
}

#[test]
fn electronics_family_trains_and_explains() {
    let ctx = EvalContext::prepare(Family::Electronics, config(2)).unwrap();
    assert_eq!(ctx.dataset.schema().len(), 5);
    let matcher = ctx.matcher(MatcherKind::Logistic).unwrap();
    let quality = em_matchers::evaluate(matcher.as_ref(), &ctx.split.test);
    assert!(
        quality.f1 > 0.7,
        "electronics matcher too weak: {quality:?}"
    );
    let crew = Crew::new(
        Arc::clone(&ctx.embeddings),
        CrewOptions {
            perturb: PerturbOptions {
                samples: 64,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let pair = &ctx.pairs_to_explain(1)[0].pair;
    let ce = crew.explain_clusters(matcher.as_ref(), pair).unwrap();
    assert!(!ce.clusters.is_empty());
}

#[test]
fn scholar_family_handles_missing_values_end_to_end() {
    let ctx = EvalContext::prepare(Family::Scholar, config(3)).unwrap();
    // Scholar entities sometimes have empty venue/year; the pipeline must
    // not choke on them.
    let has_empty = ctx
        .dataset
        .examples()
        .iter()
        .any(|ex| ex.pair.left().values().iter().any(|v| v.is_empty()));
    assert!(has_empty, "scholar should produce missing values");
    let matcher = ctx.matcher(MatcherKind::Logistic).unwrap();
    let quality = em_matchers::evaluate(matcher.as_ref(), &ctx.split.test);
    assert!(quality.f1 > 0.6, "scholar matcher too weak: {quality:?}");
    let crew = Crew::new(
        Arc::clone(&ctx.embeddings),
        CrewOptions {
            perturb: PerturbOptions {
                samples: 64,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    for ex in ctx.pairs_to_explain(3) {
        let ce = crew.explain_clusters(matcher.as_ref(), &ex.pair).unwrap();
        let n = ce.word_level.words.len();
        let covered: usize = ce.clusters.iter().map(|c| c.member_indices.len()).sum();
        assert_eq!(covered, n);
    }
}

#[test]
fn calibrated_matcher_is_explainable() {
    let d = generate(Family::Beers, config(5)).unwrap();
    let split = d.split(0.6, 0.2, 5).unwrap();
    let base = em_matchers::LogisticMatcher::fit(
        &split.train,
        &split.validation,
        em_matchers::TrainOptions::default(),
    )
    .unwrap();
    let calibrated = em_matchers::CalibratedMatcher::fit(base, &split.validation).unwrap();
    // ECE should be measurable and bounded.
    let ece = em_matchers::expected_calibration_error(&calibrated, &split.test, 10).unwrap();
    assert!((0.0..=1.0).contains(&ece));
    // Explanations work through the wrapper.
    let embeddings = Arc::new(
        em_embed::WordEmbeddings::train_on_dataset(
            &split.train,
            em_embed::EmbeddingOptions::default(),
        )
        .unwrap(),
    );
    let crew = Crew::new(
        embeddings,
        CrewOptions {
            perturb: PerturbOptions {
                samples: 64,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let pair = &split.test.examples()[0].pair;
    let ce = crew.explain_clusters(&calibrated, pair).unwrap();
    assert!(!ce.clusters.is_empty());
}

#[test]
fn extended_benchmark_is_deterministic() {
    let a = em_synth::extended_benchmark(9).unwrap();
    let b = em_synth::extended_benchmark(9).unwrap();
    assert_eq!(a.len(), 7);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name(), y.name());
        assert_eq!(x.len(), y.len());
        assert_eq!(x.match_count(), y.match_count());
    }
}
