//! Graceful-shutdown robustness for `em-serve`, with the `em-obs` span
//! tree as the witness. Lives in its own test binary because the obs
//! registry is process-global: enabling it here must not race the other
//! serve suites.
//!
//! The contract: `shutdown()` lets the in-flight request complete,
//! answers everything already queued (never drops an accepted request),
//! and closes the listener so the exact same address can be rebound
//! immediately. The collected trace must show the four serve roots
//! (`serve/accept`, `serve/parse`, `serve/coalesce`, `serve/query`) as
//! well-formed depth-0 spans with coherent counters.

use em_eval::ExperimentConfig;
use em_serve::{write_request, Connection, Limits, ServeOptions, ServeState, Server};
use em_synth::Family;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn explain_body(pair: &em_data::EntityPair) -> String {
    let side = |r: &em_data::Record| {
        let vals: Vec<String> = r
            .values()
            .iter()
            .map(|v| format!("\"{}\"", em_serve::escape_json(v)))
            .collect();
        format!("[{}]", vals.join(","))
    };
    format!(
        "{{\"pairs\":[{{\"left\":{},\"right\":{}}}]}}",
        side(pair.left()),
        side(pair.right())
    )
}

#[test]
fn shutdown_answers_queued_requests_releases_the_port_and_leaves_a_clean_trace() {
    em_obs::set_enabled(true);
    em_obs::reset();

    let state =
        Arc::new(ServeState::load(Family::Restaurants, ExperimentConfig::smoke()).expect("load"));
    let body = explain_body(&state.ctx.pairs_to_explain(1).remove(0).pair);

    // A long coalescing window guarantees the request is still QUEUED
    // (parked in the window, not yet dispatched) when shutdown starts.
    let mut server = Server::start(
        Arc::clone(&state),
        ServeOptions {
            window: Duration::from_millis(200),
            ..ServeOptions::default()
        },
    )
    .expect("server start");
    let addr = server.addr();

    let client = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut conn = Connection::new(stream);
        write_request(conn.stream_mut(), "POST", "/explain", body.as_bytes()).expect("write");
        conn.read_response(&Limits::default()).expect("response")
    });

    // Let the request land in the coalescing window, then pull the plug
    // mid-window. The drain must still answer it.
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();

    let resp = client.join().expect("client thread");
    assert_eq!(
        resp.status,
        200,
        "queued request dropped during shutdown: {}",
        String::from_utf8_lossy(&resp.body)
    );
    assert!(!resp.body.is_empty(), "empty body for a drained request");

    // Shutdown is idempotent.
    server.shutdown();

    // The listener is really closed: the exact same address rebinds.
    let reborn = Server::start(
        Arc::clone(&state),
        ServeOptions {
            addr: addr.to_string(),
            ..ServeOptions::default()
        },
    )
    .expect("rebinding the same address after shutdown must succeed");
    assert_eq!(reborn.addr(), addr);
    {
        let stream = TcpStream::connect(addr).expect("connect to reborn");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut conn = Connection::new(stream);
        write_request(conn.stream_mut(), "GET", "/health", b"").expect("write");
        let health = conn.read_response(&Limits::default()).expect("health");
        assert_eq!(health.status, 200);
    }
    drop(reborn); // Drop is a shutdown too.

    // The span tree: all four serve roots present, at depth 0, each
    // having fired at least once across the two server lifetimes.
    let report = em_obs::collect();
    em_obs::set_enabled(false);
    assert!(!report.is_empty(), "obs collected nothing");
    for root in [
        "serve/accept",
        "serve/parse",
        "serve/coalesce",
        "serve/query",
    ] {
        let span = report
            .span(root)
            .unwrap_or_else(|| panic!("span {root} missing from:\n{}", report.structure()));
        assert_eq!(span.depth, 0, "{root} is not a root span");
        assert!(span.count >= 1, "{root} never fired");
    }

    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    };
    // explain + health = at least two requests parsed.
    assert!(counter("serve/requests").expect("serve/requests counter") >= 2);
    assert!(counter("serve/batches").expect("serve/batches counter") >= 1);
    assert!(counter("serve/connections").expect("serve/connections counter") >= 2);
    // Always published, even when nothing merged in the window.
    assert!(
        counter("serve/coalesced").is_some(),
        "serve/coalesced counter missing"
    );
}
