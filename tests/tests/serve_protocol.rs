//! Property-test sweep over the `em-serve` wire layer: the HTTP/1.1
//! request parser and the in-tree JSON parser against adversarial byte
//! streams.
//!
//! The contract under test (see `crates/serve/src/http.rs`):
//! * any byte sequence yields a typed `ParseError` or a parsed request —
//!   never a panic, never an unbounded read;
//! * parsing is fragmentation-invariant: a stream delivered one byte at
//!   a time parses identically to the same bytes in one buffer;
//! * oversized heads/bodies fail `TooLarge`, truncated messages fail
//!   `Truncated`, malformed syntax fails `Malformed` — each mapping to a
//!   clean 4xx/close in the server.
//!
//! Shrunk counterexamples persist under `tests/propcheck-regressions/`
//! like the rest of the fuzz suites.

use em_serve::{escape_json, parse_json, Connection, Limits, ParseError, Request};
use propcheck::prelude::*;
use std::io::Read;

/// A transport that delivers at most `chunk` bytes per read — the
/// adversarial-fragmentation stand-in for TCP's lack of framing.
struct Chunked {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Chunked {
    fn new(data: Vec<u8>, chunk: usize) -> Self {
        Chunked {
            data,
            pos: 0,
            chunk: chunk.max(1),
        }
    }
}

impl Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(self.data.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn parse_whole(bytes: &[u8], limits: &Limits) -> Result<Option<Request>, ParseError> {
    Connection::new(std::io::Cursor::new(bytes.to_vec())).read_request(limits)
}

fn parse_chunked(
    bytes: &[u8],
    chunk: usize,
    limits: &Limits,
) -> Result<Option<Request>, ParseError> {
    Connection::new(Chunked::new(bytes.to_vec(), chunk)).read_request(limits)
}

/// A syntactically valid request assembled from generated parts; returns
/// the wire bytes plus the expected (method, path, body).
fn valid_request() -> impl Strategy<Value = (Vec<u8>, String, String, Vec<u8>)> {
    const METHODS: [&str; 4] = ["GET", "POST", "PUT", "DELETE"];
    (
        (0usize..4).prop_map(|i| METHODS[i].to_string()),
        "/[a-z0-9/_-]{0,20}",
        propcheck::collection::vec(0u8..=255u8, 0..64),
        propcheck::collection::vec(("[a-z][a-z0-9-]{0,10}", "[ -~]{0,20}"), 0..4),
    )
        .prop_map(|(method, path, body, extra_headers)| {
            let mut wire = format!("{method} {path} HTTP/1.1\r\n").into_bytes();
            for (name, value) in &extra_headers {
                // Generated names could collide with framing headers and
                // change the parse; prefix them out of the way.
                wire.extend_from_slice(format!("x-{name}: {value}\r\n").as_bytes());
            }
            wire.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
            wire.extend_from_slice(&body);
            (wire, method, path, body)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Arbitrary bytes: no panic, no hang, and fragmentation-invariant
    // behaviour (1-byte chunks give the same outcome as one buffer).
    #[test]
    fn arbitrary_bytes_never_panic_and_fragmentation_is_invisible(
        bytes in propcheck::collection::vec(0u8..=255u8, 0..300),
        chunk in 1usize..7,
    ) {
        let limits = Limits { max_head_bytes: 128, max_body_bytes: 128 };
        let whole = parse_whole(&bytes, &limits);
        let one_byte = parse_chunked(&bytes, 1, &limits);
        let chunked = parse_chunked(&bytes, chunk, &limits);
        prop_assert_eq!(&whole, &one_byte);
        prop_assert_eq!(&whole, &chunked);
    }

    // ASCII-biased garbage reaches deeper parser states (request lines,
    // header splits) than uniform bytes; same no-panic contract.
    #[test]
    fn ascii_garbage_never_panics(
        text in "[ -~\r\n]{0,200}",
        chunk in 1usize..5,
    ) {
        let limits = Limits::default();
        let whole = parse_whole(text.as_bytes(), &limits);
        let chunked = parse_chunked(text.as_bytes(), chunk, &limits);
        prop_assert_eq!(whole, chunked);
    }

    // Well-formed requests parse back to their parts, at any
    // fragmentation.
    #[test]
    fn valid_requests_roundtrip_under_fragmentation(
        (wire, method, path, body) in valid_request(),
        chunk in 1usize..9,
    ) {
        let limits = Limits::default();
        for req in [
            parse_whole(&wire, &limits),
            parse_chunked(&wire, chunk, &limits),
        ] {
            let req = req.expect("valid request must parse").expect("not EOF");
            prop_assert_eq!(&req.method, &method);
            prop_assert_eq!(&req.path, &path);
            prop_assert_eq!(&req.body, &body);
        }
    }

    // Any strict prefix of a valid request is a clean `Truncated` (or a
    // clean EOF for the empty prefix) — never a hang or panic.
    #[test]
    fn truncated_requests_fail_cleanly(
        (wire, _, _, _) in valid_request(),
        cut_ppm in 0u64..1_000_000,
    ) {
        let cut = (cut_ppm as usize * wire.len()) / 1_000_000;
        prop_assume!(cut < wire.len());
        let limits = Limits::default();
        let got = parse_whole(&wire[..cut], &limits);
        if cut == 0 {
            prop_assert_eq!(got, Ok(None));
        } else {
            prop_assert_eq!(got, Err(ParseError::Truncated));
        }
    }

    // Declared bodies beyond the cap are refused before any body byte
    // is read.
    #[test]
    fn oversized_declared_bodies_are_refused(extra in 1u64..1_000_000) {
        let limits = Limits { max_head_bytes: 16 * 1024, max_body_bytes: 64 };
        let wire = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            64 + extra
        );
        prop_assert_eq!(
            parse_whole(wire.as_bytes(), &limits),
            Err(ParseError::TooLarge("request body"))
        );
    }

    // Unterminated heads hit the head cap instead of buffering forever.
    #[test]
    fn unbounded_heads_hit_the_cap(len in 65usize..400, chunk in 1usize..5) {
        let limits = Limits { max_head_bytes: 64, max_body_bytes: 64 };
        let bytes = vec![b'A'; len];
        prop_assert_eq!(
            parse_chunked(&bytes, chunk, &limits),
            Err(ParseError::TooLarge("message head"))
        );
    }

    // Corrupted request lines are `Malformed`, not misparsed: valid
    // requests with the method lower-cased or the version mangled.
    #[test]
    fn corrupted_request_lines_are_malformed(
        path in "/[a-z0-9]{0,12}",
        version in "HTTP/[02-9]\\.[0-9]",
    ) {
        let limits = Limits::default();
        for wire in [
            format!("get {path} HTTP/1.1\r\n\r\n"),
            format!("GET {path} {version}\r\n\r\n"),
            format!("GET{path} HTTP/1.1\r\n\r\n"),
            format!("GET {path} HTTP/1.1 tail\r\n\r\n"),
        ] {
            let got = parse_whole(wire.as_bytes(), &limits);
            prop_assert!(
                matches!(got, Err(ParseError::Malformed(_))),
                "{wire:?} gave {got:?}"
            );
        }
    }

    // JSON parser: arbitrary text never panics; a document that parses
    // must re-render stable primitives.
    #[test]
    fn json_parser_survives_arbitrary_text(text in "[ -~\\r\\n\\t{}\\[\\]\":,0-9a-z\\\\]{0,150}") {
        let _ = parse_json(&text);
    }

    // Escaped strings round-trip through the JSON layer.
    #[test]
    fn json_strings_roundtrip(s in "[ -~]{0,40}") {
        let doc = format!("\"{}\"", escape_json(&s));
        let parsed = parse_json(&doc).expect("escaped string must parse");
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    // Nesting bombs error out instead of exhausting the stack.
    #[test]
    fn json_nesting_bombs_are_rejected(depth in 100usize..5_000) {
        let doc = "[".repeat(depth) + &"]".repeat(depth);
        prop_assert!(parse_json(&doc).is_err());
        let doc = "{\"a\":".repeat(depth) + "1" + &"}".repeat(depth);
        prop_assert!(parse_json(&doc).is_err());
    }
}
