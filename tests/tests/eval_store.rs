//! Equivalence properties of the memoized evaluation substrate
//! (`em_eval::store`): explanations served by the store must be bitwise
//! identical to fresh runs, the concurrent suite scheduler must emit the
//! same artifacts as a sequential sweep, and cache hits must report the
//! recorded cold-run latency instead of their (near-zero) lookup time.

use em_eval::{
    explain_pair_opts, EvalSession, ExperimentConfig, ExplainBudget, ExplainerKind,
    ExplanationOutput,
};
use propcheck::prelude::*;
use std::sync::{Arc, OnceLock};

/// One shared session for the property cases: context preparation and
/// matcher training are the expensive parts, and sharing them is exactly
/// the deployment shape of the store under test.
fn shared_session() -> &'static EvalSession {
    static SESSION: OnceLock<EvalSession> = OnceLock::new();
    SESSION.get_or_init(|| EvalSession::new(ExperimentConfig::smoke()))
}

fn assert_bitwise_equal(
    kind: ExplainerKind,
    stored: &ExplanationOutput,
    fresh: &ExplanationOutput,
) {
    let name = kind.label();
    assert_eq!(stored.kind, fresh.kind, "{name}: kind");
    let (sw, fw) = (&stored.word_level, &fresh.word_level);
    assert_eq!(sw.words.len(), fw.words.len(), "{name}: word count");
    let bits = |ws: &[f64]| ws.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&sw.weights), bits(&fw.weights), "{name}: weights");
    assert_eq!(
        sw.base_score.to_bits(),
        fw.base_score.to_bits(),
        "{name}: base score"
    );
    assert_eq!(
        sw.intercept.to_bits(),
        fw.intercept.to_bits(),
        "{name}: intercept"
    );
    assert_eq!(
        sw.surrogate_r2.to_bits(),
        fw.surrogate_r2.to_bits(),
        "{name}: surrogate R²"
    );
    assert_eq!(stored.units.len(), fresh.units.len(), "{name}: unit count");
    for (su, fu) in stored.units.iter().zip(&fresh.units) {
        assert_eq!(su.member_indices, fu.member_indices, "{name}: unit members");
        assert_eq!(
            su.weight.to_bits(),
            fu.weight.to_bits(),
            "{name}: unit weight"
        );
    }
    match (&stored.cluster_info, &fresh.cluster_info) {
        (None, None) => {}
        (Some((sk, sr, ss)), Some((fk, fr, fs))) => {
            assert_eq!(sk, fk, "{name}: selected K");
            assert_eq!(sr.to_bits(), fr.to_bits(), "{name}: group R²");
            assert_eq!(ss.to_bits(), fs.to_bits(), "{name}: silhouette");
        }
        _ => panic!("{name}: cluster_info presence differs"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any (explainer, pair, budget) the store serves is bitwise identical
    // to a fresh, uncached `explain_pair_opts` run with the same inputs.
    #[test]
    fn store_matches_fresh_run(
        kind_idx in 0usize..7,
        pair_idx in 0usize..3,
        samples in 16usize..48,
        seed in 0u64..4,
        threads in 1usize..3,
    ) {
        let session = shared_session();
        let kind = ExplainerKind::all()[kind_idx];
        let ctx = session.context(session.config().families[0]).unwrap();
        let pair = ctx.pairs_to_explain(3)[pair_idx].pair.clone();
        let budget = ExplainBudget { samples, seed, threads };
        let matcher = session.config().matcher;

        let stored = session
            .explanations()
            .explain(&ctx, matcher, kind, budget, &pair)
            .unwrap();
        let trained = ctx.matcher(matcher).unwrap();
        let fresh = explain_pair_opts(
            kind,
            &ctx,
            budget,
            trained.as_ref(),
            &pair,
            &crew_core::CrewOptions::default(),
        )
        .unwrap();
        assert_bitwise_equal(kind, &stored, &fresh);
    }

    // A hit returns the same entry as the miss that created it, and its
    // latency field still reports the recorded cold-run time (never the
    // near-zero lookup time).
    #[test]
    fn hits_report_recorded_cold_latency(
        kind_idx in 0usize..7,
        pair_idx in 0usize..3,
        seed in 4u64..8,
    ) {
        let session = shared_session();
        let kind = ExplainerKind::all()[kind_idx];
        let ctx = session.context(session.config().families[0]).unwrap();
        let pair = ctx.pairs_to_explain(3)[pair_idx].pair.clone();
        let budget = ExplainBudget { samples: 24, seed, threads: 1 };
        let matcher = session.config().matcher;
        let explain = || {
            session
                .explanations()
                .explain(&ctx, matcher, kind, budget, &pair)
                .unwrap()
        };

        let cold = explain();
        let hit = explain();
        prop_assert!(Arc::ptr_eq(&cold, &hit), "hit must return the cached entry");
        // A hit's latency must equal the recorded cold run, bit for bit.
        prop_assert_eq!(hit.elapsed.to_bits(), cold.elapsed.to_bits());
        prop_assert!(cold.elapsed > 0.0, "cold run records a real wall-clock");
    }
}

/// Columns whose values are wall-clock measurements; everything else in
/// every artifact must match byte for byte across schedules.
const TIMING_COLUMNS: [&str; 2] = ["secs/pair", "seconds"];

/// A CSV with its timing columns blanked (wall-clock is the one quantity
/// that legitimately varies between two executions of the same work).
fn mask_timing(csv: &str) -> String {
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().unwrap_or("").split(',').collect();
    let timing: Vec<usize> = header
        .iter()
        .enumerate()
        .filter(|(_, h)| TIMING_COLUMNS.contains(h))
        .map(|(i, _)| i)
        .collect();
    let mut out = vec![header.join(",")];
    for line in lines {
        let mut fields: Vec<&str> = line.split(',').collect();
        for &i in &timing {
            if i < fields.len() {
                fields[i] = "-";
            }
        }
        out.push(fields.join(","));
    }
    out.join("\n")
}

/// The concurrent scheduler must be a pure wall-clock optimization: a
/// 4-job run emits the experiments in the same order with byte-identical
/// tables (timing columns aside) as a sequential run, and serves every
/// store with the same hit/miss counts (a request either finds a value
/// or is its one computation, regardless of which runner gets there
/// first). Only the `coalesced` split — hits that blocked on an
/// in-flight miss — may differ, since it exists only under concurrency.
#[test]
fn concurrent_suite_matches_sequential() {
    let seq_session = EvalSession::new(ExperimentConfig::smoke());
    let con_session = EvalSession::new(ExperimentConfig::smoke());
    let sequential = em_eval::run_suite(&seq_session, 1);
    let concurrent = em_eval::run_suite(&con_session, 4);
    assert_eq!(sequential.len(), concurrent.len());
    assert_eq!(sequential.len(), em_eval::suite().len());
    for (s, c) in sequential.iter().zip(&concurrent) {
        assert_eq!(s.name, c.name, "suite order must not depend on jobs");
        let (st, ct) = (
            s.result.as_ref().expect("sequential run failed"),
            c.result.as_ref().expect("concurrent run failed"),
        );
        // The markdown report renders the same table, so CSV equality
        // covers both artifacts.
        assert_eq!(
            mask_timing(&st.to_csv()),
            mask_timing(&ct.to_csv()),
            "{}: concurrent CSV differs from sequential",
            s.name
        );
    }
    let hit_miss = |s: em_eval::store::StoreStats| (s.hits, s.misses);
    assert_eq!(
        hit_miss(seq_session.contexts().stats()),
        hit_miss(con_session.contexts().stats()),
        "context store hit/miss counts must not depend on jobs"
    );
    assert_eq!(
        hit_miss(seq_session.explanations().stats()),
        hit_miss(con_session.explanations().stats()),
        "explanation store hit/miss counts must not depend on jobs"
    );
    assert_eq!(
        hit_miss(seq_session.explanations().perturbation_stats()),
        hit_miss(con_session.explanations().perturbation_stats()),
        "perturbation store hit/miss counts must not depend on jobs"
    );
    assert_eq!(
        seq_session.contexts().stats().coalesced,
        0,
        "a sequential run cannot coalesce"
    );
}
