//! End-to-end pipeline tests: synthetic data → trained matcher → CREW
//! explanation → metrics, plus whole-pipeline determinism.

use crew_core::{Crew, CrewOptions, MaskStrategy, PerturbOptions};
use em_data::TokenizedPair;
use em_eval::{EvalContext, MatcherKind};
use em_synth::{Family, GeneratorConfig};
use std::sync::Arc;

fn ctx(seed: u64) -> EvalContext {
    EvalContext::prepare(
        Family::Products,
        GeneratorConfig {
            entities: 80,
            pairs: 200,
            match_rate: 0.25,
            seed,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn full_pipeline_products_attention_crew() {
    let ctx = ctx(3);
    let matcher = ctx.matcher(MatcherKind::Attention).unwrap();
    // The matcher must be usable.
    let quality = em_matchers::evaluate(matcher.as_ref(), &ctx.split.test);
    assert!(quality.f1 > 0.6, "attention matcher too weak: {quality:?}");

    let crew = Crew::new(Arc::clone(&ctx.embeddings), CrewOptions::default());
    let mut explained = 0;
    for ex in ctx.pairs_to_explain(5) {
        let ce = crew.explain_clusters(matcher.as_ref(), &ex.pair).unwrap();
        let n_words = ce.word_level.words.len();
        // Partition invariants.
        let covered: usize = ce.clusters.iter().map(|c| c.member_indices.len()).sum();
        assert_eq!(covered, n_words);
        assert!(ce.selected_k <= 10);
        assert!(ce.selected_k < n_words || n_words == 1);
        // Metrics run without error on the cluster units.
        let tokenized = TokenizedPair::new(ex.pair.clone());
        let aopc = em_metrics::aopc_deletion(
            matcher.as_ref(),
            &tokenized,
            &ce.units(),
            &em_metrics::standard_fractions(),
        )
        .unwrap();
        assert!(aopc.is_finite());
        explained += 1;
    }
    assert_eq!(explained, 5);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let ctx = ctx(9);
        let matcher = ctx.matcher(MatcherKind::Logistic).unwrap();
        let crew = Crew::new(
            Arc::clone(&ctx.embeddings),
            CrewOptions {
                perturb: PerturbOptions {
                    samples: 64,
                    strategy: MaskStrategy::AttributeStratified,
                    seed: 5,
                    threads: 2,
                },
                ..Default::default()
            },
        );
        let pair = &ctx.pairs_to_explain(1)[0].pair;
        let ce = crew.explain_clusters(matcher.as_ref(), pair).unwrap();
        (
            ce.selected_k,
            ce.group_r2,
            ce.word_level.weights.clone(),
            ce.clusters
                .iter()
                .map(|c| c.member_indices.clone())
                .collect::<Vec<_>>(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn every_matcher_kind_is_explainable() {
    let ctx = ctx(11);
    let pair = ctx.pairs_to_explain(1)[0].pair.clone();
    for kind in MatcherKind::all() {
        let matcher = ctx.matcher(kind).unwrap();
        let crew = Crew::new(
            Arc::clone(&ctx.embeddings),
            CrewOptions {
                perturb: PerturbOptions {
                    samples: 48,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let ce = crew
            .explain_clusters(matcher.as_ref(), &pair)
            .unwrap_or_else(|e| panic!("{} unexplainable: {e}", kind.label()));
        assert!(!ce.clusters.is_empty(), "{}", kind.label());
    }
}

#[test]
fn crew_explanations_respect_cannot_link() {
    // With aggressive cannot-link constraints, strongly positive and
    // strongly negative words never co-cluster.
    let ctx = ctx(13);
    let matcher = ctx.matcher(MatcherKind::Logistic).unwrap();
    let crew = Crew::new(
        Arc::clone(&ctx.embeddings),
        CrewOptions {
            cannot_link_quantile: 0.2,
            ..Default::default()
        },
    );
    for ex in ctx.pairs_to_explain(3) {
        let ce = crew.explain_clusters(matcher.as_ref(), &ex.pair).unwrap();
        let w = &ce.word_level.weights;
        let links = crew_core::opposite_sign_cannot_links(w, 0.2);
        for (a, b) in links {
            let ca = ce
                .clusters
                .iter()
                .position(|c| c.member_indices.contains(&a));
            let cb = ce
                .clusters
                .iter()
                .position(|c| c.member_indices.contains(&b));
            assert_ne!(ca, cb, "cannot-linked words {a},{b} share a cluster");
        }
    }
}
