//! Direct tests for the baseline explainer roster (`em-baselines`): every
//! explainer — LIME, Mojito, Landmark, LEMON, CERTA, WYM — is
//! deterministic under a fixed seed, emits attributions aligned with the
//! pair's word units, and keeps its model-query volume within the
//! sampling budget it was given.

use crew_core::Explainer;
use em_baselines::{
    Certa, CertaOptions, Landmark, LandmarkOptions, Lemon, LemonOptions, Lime, LimeOptions, Mojito,
    MojitoOptions, Wym, WymOptions,
};
use em_data::{EntityPair, Record, Schema, TokenizedPair};
use em_matchers::Matcher;
use propcheck::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Matcher with a planted ground truth — 0.9 iff "magic" appears on both
/// sides — that also counts every probability query it answers, through
/// both the scalar and the batched prediction path.
struct MagicMatcher {
    queries: AtomicUsize,
}

impl MagicMatcher {
    fn new() -> Self {
        MagicMatcher {
            queries: AtomicUsize::new(0),
        }
    }

    fn queries(&self) -> usize {
        self.queries.load(Ordering::SeqCst)
    }
}

impl Matcher for MagicMatcher {
    fn name(&self) -> &str {
        "magic"
    }
    fn predict_proba(&self, pair: &EntityPair) -> f64 {
        self.queries.fetch_add(1, Ordering::SeqCst);
        let l = em_text::tokenize(&pair.left().full_text());
        let r = em_text::tokenize(&pair.right().full_text());
        if l.iter().any(|t| t == "magic") && r.iter().any(|t| t == "magic") {
            0.9
        } else {
            0.1
        }
    }
}

/// Two-attribute pair (8 words) with "magic" planted on both sides.
fn magic_pair() -> EntityPair {
    let schema = Arc::new(Schema::new(vec!["name", "desc"]));
    EntityPair::new(
        schema,
        Record::new(0, vec!["magic alpha".into(), "beta gamma".into()]),
        Record::new(1, vec!["magic delta".into(), "epsilon zeta".into()]),
    )
    .unwrap()
}

/// Support records for CERTA, shaped like the pair's schema.
fn certa_support() -> Vec<Record> {
    vec![
        Record::new(900, vec!["spare words".into(), "filler text".into()]),
        Record::new(901, vec!["donor tokens".into(), "other cells".into()]),
        Record::new(902, vec!["third record".into(), "more donors".into()]),
    ]
}

/// The roster under test, each configured with the given seed and a
/// small per-explainer sampling budget. `budget` scales the dominant
/// sampling knob of every explainer.
fn roster(seed: u64, budget: usize) -> Vec<Box<dyn Explainer>> {
    vec![
        Box::new(Lime::new(LimeOptions {
            samples: budget,
            seed,
            ..Default::default()
        })),
        Box::new(Mojito::new(MojitoOptions {
            samples: budget,
            seed,
            ..Default::default()
        })),
        Box::new(Landmark::new(LandmarkOptions {
            samples_per_side: budget,
            seed,
            ..Default::default()
        })),
        Box::new(Lemon::new(LemonOptions {
            samples_per_side: budget,
            seed,
            ..Default::default()
        })),
        Box::new(
            Certa::new(
                certa_support(),
                CertaOptions {
                    substitutions: budget.max(1),
                    seed,
                    ..Default::default()
                },
            )
            .unwrap(),
        ),
        Box::new(Wym::new(WymOptions {
            samples: budget,
            seed,
            ..Default::default()
        })),
    ]
}

/// Query ceiling per explainer for a `budget`-sized configuration on an
/// `n_words`/`n_cells` pair. Each bound is the explainer's sampling
/// shape with slack for base-score probes and small fixed augmentation
/// sets — what it must never do is scale past its budget.
fn query_cap(name: &str, budget: usize, n_words: usize, n_cells: usize) -> usize {
    match name {
        // One mask set (plus the unperturbed row), deduplicated.
        "lime" | "wym" => budget + n_words + 2,
        // Mode probe + one DROP/COPY sample set.
        "mojito" => 2 * budget + n_words + 4,
        // Per-side perturbations (+ injection augmentation when enabled).
        "landmark" | "lemon" => 4 * (budget + 1) + 4 * n_words + 4,
        // Per-cell substitution probes from the support set.
        "certa" => 2 * n_cells * budget + n_words + 4,
        other => panic!("unknown explainer {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Two runs of the same explainer with the same seed — including two
    // independently constructed instances — produce bitwise-identical
    // attributions.
    #[test]
    fn explainers_are_deterministic_under_fixed_seed(
        which in 0usize..6,
        seed in 0u64..1000,
    ) {
        let pair = magic_pair();
        let matcher = MagicMatcher::new();
        let a = roster(seed, 24)[which].explain(&matcher, &pair).unwrap();
        let b = roster(seed, 24)[which].explain(&matcher, &pair).unwrap();
        let bits = |ws: &[f64]| ws.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
        prop_assert!(
            bits(&a.weights) == bits(&b.weights),
            "{}: weights differ between same-seed runs",
            &a.explainer
        );
        prop_assert_eq!(a.base_score.to_bits(), b.base_score.to_bits());
        prop_assert_eq!(a.intercept.to_bits(), b.intercept.to_bits());
        prop_assert_eq!(a.surrogate_r2.to_bits(), b.surrogate_r2.to_bits());
    }
}

#[test]
fn attributions_align_with_word_units_and_are_finite() {
    let pair = magic_pair();
    let n = TokenizedPair::new(pair.clone()).len();
    let matcher = MagicMatcher::new();
    for explainer in roster(11, 24) {
        let expl = explainer.explain(&matcher, &pair).unwrap();
        assert_eq!(expl.words.len(), n, "{}", explainer.name());
        assert_eq!(expl.weights.len(), n, "{}", explainer.name());
        assert!(
            expl.weights.iter().all(|w| w.is_finite()),
            "{} produced non-finite weights",
            explainer.name()
        );
        // Requesting the top-k attributions respects k.
        for k in [0, 1, 3, n + 5] {
            assert!(
                expl.top_words(k).len() <= k.min(n),
                "{}: top_words({k}) overflowed",
                explainer.name()
            );
        }
    }
}

#[test]
fn query_volume_respects_the_sampling_budget() {
    let pair = magic_pair();
    let tokenized = TokenizedPair::new(pair.clone());
    let (n_words, n_cells) = (tokenized.len(), 2);
    for budget in [8usize, 32] {
        for explainer in roster(7, budget) {
            let matcher = MagicMatcher::new();
            explainer.explain(&matcher, &pair).unwrap();
            let queries = matcher.queries();
            let cap = query_cap(explainer.name(), budget, n_words, n_cells);
            assert!(queries > 0, "{} never queried the model", explainer.name());
            assert!(
                queries <= cap,
                "{} issued {queries} queries, budget {budget} caps it at {cap}",
                explainer.name()
            );
        }
    }
}

/// A larger budget may never *reduce* an explainer's sample volume, and
/// the spent volume must actually track the knob (dedup aside): this is
/// the budget being respected from below.
#[test]
fn query_volume_scales_with_the_budget() {
    let pair = magic_pair();
    for (small, large) in [(8usize, 64usize)] {
        let spent = |budget: usize| -> Vec<(String, usize)> {
            roster(7, budget)
                .iter()
                .map(|e| {
                    let matcher = MagicMatcher::new();
                    e.explain(&matcher, &pair).unwrap();
                    (e.name().to_string(), matcher.queries())
                })
                .collect()
        };
        for ((name, qs), (_, ql)) in spent(small).into_iter().zip(spent(large)) {
            assert!(
                qs <= ql,
                "{name}: shrinking the budget from {large} to {small} \
                 raised queries from {ql} to {qs}"
            );
        }
    }
}

#[test]
fn different_seeds_draw_different_samples() {
    // LIME's mask sampling is seed-driven: on an 8-word pair two seeds
    // virtually never draw the same 32 masks, so the fitted weights must
    // differ somewhere. (Asserted for the plain-LIME path only; the
    // other explainers share the same seeded perturbation substrate.)
    let pair = magic_pair();
    let matcher = MagicMatcher::new();
    let explain = |seed: u64| {
        Lime::new(LimeOptions {
            samples: 32,
            seed,
            ..Default::default()
        })
        .explain(&matcher, &pair)
        .unwrap()
    };
    let a = explain(1);
    let b = explain(2);
    assert_ne!(
        a.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
        b.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
        "two seeds produced identical LIME weights"
    );
}
