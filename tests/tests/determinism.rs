//! Determinism guarantees of the hermetic substrate: with a fixed seed,
//! CREW and every baseline must produce bitwise-identical explanations
//! across repeated runs, and the number of perturbation worker threads
//! must not change any result (the mask stream is sampled up front by a
//! single seeded RNG; threads only fan out model queries).

use crew_core::{Crew, CrewOptions, Explainer, PerturbOptions, WordExplanation};
use em_baselines::{
    Certa, CertaOptions, Landmark, Lemon, Lime, LimeOptions, Mojito, MojitoOptions, Wym,
};
use em_data::{EntityPair, Record, Schema};
use em_embed::{EmbeddingOptions, WordEmbeddings};
use em_matchers::RuleMatcher;
use std::sync::Arc;

fn pair() -> EntityPair {
    let schema = Arc::new(Schema::new(vec!["name", "addr"]));
    EntityPair::new(
        schema,
        Record::new(
            0,
            vec![
                "alpha beta gamma delta epsilon".into(),
                "12 main street suite 4".into(),
            ],
        ),
        Record::new(1, vec!["alpha beta gamma zeta".into(), "14 main st".into()]),
    )
    .unwrap()
}

fn embeddings() -> Arc<WordEmbeddings> {
    let corpus: Vec<Vec<String>> = [
        "alpha beta gamma delta epsilon zeta",
        "12 main street suite 4",
        "14 main st",
    ]
    .iter()
    .map(|s| em_text::tokenize(s))
    .collect();
    Arc::new(
        WordEmbeddings::train(
            corpus.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 8,
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

/// Every explainer under test, built fresh with fixed seeds.
fn all_explainers(threads: usize) -> Vec<Box<dyn Explainer>> {
    vec![
        Box::new(Lime::new(LimeOptions {
            seed: 7,
            samples: 96,
            threads,
            ..Default::default()
        })),
        Box::new(Mojito::new(MojitoOptions {
            seed: 7,
            samples: 96,
            threads,
            ..Default::default()
        })),
        Box::new(Landmark::default()),
        Box::new(Lemon::default()),
        Box::new(Wym::default()),
        Box::new(
            Certa::new(
                vec![Record::new(
                    9,
                    vec!["spare record".into(), "5 side road".into()],
                )],
                CertaOptions::default(),
            )
            .unwrap(),
        ),
        Box::new(Crew::new(
            embeddings(),
            CrewOptions {
                perturb: PerturbOptions {
                    samples: 96,
                    seed: 7,
                    threads,
                    ..Default::default()
                },
                ..Default::default()
            },
        )),
    ]
}

fn assert_identical(name: &str, a: &WordExplanation, b: &WordExplanation) {
    assert_eq!(a.weights, b.weights, "{name}: weights differ between runs");
    assert_eq!(
        a.base_score.to_bits(),
        b.base_score.to_bits(),
        "{name}: base score differs"
    );
    assert_eq!(
        a.intercept.to_bits(),
        b.intercept.to_bits(),
        "{name}: intercept differs"
    );
    assert_eq!(
        a.surrogate_r2.to_bits(),
        b.surrogate_r2.to_bits(),
        "{name}: R² differs"
    );
    assert_eq!(a.words.len(), b.words.len(), "{name}: word count differs");
}

#[test]
fn every_explainer_is_deterministic_across_runs() {
    let matcher = RuleMatcher::uniform(2, 0.5).unwrap();
    let p = pair();
    for (ea, eb) in all_explainers(1).iter().zip(all_explainers(1).iter()) {
        let a = ea.explain(&matcher, &p).unwrap();
        let b = eb.explain(&matcher, &p).unwrap();
        assert_identical(ea.name(), &a, &b);
    }
}

#[test]
fn explanations_do_not_depend_on_thread_count() {
    let matcher = RuleMatcher::uniform(2, 0.5).unwrap();
    let p = pair();
    for (e1, e4) in all_explainers(1).iter().zip(all_explainers(4).iter()) {
        let a = e1.explain(&matcher, &p).unwrap();
        let b = e4.explain(&matcher, &p).unwrap();
        assert_identical(e1.name(), &a, &b);
    }
}

#[test]
fn crew_cluster_explanations_are_deterministic() {
    let matcher = RuleMatcher::uniform(2, 0.5).unwrap();
    let p = pair();
    let build = |threads: usize| {
        Crew::new(
            embeddings(),
            CrewOptions {
                perturb: PerturbOptions {
                    samples: 96,
                    seed: 7,
                    threads,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    };
    let a = build(1).explain_clusters(&matcher, &p).unwrap();
    let b = build(1).explain_clusters(&matcher, &p).unwrap();
    let c = build(4).explain_clusters(&matcher, &p).unwrap();
    for other in [&b, &c] {
        assert_identical("crew(clusters)", &a.word_level, &other.word_level);
        assert_eq!(a.selected_k, other.selected_k);
        assert_eq!(a.group_r2.to_bits(), other.group_r2.to_bits());
        assert_eq!(a.silhouette.to_bits(), other.silhouette.to_bits());
        assert_eq!(a.clusters.len(), other.clusters.len());
        for (ca, cb) in a.clusters.iter().zip(other.clusters.iter()) {
            assert_eq!(ca.member_indices, cb.member_indices);
            assert_eq!(ca.weight.to_bits(), cb.weight.to_bits());
        }
    }
}
