//! CSV round-trip through the full pipeline, and smoke runs of every
//! experiment runner (table-shape validation).

use em_eval::{EvalSession, ExperimentConfig, MatcherKind};
use em_synth::{generate, Family, GeneratorConfig};

#[test]
fn synthetic_dataset_round_trips_through_csv_and_retrains() {
    let d = generate(
        Family::Citations,
        GeneratorConfig {
            entities: 60,
            pairs: 150,
            match_rate: 0.3,
            ..Default::default()
        },
    )
    .unwrap();
    let csv = em_data::dataset_to_joined_csv(&d);
    let d2 = em_data::dataset_from_joined_csv("reloaded", &csv).unwrap();
    assert_eq!(d.len(), d2.len());
    assert_eq!(d.match_count(), d2.match_count());
    assert_eq!(
        d.schema().names().collect::<Vec<_>>(),
        d2.schema().names().collect::<Vec<_>>()
    );
    // The reloaded dataset trains a working matcher.
    let split = d2.split(0.7, 0.15, 1).unwrap();
    let m = em_matchers::LogisticMatcher::fit(
        &split.train,
        &split.validation,
        em_matchers::TrainOptions::default(),
    )
    .unwrap();
    let r = em_matchers::evaluate(&m, &split.test);
    assert!(r.f1 > 0.6, "retrained matcher too weak: {r:?}");
}

#[test]
fn experiment_t1_t2_shapes() {
    let session = EvalSession::new(ExperimentConfig::smoke());
    let families = session.config().families.len();
    let t1 = em_eval::exp_t1(&session).unwrap();
    assert_eq!(t1.columns.len(), 6);
    assert_eq!(t1.rows.len(), families);

    let t2 = em_eval::exp_t2(&session).unwrap();
    assert_eq!(t2.rows.len(), families * 4);
    // Trained matchers should comfortably beat zero F1 on synthetic data.
    let csv = t2.to_csv();
    let rows = em_data::parse_csv(&csv).unwrap();
    let f1_col = rows[0].iter().position(|c| c == "f1").unwrap();
    let mut any_strong = false;
    for row in &rows[1..] {
        let f1: f64 = row[f1_col].parse().unwrap();
        assert!((0.0..=1.0).contains(&f1));
        if f1 > 0.7 {
            any_strong = true;
        }
    }
    assert!(any_strong, "no matcher reached F1 0.7 on the smoke dataset");
}

#[test]
fn experiment_t6_and_f4_budget_tables() {
    let mut cfg = ExperimentConfig::smoke();
    cfg.explain_pairs = 2;
    let session = EvalSession::new(cfg);
    let t6 = em_eval::exp_t6(&session).unwrap();
    assert!(!t6.rows.is_empty());
    // Budgets respected the smoke ceiling (samples <= 2*48=96).
    let csv = t6.to_csv();
    let rows = em_data::parse_csv(&csv).unwrap();
    let col = rows[0].iter().position(|c| c == "samples").unwrap();
    for row in &rows[1..] {
        let s: usize = row[col].parse().unwrap();
        assert!(s <= 96, "budget {s} exceeded smoke ceiling");
    }

    let f4 = em_eval::exp_f4(&session).unwrap();
    assert!(!f4.rows.is_empty());
    let csv = f4.to_csv();
    let rows = em_data::parse_csv(&csv).unwrap();
    let stab_col = rows[0].iter().position(|c| c == "stability@10").unwrap();
    for row in &rows[1..] {
        let s: f64 = row[stab_col].parse().unwrap();
        assert!((0.0..=1.0).contains(&s), "stability out of range: {s}");
    }
}

#[test]
fn experiment_f3_runtime_table() {
    let mut cfg = ExperimentConfig::smoke();
    cfg.samples = 32;
    let f3 = em_eval::exp_f3(&EvalSession::new(cfg)).unwrap();
    assert!(!f3.rows.is_empty());
    let csv = f3.to_csv();
    let rows = em_data::parse_csv(&csv).unwrap();
    let secs_col = rows[0].iter().position(|c| c == "seconds").unwrap();
    for row in &rows[1..] {
        let s: f64 = row[secs_col].parse().unwrap();
        assert!(s >= 0.0);
    }
}

#[test]
fn matcher_zoo_consistency_across_experiments() {
    // The same config must yield the same trained-model behaviour in two
    // separately prepared contexts (the regeneration guarantee behind every
    // table).
    let cfg = ExperimentConfig::smoke();
    let family = cfg.families[0];
    let a = em_eval::EvalContext::prepare(family, cfg.generator(family)).unwrap();
    let b = em_eval::EvalContext::prepare(family, cfg.generator(family)).unwrap();
    let ma = a.matcher(MatcherKind::Logistic).unwrap();
    let mb = b.matcher(MatcherKind::Logistic).unwrap();
    for (ea, eb) in a
        .split
        .test
        .examples()
        .iter()
        .zip(b.split.test.examples())
        .take(10)
    {
        assert_eq!(ma.predict_proba(&ea.pair), mb.predict_proba(&eb.pair));
    }
}
