//! End-to-end `em-stream` pipeline tests: the explained matched set is
//! bitwise identical at any `--jobs` count (with the bounded stores
//! active), and the previously dormant CSV record loader drives the
//! pipeline from two ER-Magellan-shaped files to explained matches.

use em_data::{record_table_from_csv, Schema};
use em_eval::{EvalContext, MatcherKind, StoreBudget};
use em_stream::{run_stream, StreamOptions, StreamOutcome};
use em_synth::{record_collections, CollectionsConfig, Family, GeneratorConfig};
use std::sync::{Arc, OnceLock};

fn shared_ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| {
        EvalContext::prepare(
            Family::Restaurants,
            GeneratorConfig {
                entities: 60,
                pairs: 150,
                ..Default::default()
            },
        )
        .expect("context prepares")
    })
}

fn assert_same_artifacts(a: &StreamOutcome, b: &StreamOutcome) {
    assert_eq!(a.candidates, b.candidates, "candidate count");
    assert_eq!(a.matches, b.matches, "explained matched set");
    assert_eq!(a.entity_clusters, b.entity_clusters, "entity clusters");
}

#[test]
fn synthetic_stream_is_deterministic_across_jobs() {
    let c = record_collections(
        Family::Restaurants,
        CollectionsConfig {
            entities: 60,
            duplicate_rate: 0.5,
            extra_right: 15,
            seed: 5,
        },
    )
    .expect("collections generate");
    let ctx = shared_ctx();
    let matcher = ctx.matcher(MatcherKind::Logistic).expect("matcher trains");

    let run = |jobs: usize| {
        run_stream(
            &c.schema,
            &c.left,
            &c.right,
            matcher.as_ref(),
            ctx.embeddings.clone(),
            &StreamOptions {
                jobs,
                batch: 16,
                // Tight budget so the jobs-invariance claim is tested
                // *with eviction racing the schedule*, not only on the
                // easy unbounded path.
                store_budget: Some(StoreBudget::total(2 << 20)),
                ..Default::default()
            },
        )
        .expect("pipeline runs")
    };
    let sequential = run(1);
    assert!(
        !sequential.matches.is_empty(),
        "workload must produce matches for the invariance to mean anything"
    );
    for jobs in [2, 4] {
        assert_same_artifacts(&sequential, &run(jobs));
    }
}

const LEFT_CSV: &str = "\
id,name,addr,city,phone
0,olive garden trattoria,12 elm street,springfield,555-0101
1,golden dragon noodles,88 canal road,riverton,555-0134
2,casa miguel cantina,7 mission plaza,riverton,555-0177
3,blue harbor oysters,1 wharf lane,porthaven,555-0190
4,maple diner,340 birch avenue,springfield,555-0122
";

const RIGHT_CSV: &str = "\
id,name,addr,city,phone
100,olive garden trattoria,12 elm st,springfield,555-0101
101,golden dragon noodle house,88 canal road,riverton,555-0134
102,casa miguel,7 mission plaza suite b,riverton,555-0177
103,harborview grill,19 dock street,porthaven,555-0260
104,mapel diner,340 birch avenue,springfield,555-0122
";

#[test]
fn csv_collections_stream_deterministically() {
    let left = record_table_from_csv(LEFT_CSV).expect("left CSV loads");
    let right = record_table_from_csv(RIGHT_CSV).expect("right CSV loads");
    assert_eq!(left.attributes, right.attributes, "tables must agree");
    let schema = Arc::new(Schema::new(left.attributes.clone()));

    let ctx = shared_ctx();
    let matcher = ctx.matcher(MatcherKind::Logistic).expect("matcher trains");
    let run = |jobs: usize| {
        run_stream(
            &schema,
            &left.records,
            &right.records,
            matcher.as_ref(),
            ctx.embeddings.clone(),
            &StreamOptions {
                jobs,
                batch: 3,
                // Explain every candidate: a threshold of 0 keeps the
                // test independent of where a synthetically trained
                // matcher happens to score these hand-written rows.
                threshold: Some(0.0),
                ..Default::default()
            },
        )
        .expect("pipeline runs")
    };

    let sequential = run(1);
    // Blocking must at least pair up the verbatim-named duplicates.
    assert!(sequential.candidates >= 4, "shared tokens must block");
    assert_eq!(sequential.matches.len(), sequential.candidates);
    for m in &sequential.matches {
        assert!(!m.top_words.is_empty(), "digests carry top words");
    }
    assert_same_artifacts(&sequential, &run(4));
}

#[test]
fn lsh_blocked_stream_is_deterministic_across_jobs() {
    let c = record_collections(
        Family::Restaurants,
        CollectionsConfig {
            entities: 40,
            duplicate_rate: 0.5,
            extra_right: 10,
            seed: 11,
        },
    )
    .expect("collections generate");
    let ctx = shared_ctx();
    let matcher = ctx.matcher(MatcherKind::Logistic).expect("matcher trains");

    let run = |jobs: usize| {
        run_stream(
            &c.schema,
            &c.left,
            &c.right,
            matcher.as_ref(),
            ctx.embeddings.clone(),
            &StreamOptions {
                jobs,
                batch: 16,
                blocking: em_stream::BlockingConfig {
                    lsh: Some(em_stream::LshBlocking::default()),
                    ..Default::default()
                },
                store_budget: Some(StoreBudget::total(2 << 20)),
                ..Default::default()
            },
        )
        .expect("pipeline runs")
    };
    let sequential = run(1);
    assert!(!sequential.matches.is_empty(), "workload produces matches");
    for jobs in [2, 4] {
        assert_same_artifacts(&sequential, &run(jobs));
    }
}
