//! Fuzz-style robustness: arbitrary pair content through every explainer
//! and metric must never panic and always produce finite, aligned outputs.

use crew_core::{Crew, CrewOptions, Explainer, PerturbOptions};
use em_baselines::{Certa, CertaOptions, Landmark, Lemon, Lime, Mojito, Wym};
use em_data::{EntityPair, Record, Schema, TokenizedPair};
use em_embed::{EmbeddingOptions, WordEmbeddings};
use em_matchers::RuleMatcher;
use propcheck::prelude::*;
use std::sync::Arc;

fn embeddings() -> Arc<WordEmbeddings> {
    let corpus: Vec<Vec<String>> = ["alpha beta gamma delta", "beta gamma epsilon"]
        .iter()
        .map(|s| em_text::tokenize(s))
        .collect();
    Arc::new(
        WordEmbeddings::train(
            corpus.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 8,
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

fn arbitrary_pair() -> impl Strategy<Value = EntityPair> {
    let value = "[a-z0-9 .,()-]{0,30}";
    (
        value.prop_map(|s| s),
        "[a-z ]{1,20}",
        "[a-z0-9 ]{0,25}",
        "[a-z ]{0,15}",
    )
        .prop_map(|(a, b, c, d)| {
            let schema = Arc::new(Schema::new(vec!["x", "y"]));
            EntityPair::new(
                schema,
                Record::new(0, vec![a, c]),
                Record::new(1, vec![b, d]),
            )
            .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_explainers_handle_arbitrary_pairs(pair in arbitrary_pair()) {
        let matcher = RuleMatcher::uniform(2, 0.5).unwrap();
        let n = TokenizedPair::new(pair.clone()).len();
        prop_assume!(n > 0);
        let explainers: Vec<Box<dyn Explainer>> = vec![
            Box::new(Lime::default()),
            Box::new(Mojito::default()),
            Box::new(Landmark::default()),
            Box::new(Lemon::default()),
            Box::new(Wym::default()),
            Box::new(
                Certa::new(
                    vec![Record::new(9, vec!["spare".into(), "donor".into()])],
                    CertaOptions::default(),
                )
                .unwrap(),
            ),
            Box::new(Crew::new(
                embeddings(),
                CrewOptions {
                    perturb: PerturbOptions { samples: 24, ..Default::default() },
                    ..Default::default()
                },
            )),
        ];
        for explainer in explainers {
            let expl = explainer
                .explain(&matcher, &pair)
                .unwrap_or_else(|e| panic!("{} failed on {pair:?}: {e}", explainer.name()));
            prop_assert_eq!(expl.weights.len(), n);
            prop_assert!(expl.weights.iter().all(|w| w.is_finite()));
        }
    }

    #[test]
    fn metrics_handle_arbitrary_units(pair in arbitrary_pair(), seed in 0u64..50) {
        use em_rngs::{Rng, SeedableRng};
        let matcher = RuleMatcher::uniform(2, 0.5).unwrap();
        let tokenized = TokenizedPair::new(pair);
        let n = tokenized.len();
        prop_assume!(n > 0);
        // Random unit partition with random weights.
        let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
        let units: Vec<crew_core::ExplanationUnit> = (0..n)
            .map(|i| crew_core::ExplanationUnit {
                member_indices: vec![i],
                weight: rng.gen_range(-1.0..1.0),
            })
            .collect();
        let aopc = em_metrics::aopc_deletion(
            &matcher,
            &tokenized,
            &units,
            &em_metrics::standard_fractions(),
        )
        .unwrap();
        prop_assert!(aopc.is_finite());
        let aopc_u = em_metrics::aopc_units(&matcher, &tokenized, &units, 3).unwrap();
        prop_assert!(aopc_u.is_finite());
        let suff = em_metrics::sufficiency(&matcher, &tokenized, &units, 0.3).unwrap();
        prop_assert!((0.0..=1.0).contains(&suff));
        let _flip = em_metrics::decision_flip(&matcher, &tokenized, &units).unwrap();
    }

    #[test]
    fn crew_partitions_arbitrary_pairs(pair in arbitrary_pair()) {
        let matcher = RuleMatcher::uniform(2, 0.5).unwrap();
        let n = TokenizedPair::new(pair.clone()).len();
        prop_assume!(n > 0);
        let crew = Crew::new(
            embeddings(),
            CrewOptions {
                perturb: PerturbOptions { samples: 24, ..Default::default() },
                ..Default::default()
            },
        );
        let ce = crew.explain_clusters(&matcher, &pair).unwrap();
        let covered: usize = ce.clusters.iter().map(|c| c.member_indices.len()).sum();
        prop_assert_eq!(covered, n);
        prop_assert_eq!(ce.clusters.len(), ce.selected_k);
        // JSON export of every fuzzed explanation stays valid.
        let json = crew_core::cluster_explanation_to_json(&ce, pair.schema());
        prop_assert!(crew_core::report::looks_like_valid_json(&json));
    }
}
