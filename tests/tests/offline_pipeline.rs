//! Property tests of the offline (corpus → embeddings → K-sweep) pipeline:
//! the sparse CSR path must be a bitwise drop-in for the dense reference,
//! co-occurrence counting must not depend on the thread budget, and the
//! incremental K-sweep must reproduce per-K dendrogram cuts exactly.

use em_cluster::{agglomerative, silhouette, sweep_cuts, Constraints, Linkage};
use em_embed::{CoocOptions, Cooccurrence, EmbeddingOptions, WordEmbeddings};
use em_linalg::{randomized_svd, randomized_svd_sparse, Matrix, SparseMatrix, SvdOptions};
use em_rngs::{Rng, SeedableRng};
use propcheck::prelude::*;

/// A random synthetic corpus: `n_sents` sentences drawn from a small
/// vocabulary so words actually co-occur.
fn random_corpus(n_sents: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
    let vocab = [
        "sonix",
        "veltron",
        "bravia",
        "qled",
        "tv",
        "television",
        "black",
        "white",
        "hdmi",
        "remote",
        "stand",
        "4k",
    ];
    (0..n_sents)
        .map(|_| {
            let len = rng.gen_range(2..9usize);
            (0..len)
                .map(|_| vocab[rng.gen_range(0..vocab.len())].to_string())
                .collect()
        })
        .collect()
}

fn build(corpus: &[Vec<String>], threads: usize) -> Cooccurrence {
    Cooccurrence::build(
        corpus.iter().map(|v| v.as_slice()),
        CoocOptions {
            threads,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The CSR PPMI holds exactly the positive entries of the dense PPMI,
    // bitwise, and nothing else.
    #[test]
    fn sparse_ppmi_equals_dense_pointwise(n_sents in 1usize..40, seed in 0u64..500) {
        let corpus = random_corpus(n_sents, seed);
        let cooc = build(&corpus, 0);
        let dense = cooc.ppmi_matrix(0.75);
        let csr = cooc.ppmi_csr(0.75);
        prop_assert_eq!(csr.rows(), dense.rows());
        prop_assert_eq!(csr.cols(), dense.cols());
        for i in 0..dense.rows() {
            for j in 0..dense.cols() {
                prop_assert_eq!(csr.get(i, j).to_bits(), dense[(i, j)].to_bits());
            }
        }
    }

    // The sparse-operand randomized SVD is bitwise the dense one, at any
    // thread budget.
    #[test]
    fn sparse_svd_equals_dense_bitwise(n_sents in 4usize..40, seed in 0u64..500) {
        let corpus = random_corpus(n_sents, seed);
        let cooc = build(&corpus, 0);
        let dense = cooc.ppmi_matrix(0.75);
        let k = 4.min(dense.rows());
        let opts = |threads| SvdOptions { seed: 0xcafe ^ seed, threads, ..Default::default() };
        let reference = randomized_svd(&dense, k, opts(1)).unwrap();
        for threads in [1usize, 4] {
            let sparse = randomized_svd_sparse(
                &SparseMatrix::from_dense(&dense),
                k,
                opts(threads),
            )
            .unwrap();
            prop_assert_eq!(sparse.sigma.len(), reference.sigma.len());
            for (a, b) in sparse.sigma.iter().zip(&reference.sigma) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(sparse.u.as_slice(), reference.u.as_slice());
            prop_assert_eq!(sparse.v.as_slice(), reference.v.as_slice());
        }
    }

    // Co-occurrence counting is invariant to the thread budget: marginals
    // and every pair count are bitwise identical, so trained embeddings
    // are too.
    #[test]
    fn cooc_is_thread_count_invariant(n_sents in 1usize..60, seed in 0u64..500) {
        let corpus = random_corpus(n_sents, seed);
        let one = build(&corpus, 1);
        for threads in [2usize, 4] {
            let many = build(&corpus, threads);
            prop_assert_eq!(one.vocab().len(), many.vocab().len());
            prop_assert_eq!(one.total().to_bits(), many.total().to_bits());
            let n = one.vocab().len() as u32;
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(one.count(a, b).to_bits(), many.count(a, b).to_bits());
                }
            }
        }
    }

    // The incremental K-sweep reproduces `Dendrogram::cut` labels exactly
    // and the reference silhouette up to float associativity, at every K.
    #[test]
    fn sweep_matches_cut_and_silhouette(n in 2usize..14, seed in 0u64..500) {
        let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
        let pts: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let d = Matrix::from_fn(n, n, |i, j| (pts[i] - pts[j]).abs());
        let dg = agglomerative(&d, Linkage::Average, &Constraints::none()).unwrap();
        let cuts = sweep_cuts(&dg, &d, 1, n).unwrap();
        prop_assert_eq!(cuts.len(), n);
        for cut in &cuts {
            prop_assert_eq!(&cut.labels, &dg.cut(cut.k).unwrap());
            let reference = silhouette(&d, &cut.labels).unwrap();
            prop_assert!(
                (cut.silhouette - reference).abs() < 1e-9,
                "silhouette at k={}: sweep {} vs reference {}",
                cut.k, cut.silhouette, reference
            );
        }
    }
}

/// End to end: training with the sparse default and the dense reference
/// path yields bitwise-identical embeddings, at any thread budget.
#[test]
fn embedding_training_sparse_dense_and_threads_agree_bitwise() {
    let corpus = random_corpus(80, 42);
    let opts = |sparse, threads| EmbeddingOptions {
        dimensions: 12,
        sparse,
        threads,
        ..Default::default()
    };
    let reference =
        WordEmbeddings::train(corpus.iter().map(|v| v.as_slice()), opts(false, 1)).unwrap();
    for threads in [1usize, 4] {
        let sparse =
            WordEmbeddings::train(corpus.iter().map(|v| v.as_slice()), opts(true, threads))
                .unwrap();
        assert_eq!(sparse.vocab_size(), reference.vocab_size());
        for word in reference.words() {
            assert_eq!(
                sparse.vector(word),
                reference.vector(word),
                "embedding drift for {word:?}: sparse/threads={threads} vs dense/serial"
            );
        }
    }
}
