//! Property tests of the `em_embed::ann` subsystem and its consumers:
//! ANN recall against exact brute force across vocabulary sizes and
//! seeds, index determinism (same seed ⇒ identical buckets at any
//! thread count), bitwise pinning of the exact distance-matrix path,
//! bitwise agreement of ANN neighbour entries with the dense values,
//! LSH-blocker recall against the token blocker on the synthetic
//! families, and the streaming candidate iterator's equivalence to the
//! materialized candidate list.

use em_embed::{
    semantic_distance_matrix, semantic_distance_matrix_with, semantic_topk, AnnIndex, AnnOptions,
    SemanticBackend, SemanticMatrixOptions, WordEmbeddings,
};
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};
use em_stream::{
    block_candidates, block_candidates_with, build_blocks, BlockingConfig, LshBlocking,
};
use em_synth::{record_collections, CollectionsConfig, Family, RecordCollections};
use propcheck::prelude::*;

const DIMS: usize = 24;

/// Clustered synthetic vocabulary: `clusters` well-separated directions
/// with `per` jittered members each — the neighbourhood structure real
/// embeddings have, and the regime LSH is designed for.
fn clustered_vocab(clusters: usize, per: usize, seed: u64) -> Vec<(String, Vec<f64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..DIMS).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let mut vocab = Vec::with_capacity(clusters * per);
    for (c, center) in centers.iter().enumerate() {
        for m in 0..per {
            let v: Vec<f64> = center
                .iter()
                .map(|x| x + rng.gen_range(-0.05..0.05))
                .collect();
            vocab.push((format!("w{c}_{m}"), v));
        }
    }
    vocab
}

fn embeddings_of(vocab: &[(String, Vec<f64>)]) -> WordEmbeddings {
    WordEmbeddings::from_vectors(DIMS, vocab.iter().cloned()).expect("consistent dims")
}

fn words_of(vocab: &[(String, Vec<f64>)]) -> Vec<String> {
    vocab.iter().map(|(w, _)| w.clone()).collect()
}

fn opts_with(backend: SemanticBackend, neighbors: usize) -> SemanticMatrixOptions {
    SemanticMatrixOptions {
        backend,
        neighbors,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The headline recall property: across vocabulary sizes and seeds,
    // the ANN top-k finds at least 95% of the exact top-k.
    #[test]
    fn ann_recall_at_least_095_vs_exact_top_k(
        clusters in 4usize..12,
        per in 6usize..20,
        seed in 0u64..10_000,
    ) {
        let vocab = clustered_vocab(clusters, per, seed);
        let emb = embeddings_of(&vocab);
        let words = words_of(&vocab);
        let k = 5usize;
        let exact = semantic_topk(&emb, &words, k, &opts_with(SemanticBackend::Exact, k));
        let ann = semantic_topk(&emb, &words, k, &opts_with(SemanticBackend::Ann, k));
        let mut hit = 0usize;
        let mut total = 0usize;
        for (er, ar) in exact.neighbors.iter().zip(&ann.neighbors) {
            let approx: Vec<u32> = ar.iter().map(|&(j, _)| j).collect();
            hit += er.iter().filter(|&&(j, _)| approx.contains(&j)).count();
            total += er.len();
        }
        let recall = hit as f64 / total.max(1) as f64;
        prop_assert!(
            recall >= 0.95,
            "recall {recall} over {} words ({clusters}x{per}, seed {seed})",
            words.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Same seed ⇒ identical buckets and identical queries, whether the
    // index was built on 1 thread or 4.
    #[test]
    fn index_is_deterministic_and_thread_invariant(
        clusters in 3usize..8,
        per in 4usize..12,
        seed in 0u64..10_000,
        index_seed in 0u64..1_000,
    ) {
        let vocab = clustered_vocab(clusters, per, seed);
        let vectors: Vec<Vec<f64>> = vocab.iter().map(|(_, v)| v.clone()).collect();
        let build = |threads| {
            AnnIndex::build(&vectors, &AnnOptions {
                seed: index_seed,
                threads,
                ..Default::default()
            })
        };
        let one = build(1);
        let four = build(4);
        for t in 0..AnnOptions::default().tables {
            prop_assert_eq!(one.table_buckets(t), four.table_buckets(t));
        }
        for probe in [0usize, vectors.len() / 2, vectors.len() - 1] {
            let a = one.top_k_of(probe as u32, 4);
            let b = four.top_k_of(probe as u32, 4);
            prop_assert_eq!(a.len(), b.len());
            for ((ia, da), (ib, db)) in a.iter().zip(&b) {
                prop_assert_eq!(ia, ib);
                prop_assert_eq!(da.to_bits(), db.to_bits());
            }
        }
    }

    // The exact path of the routed entry point is bitwise-identical to
    // the original `semantic_distance_matrix`, and `Auto` below its
    // threshold is bitwise-identical to `Exact`.
    #[test]
    fn exact_and_auto_paths_are_bitwise_pinned(
        clusters in 2usize..6,
        per in 2usize..8,
        seed in 0u64..10_000,
    ) {
        let vocab = clustered_vocab(clusters, per, seed);
        let emb = embeddings_of(&vocab);
        // Repeat words (and an OOV form) to exercise the interning.
        let mut words = words_of(&vocab);
        words.push(vocab[0].0.clone());
        words.push("oov_form".to_string());
        let plain = semantic_distance_matrix(&emb, &words);
        let exact = semantic_distance_matrix_with(&emb, &words, &SemanticMatrixOptions::exact());
        let auto = semantic_distance_matrix_with(
            &emb,
            &words,
            &opts_with(SemanticBackend::Auto, 8),
        );
        for i in 0..words.len() {
            for j in 0..words.len() {
                prop_assert_eq!(plain[(i, j)].to_bits(), exact[(i, j)].to_bits());
                prop_assert_eq!(plain[(i, j)].to_bits(), auto[(i, j)].to_bits());
            }
        }
    }

    // ANN matrix invariants: zero diagonal, bitwise symmetry, [0,1]
    // range, thread-count invariance, and — the re-rank pinning — every
    // ANN neighbour entry carries the exact dense-path distance bitwise.
    #[test]
    fn ann_matrix_neighbor_entries_match_dense_bitwise(
        clusters in 3usize..8,
        per in 4usize..10,
        seed in 0u64..10_000,
    ) {
        let vocab = clustered_vocab(clusters, per, seed);
        let emb = embeddings_of(&vocab);
        let words = words_of(&vocab);
        let kn = 6usize;
        let opts = opts_with(SemanticBackend::Ann, kn);
        let ann = semantic_distance_matrix_with(&emb, &words, &opts);
        let exact = semantic_distance_matrix(&emb, &words);
        let topk = semantic_topk(&emb, &words, kn, &opts);
        let n = words.len();
        for i in 0..n {
            prop_assert_eq!(ann[(i, i)], 0.0);
            for j in 0..n {
                prop_assert_eq!(ann[(i, j)].to_bits(), ann[(j, i)].to_bits());
                prop_assert!((0.0..=1.0).contains(&ann[(i, j)]));
            }
        }
        // Distinct ids equal positions here (no repeated words), so the
        // top-k rows address matrix rows directly.
        for (i, row) in topk.neighbors.iter().enumerate() {
            for &(j, d) in row {
                prop_assert_eq!(ann[(i, j as usize)].to_bits(), d.to_bits());
                prop_assert_eq!(exact[(i, j as usize)].to_bits(), d.to_bits());
            }
        }
        let mut threaded = opts;
        threaded.ann.threads = 4;
        let again = semantic_distance_matrix_with(&emb, &words, &threaded);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(ann[(i, j)].to_bits(), again[(i, j)].to_bits());
            }
        }
    }
}

fn collections(family: Family, entities: usize, seed: u64) -> RecordCollections {
    record_collections(
        family,
        CollectionsConfig {
            entities,
            duplicate_rate: 0.5,
            extra_right: entities / 5,
            seed,
        },
    )
    .expect("synthetic collections generate")
}

fn family_of(idx: usize) -> Family {
    [
        Family::Products,
        Family::Citations,
        Family::Restaurants,
        Family::Songs,
        Family::Beers,
    ][idx % 5]
}

fn train_on(c: &RecordCollections) -> WordEmbeddings {
    let sentences: Vec<Vec<String>> = c
        .left
        .iter()
        .chain(&c.right)
        .map(|r| em_text::tokenize(&r.full_text()))
        .collect();
    WordEmbeddings::train(
        sentences.iter().map(|v| v.as_slice()),
        em_embed::EmbeddingOptions {
            dimensions: 16,
            ..Default::default()
        },
    )
    .expect("embeddings train")
}

fn recall(c: &RecordCollections, pairs: &[(u32, u32)]) -> f64 {
    if c.true_matches.is_empty() {
        return 1.0;
    }
    let mut found = 0usize;
    for &(lid, rid) in &c.true_matches {
        let i = c.left.iter().position(|r| r.id == lid).unwrap() as u32;
        let j = c.right.iter().position(|r| r.id == rid).unwrap() as u32;
        if pairs.binary_search(&(i, j)).is_ok() {
            found += 1;
        }
    }
    found as f64 / c.true_matches.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Adding the LSH key family can only add candidates, so its recall
    // dominates the token blocker's on every synthetic family.
    #[test]
    fn lsh_blocker_recall_dominates_token_blocker(
        family_idx in 0usize..5,
        entities in 20usize..50,
        seed in 0u64..1000,
    ) {
        let c = collections(family_of(family_idx), entities, seed);
        let emb = train_on(&c);
        let token_config = BlockingConfig::default();
        let hybrid_config = BlockingConfig {
            lsh: Some(LshBlocking::default()),
            ..Default::default()
        };
        let token = block_candidates(&c.left, &c.right, &token_config);
        let hybrid = block_candidates_with(&c.left, &c.right, &hybrid_config, Some(&emb));
        for p in &token.pairs {
            prop_assert!(
                hybrid.pairs.binary_search(p).is_ok(),
                "token candidate {p:?} lost by the hybrid blocker"
            );
        }
        prop_assert!(recall(&c, &hybrid.pairs) >= recall(&c, &token.pairs));
    }

    // The streaming iterator yields exactly the materialized candidate
    // sequence, whatever the batch size.
    #[test]
    fn candidate_stream_equals_collected_candidates(
        family_idx in 0usize..5,
        entities in 20usize..50,
        seed in 0u64..1000,
        batch in 1usize..97,
    ) {
        let c = collections(family_of(family_idx), entities, seed);
        let config = BlockingConfig::default();
        let collected = block_candidates(&c.left, &c.right, &config);
        let blocks = build_blocks(&c.left, &c.right, &config, None);
        let mut stream = blocks.stream();
        let mut streamed = Vec::new();
        loop {
            let b = stream.next_batch(batch);
            if b.is_empty() {
                break;
            }
            prop_assert!(b.len() <= batch);
            streamed.extend(b);
        }
        prop_assert_eq!(&collected.pairs, &streamed);
        prop_assert_eq!(blocks.len(), collected.blocks);
        prop_assert_eq!(blocks.oversized, collected.oversized);
    }
}
