//! Service-level tests for `em-serve`: response equivalence with direct
//! `EvalSession` calls (the store≡fresh discipline of `eval_store.rs`
//! extended to the network boundary), backend sharing under concurrent
//! identical requests, and clean error handling for malformed, slow, and
//! oversized clients over real sockets.

use em_eval::{EvalSession, ExperimentConfig};
use em_serve::{
    explanation_json, num_json, parse_json, write_request, Connection, Limits, Response,
    ServeOptions, ServeState, Server, ServerHandle,
};
use em_synth::Family;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const FAMILY: Family = Family::Restaurants;

fn fresh_state() -> Arc<ServeState> {
    Arc::new(ServeState::load(FAMILY, ExperimentConfig::smoke()).expect("state load"))
}

/// One state shared by the tests that never touch the stores'
/// hit/miss counters (error handling, timeouts); tests that assert on
/// store stats build their own.
fn shared_state() -> Arc<ServeState> {
    static STATE: OnceLock<Arc<ServeState>> = OnceLock::new();
    Arc::clone(STATE.get_or_init(fresh_state))
}

fn start(state: Arc<ServeState>, opts: ServeOptions) -> ServerHandle {
    Server::start(state, opts).expect("server start")
}

/// Open a connection, send one request, read one response.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut conn = Connection::new(stream);
    write_request(conn.stream_mut(), method, path, body.as_bytes()).expect("write");
    conn.read_response(&Limits::default()).expect("response")
}

/// Render the explain request body of a pair.
fn explain_body(pair: &em_data::EntityPair) -> String {
    let side = |r: &em_data::Record| {
        let vals: Vec<String> = r
            .values()
            .iter()
            .map(|v| format!("\"{}\"", em_serve::escape_json(v)))
            .collect();
        format!("[{}]", vals.join(","))
    };
    format!(
        "{{\"pairs\":[{{\"left\":{},\"right\":{}}}]}}",
        side(pair.left()),
        side(pair.right())
    )
}

/// Responses from the server — N concurrent clients, coalescing on —
/// must be bitwise identical to direct `EvalSession` calls for the same
/// pairs, and invariant to the dispatcher's fan-out width (`query_jobs`
/// 1 vs 4).
#[test]
fn served_responses_equal_direct_session_calls_at_any_job_count() {
    let config = ExperimentConfig::smoke();
    let direct = EvalSession::new(config.clone());
    let ctx = direct.context(FAMILY).expect("context");
    let pairs: Vec<em_data::EntityPair> = ctx
        .pairs_to_explain(3)
        .into_iter()
        .map(|lp| lp.pair)
        .collect();
    let matcher = ctx.matcher(config.matcher).expect("matcher");

    let mut served: Vec<Vec<(String, String)>> = Vec::new();
    for query_jobs in [1usize, 4] {
        let state = fresh_state();
        let server = start(
            Arc::clone(&state),
            ServeOptions {
                query_jobs,
                window: Duration::from_millis(10),
                ..ServeOptions::default()
            },
        );
        let addr = server.addr();
        // Concurrent clients: every pair explained and predicted at once.
        let mut results = vec![(String::new(), String::new()); pairs.len()];
        std::thread::scope(|scope| {
            for (slot, pair) in results.iter_mut().zip(&pairs) {
                scope.spawn(move || {
                    let body = explain_body(pair);
                    let explain = request(addr, "POST", "/explain", &body);
                    let predict = request(addr, "POST", "/predict", &body);
                    assert_eq!(
                        explain.status,
                        200,
                        "{}",
                        String::from_utf8_lossy(&explain.body)
                    );
                    assert_eq!(predict.status, 200);
                    *slot = (
                        String::from_utf8(explain.body).unwrap(),
                        String::from_utf8(predict.body).unwrap(),
                    );
                });
            }
        });
        served.push(results);
    }
    assert_eq!(
        served[0], served[1],
        "responses changed between query_jobs 1 and 4"
    );

    // Direct session calls rendered through the same serializers.
    let served_state = fresh_state();
    for (i, pair) in pairs.iter().enumerate() {
        let output = direct
            .explain_for(config.matcher, em_eval::ExplainerKind::Crew, &ctx, pair)
            .expect("direct explain");
        let expected_explain = format!(
            "{{\"results\":[{{\"explainer\":\"crew\",\"explanation\":{}}}]}}",
            explanation_json(&output, &served_state)
        );
        assert_eq!(served[0][i].0, expected_explain, "explain of pair {i}");

        let p = matcher.predict_proba(pair);
        let expected_predict = format!(
            "{{\"results\":[{{\"probability\":{},\"match\":{}}}]}}",
            num_json(p),
            p >= served_state.threshold
        );
        assert_eq!(served[0][i].1, expected_predict, "predict of pair {i}");
    }
}

/// Four concurrent clients asking for the same explanation must share
/// one backend computation — whether the sharing happens in the
/// coalescing window (batch dedup) or in the explanation store, the
/// store can only record ONE miss for the four requests.
#[test]
fn concurrent_identical_explains_share_one_computation() {
    let state = fresh_state();
    let server = start(
        Arc::clone(&state),
        ServeOptions {
            window: Duration::from_millis(100),
            ..ServeOptions::default()
        },
    );
    let addr = server.addr();
    let pair = state.ctx.pairs_to_explain(1).remove(0).pair;
    let body = explain_body(&pair);

    let clients = 4;
    let mut bodies = vec![String::new(); clients];
    std::thread::scope(|scope| {
        for slot in bodies.iter_mut() {
            scope.spawn(|| {
                let resp = request(addr, "POST", "/explain", &body);
                assert_eq!(resp.status, 200);
                *slot = String::from_utf8(resp.body).unwrap();
            });
        }
    });
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "divergent replies");

    let explain_stats = state.session.explanations().stats();
    let perturb_stats = state.session.explanations().perturbation_stats();
    assert_eq!(
        explain_stats.misses, 1,
        "4 identical explains must cost exactly one explanation computation: {explain_stats:?}"
    );
    assert_eq!(
        perturb_stats.misses, 1,
        "4 identical explains must cost exactly one perturbation set: {perturb_stats:?}"
    );
}

/// Protocol-level garbage and bad routes get clean 4xx answers and the
/// server stays fully responsive afterwards.
#[test]
fn malformed_clients_get_clean_errors_and_server_survives() {
    let state = shared_state();
    let server = start(Arc::clone(&state), ServeOptions::default());
    let addr = server.addr();
    let schema_width = state.ctx.dataset.schema().len();

    // Raw garbage on the wire -> 400 and close.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"NONSENSE!!\r\n\r\n").unwrap();
        let mut conn = Connection::new(stream);
        let resp = conn.read_response(&Limits::default()).expect("a response");
        assert_eq!(resp.status, 400);
        // The server closes after a parse error; the next read is EOF.
        assert!(conn.read_response(&Limits::default()).is_err());
    }

    // Declared body over the cap -> 413 before the body is even sent.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"POST /predict HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
            .unwrap();
        let resp = Connection::new(stream)
            .read_response(&Limits::default())
            .expect("a response");
        assert_eq!(resp.status, 413);
    }

    // Routing and body validation errors, all as JSON error objects.
    let wrong_width = format!(
        "{{\"pairs\":[{{\"left\":[{}],\"right\":[\"x\"]}}]}}",
        vec!["\"v\""; schema_width + 1].join(",")
    );
    for (method, path, body, want) in [
        ("GET", "/nope", "", 404),
        ("GET", "/predict", "", 405),
        ("POST", "/health", "", 405),
        ("POST", "/predict", "{not json", 400),
        ("POST", "/predict", "{\"pairs\":[]}", 400),
        ("POST", "/predict", "{\"pairs\":0}", 400),
        ("POST", "/explain", &wrong_width, 422),
        (
            "POST",
            "/explain",
            "{\"pairs\":[{\"left\":[\"a\"],\"right\":[\"b\"]}],\"explainer\":\"astrology\"}",
            422,
        ),
    ] {
        let resp = request(addr, method, path, body);
        assert_eq!(resp.status, want, "{method} {path} {body}");
        let doc = parse_json(std::str::from_utf8(&resp.body).unwrap()).expect("JSON error body");
        assert!(doc.get("error").is_some(), "error body missing 'error'");
    }

    // After all that abuse: still healthy.
    let resp = request(addr, "GET", "/health", "");
    assert_eq!(resp.status, 200);
    let stats = request(addr, "GET", "/stats", "");
    assert_eq!(stats.status, 200);
    assert!(parse_json(std::str::from_utf8(&stats.body).unwrap()).is_ok());
}

/// A client that stalls mid-request is timed out (408) without wedging
/// the accept loop; fresh clients are served immediately after.
#[test]
fn slow_clients_time_out_without_wedging_the_server() {
    let state = shared_state();
    let server = start(
        Arc::clone(&state),
        ServeOptions {
            read_timeout: Duration::from_millis(150),
            ..ServeOptions::default()
        },
    );
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Half a request, then silence: the server must cut us off.
    stream
        .write_all(b"POST /predict HTTP/1.1\r\nContent-")
        .unwrap();
    let resp = Connection::new(stream)
        .read_response(&Limits::default())
        .expect("timeout response");
    assert_eq!(resp.status, 408);

    // The stalled client never blocked anyone else.
    let resp = request(addr, "GET", "/health", "");
    assert_eq!(resp.status, 200);
}
