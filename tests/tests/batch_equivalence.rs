//! Property tests for the batched perturbation engine.
//!
//! Two contracts keep the engine safe to use everywhere:
//!
//! 1. **Batch ≡ scalar, bitwise.** `Matcher::predict_proba_batch` must
//!    return exactly what a scalar `predict_proba` loop returns, for every
//!    matcher in the zoo — including the logistic and MLP models that
//!    override the default with cached-feature batch paths.
//! 2. **Scheduling independence.** Queries fanned out over a shared worker
//!    pool land in per-index slots, so the result vector is bitwise
//!    identical to the sequential loop at any worker count.

use crew_core::{query_masks, sample_masks, PerturbOptions};
use em_data::{EntityPair, TokenizedPair};
use em_matchers::{
    AttentionMatcher, AttentionOptions, CalibratedMatcher, EnsembleMatcher, LogisticMatcher,
    Matcher, MlpMatcher, RuleMatcher, TrainOptions,
};
use em_pool::WorkerPool;
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};
use em_synth::{generate, Family, GeneratorConfig};
use propcheck::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

struct Zoo {
    matchers: Vec<(&'static str, Arc<dyn Matcher>)>,
    test_pairs: Vec<EntityPair>,
}

/// Train the full matcher zoo once; every property case reuses it.
fn zoo() -> &'static Zoo {
    static ZOO: OnceLock<Zoo> = OnceLock::new();
    ZOO.get_or_init(|| {
        let dataset = generate(
            Family::Restaurants,
            GeneratorConfig {
                entities: 60,
                pairs: 160,
                match_rate: 0.25,
                hard_negative_rate: 0.5,
                seed: 23,
            },
        )
        .expect("synth dataset");
        let split = dataset.split(0.7, 0.15, 23).expect("split");
        let n_attrs = split.train.examples()[0].pair.schema().len();
        let logistic: Arc<dyn Matcher> = Arc::new(
            LogisticMatcher::fit(&split.train, &split.validation, TrainOptions::default())
                .expect("logistic"),
        );
        let mlp: Arc<dyn Matcher> = Arc::new(
            MlpMatcher::fit(&split.train, &split.validation, TrainOptions::default()).expect("mlp"),
        );
        let attention: Arc<dyn Matcher> = Arc::new(
            AttentionMatcher::fit(&split.train, &split.validation, AttentionOptions::default())
                .expect("attention"),
        );
        let rules: Arc<dyn Matcher> = Arc::new(RuleMatcher::uniform(n_attrs, 0.5).expect("rules"));
        let calibrated: Arc<dyn Matcher> = Arc::new(
            CalibratedMatcher::fit(
                LogisticMatcher::fit(&split.train, &split.validation, TrainOptions::default())
                    .expect("logistic for calibration"),
                &split.validation,
            )
            .expect("platt calibration"),
        );
        let ensemble: Arc<dyn Matcher> = Arc::new(
            EnsembleMatcher::uniform(vec![
                Arc::clone(&logistic),
                Arc::clone(&mlp),
                Arc::clone(&rules),
            ])
            .expect("ensemble"),
        );
        let test_pairs: Vec<EntityPair> = split
            .test
            .examples()
            .iter()
            .map(|ex| ex.pair.clone())
            .filter(|p| TokenizedPair::new(p.clone()).len() > 0)
            .collect();
        assert!(!test_pairs.is_empty(), "need non-empty test pairs");
        Zoo {
            matchers: vec![
                ("logistic", logistic),
                ("mlp", mlp),
                ("attention", attention),
                ("rules", rules),
                ("calibrated", calibrated),
                ("ensemble", ensemble),
            ],
            test_pairs,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Batch prediction is bitwise-identical to the scalar loop for every
    // matcher in the zoo, over random batches of masked real pairs
    // (duplicates included — the engine dedups upstream, the matcher
    // contract must not rely on it).
    #[test]
    fn batch_prediction_is_bitwise_scalar_for_every_matcher(
        seed in 0u64..500,
        count in 1usize..8,
    ) {
        let zoo = zoo();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs: Vec<EntityPair> = Vec::with_capacity(count + 1);
        for _ in 0..count {
            let pair = &zoo.test_pairs[rng.gen_range(0..zoo.test_pairs.len())];
            let tp = TokenizedPair::new(pair.clone());
            let mask: Vec<bool> = (0..tp.len()).map(|_| rng.gen_bool(0.7)).collect();
            pairs.push(tp.apply_mask(&mask));
        }
        // Force a duplicate into every batch.
        pairs.push(pairs[0].clone());
        for (name, matcher) in &zoo.matchers {
            let batch = matcher.predict_proba_batch(&pairs);
            prop_assert_eq!(batch.len(), pairs.len());
            for (b, p) in batch.iter().zip(&pairs) {
                let s = matcher.predict_proba(p);
                prop_assert!(
                    b.to_bits() == s.to_bits(),
                    "matcher {} diverges: batch {} vs scalar {}",
                    name, b, s
                );
            }
        }
    }

    // `query_masks` returns the same bits whatever thread budget it is
    // given (1 = inline loop, >1 = shared-pool fan-out).
    #[test]
    fn query_masks_is_thread_count_invariant(seed in 0u64..200) {
        let zoo = zoo();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7ead);
        let pair = &zoo.test_pairs[rng.gen_range(0..zoo.test_pairs.len())];
        let tp = TokenizedPair::new(pair.clone());
        let masks = sample_masks(
            &tp,
            &PerturbOptions { samples: 96, seed, threads: 1, ..Default::default() },
        ).expect("masks");
        let matcher = &zoo.matchers[0].1;
        let sequential = query_masks(&tp, &masks, matcher.as_ref(), 1);
        for threads in [2usize, 8] {
            let parallel = query_masks(&tp, &masks, matcher.as_ref(), threads);
            prop_assert_eq!(sequential.len(), parallel.len());
            for (a, b) in sequential.iter().zip(&parallel) {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "threads={} diverges: {} vs {}",
                    threads, a, b
                );
            }
        }
    }

    // Explicit pools of 1, 2 and 8 workers produce the same per-mask
    // responses as the sequential engine — dynamic scheduling never leaks
    // into results because each index owns its slot.
    #[test]
    fn explicit_pools_match_sequential_query(seed in 0u64..200, workers in 1usize..9) {
        let zoo = zoo();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9001);
        let pair = &zoo.test_pairs[rng.gen_range(0..zoo.test_pairs.len())];
        let tp = TokenizedPair::new(pair.clone());
        let masks = sample_masks(
            &tp,
            &PerturbOptions { samples: 48, seed, threads: 1, ..Default::default() },
        ).expect("masks");
        let matcher = &zoo.matchers[0].1;
        let sequential = query_masks(&tp, &masks, matcher.as_ref(), 1);
        let pool = WorkerPool::new(workers);
        let slots: Vec<AtomicU64> = (0..masks.len()).map(|_| AtomicU64::new(0)).collect();
        pool.run(masks.len(), workers, &|i| {
            let p = matcher.predict_proba(&tp.apply_mask(&masks[i]));
            slots[i].store(p.to_bits(), Ordering::SeqCst);
        });
        for (i, s) in sequential.iter().enumerate() {
            let p = f64::from_bits(slots[i].load(Ordering::SeqCst));
            prop_assert!(
                s.to_bits() == p.to_bits(),
                "workers={} slot {} diverges: {} vs {}",
                workers, i, s, p
            );
        }
    }
}
