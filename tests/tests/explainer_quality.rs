//! Cross-crate explainer quality checks against planted ground truth: when
//! we *know* which words drive the model, every explainer must find them,
//! and CREW must group them.

use crew_core::{Crew, CrewOptions, Explainer};
use em_baselines::{Certa, CertaOptions, Landmark, Lemon, Lime, Mojito};
use em_data::{EntityPair, Record, Schema};
use em_embed::{EmbeddingOptions, WordEmbeddings};
use em_matchers::Matcher;
use std::sync::Arc;

/// Ground-truth model: probability rises 0.2 for each of the two planted
/// token pairs present on BOTH sides ("zenith" and "krypton").
struct PlantedMatcher;

impl Matcher for PlantedMatcher {
    fn name(&self) -> &str {
        "planted"
    }
    fn predict_proba(&self, pair: &EntityPair) -> f64 {
        let l = em_text::tokenize(&pair.left().full_text());
        let r = em_text::tokenize(&pair.right().full_text());
        let both = |t: &str| l.iter().any(|x| x == t) && r.iter().any(|x| x == t);
        let mut p: f64 = 0.1;
        if both("zenith") {
            p += 0.4;
        }
        if both("krypton") {
            p += 0.4;
        }
        p.min(1.0)
    }
}

fn planted_pair() -> EntityPair {
    let schema = Arc::new(Schema::new(vec!["title", "spec"]));
    EntityPair::new(
        schema,
        Record::new(
            0,
            vec!["zenith ultra tower".into(), "krypton core v2".into()],
        ),
        Record::new(
            1,
            vec!["zenith compact tower".into(), "krypton core".into()],
        ),
    )
    .unwrap()
}

fn embeddings() -> Arc<WordEmbeddings> {
    let corpus: Vec<Vec<String>> = [
        "zenith ultra tower krypton core v2",
        "zenith compact tower krypton core",
        "zenith tower",
        "krypton core",
    ]
    .iter()
    .map(|s| em_text::tokenize(s))
    .collect();
    Arc::new(
        WordEmbeddings::train(
            corpus.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 12,
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

fn planted_indices(pair: &EntityPair) -> Vec<usize> {
    em_data::TokenizedPair::new(pair.clone())
        .words()
        .iter()
        .enumerate()
        .filter(|(_, w)| w.text == "zenith" || w.text == "krypton")
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn all_baselines_rank_planted_words_highly() {
    let pair = planted_pair();
    let truth = planted_indices(&pair);
    assert_eq!(truth.len(), 4);
    let explainers: Vec<Box<dyn Explainer>> = vec![
        Box::new(Lime::default()),
        Box::new(Mojito::default()),
        Box::new(Landmark::default()),
        Box::new(Lemon::default()),
    ];
    for explainer in explainers {
        let expl = explainer.explain(&PlantedMatcher, &pair).unwrap();
        let top4: Vec<usize> = expl.ranked_indices().into_iter().take(4).collect();
        let hits = truth.iter().filter(|t| top4.contains(t)).count();
        assert!(
            hits >= 3,
            "{} found only {hits}/4 planted words in top-4 ({top4:?}), weights {:?}",
            explainer.name(),
            expl.weights
        );
    }
}

#[test]
fn certa_puts_mass_on_both_attributes() {
    let pair = planted_pair();
    let support = vec![
        Record::new(50, vec!["other words".into(), "different spec".into()]),
        Record::new(51, vec!["more filler".into(), "another spec".into()]),
        Record::new(52, vec!["unrelated title".into(), "plain spec".into()]),
    ];
    let certa = Certa::new(support, CertaOptions::default()).unwrap();
    let expl = certa.explain(&PlantedMatcher, &pair).unwrap();
    // Both attributes carry planted evidence; CERTA (attribute-granular)
    // must give non-zero positive mass in each.
    let words = &expl.words;
    let title_mass: f64 = expl
        .weights
        .iter()
        .zip(words)
        .filter(|(_, w)| w.attribute == 0)
        .map(|(v, _)| *v)
        .sum();
    let spec_mass: f64 = expl
        .weights
        .iter()
        .zip(words)
        .filter(|(_, w)| w.attribute == 1)
        .map(|(v, _)| *v)
        .sum();
    assert!(title_mass > 0.0, "title mass {title_mass}");
    assert!(spec_mass > 0.0, "spec mass {spec_mass}");
}

#[test]
fn crew_groups_cross_record_planted_words() {
    let pair = planted_pair();
    let crew = Crew::new(embeddings(), CrewOptions::default());
    let ce = crew.explain_clusters(&PlantedMatcher, &pair).unwrap();
    let words = &ce.word_level.words;
    let cluster_of = |text: &str, side: em_data::Side| {
        let idx = words
            .iter()
            .position(|w| w.text == text && w.side == side)
            .unwrap_or_else(|| panic!("word {text} on {side} missing"));
        ce.clusters
            .iter()
            .position(|c| c.member_indices.contains(&idx))
            .unwrap()
    };
    // The two "zenith" occurrences co-cluster (same attribute, same word,
    // same importance profile); likewise "krypton".
    assert_eq!(
        cluster_of("zenith", em_data::Side::Left),
        cluster_of("zenith", em_data::Side::Right)
    );
    assert_eq!(
        cluster_of("krypton", em_data::Side::Left),
        cluster_of("krypton", em_data::Side::Right)
    );
}

#[test]
fn crew_top_cluster_is_more_faithful_than_random_unit() {
    let pair = planted_pair();
    let tokenized = em_data::TokenizedPair::new(pair.clone());
    let crew = Crew::new(embeddings(), CrewOptions::default());
    let ce = crew.explain_clusters(&PlantedMatcher, &pair).unwrap();
    let top_units = ce.units();
    let fractions = em_metrics::standard_fractions();
    let crew_aopc =
        em_metrics::aopc_deletion(&PlantedMatcher, &tokenized, &top_units, &fractions).unwrap();
    // A deliberately wrong explanation: all mass on filler words.
    let filler: Vec<crew_core::ExplanationUnit> = tokenized
        .words()
        .iter()
        .enumerate()
        .filter(|(_, w)| w.text != "zenith" && w.text != "krypton")
        .map(|(i, _)| crew_core::ExplanationUnit {
            member_indices: vec![i],
            weight: 1.0,
        })
        .collect();
    let filler_aopc =
        em_metrics::aopc_deletion(&PlantedMatcher, &tokenized, &filler, &fractions).unwrap();
    assert!(
        crew_aopc > filler_aopc,
        "CREW aopc {crew_aopc} should beat filler {filler_aopc}"
    );
}
