//! Property tests of the `em-stream` blocking stage: the canonical
//! connected components are invariant under record order and thread
//! count, every true synthetic duplicate pair survives blocking
//! (recall = 1.0 — the generator guarantees duplicates share at least
//! two qualifying tokens), and the candidate set is deduplicated and
//! left/right symmetric.

use em_data::Record;
use em_stream::{block_candidates, BlockingConfig};
use em_synth::{record_collections, CollectionsConfig, Family, RecordCollections};
use propcheck::prelude::*;

fn family_of(idx: usize) -> Family {
    [
        Family::Products,
        Family::Citations,
        Family::Restaurants,
        Family::Songs,
        Family::Beers,
    ][idx % 5]
}

fn collections(family: Family, entities: usize, seed: u64) -> RecordCollections {
    record_collections(
        family,
        CollectionsConfig {
            entities,
            duplicate_rate: 0.5,
            extra_right: entities / 5,
            seed,
        },
    )
    .expect("synthetic collections generate")
}

/// A huge cap so no block is skipped: the recall guarantee is about key
/// overlap, and stop-token skipping is a separate precision/cost knob.
fn keep_all() -> BlockingConfig {
    BlockingConfig {
        max_block_size: usize::MAX,
        ..Default::default()
    }
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

fn canonicalize(mut components: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for c in &mut components {
        c.sort_unstable();
    }
    components.sort();
    components
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Recall = 1.0: every true duplicate pair is in the candidate set.
    #[test]
    fn blocking_keeps_every_true_duplicate(
        family_idx in 0usize..5,
        entities in 20usize..70,
        seed in 0u64..1000,
    ) {
        let c = collections(family_of(family_idx), entities, seed);
        let out = block_candidates(&c.left, &c.right, &keep_all());
        prop_assert_eq!(out.oversized, 0);
        for &(lid, rid) in &c.true_matches {
            let i = c.left.iter().position(|r| r.id == lid).unwrap() as u32;
            let j = c.right.iter().position(|r| r.id == rid).unwrap() as u32;
            prop_assert!(
                out.pairs.binary_search(&(i, j)).is_ok(),
                "true pair ({lid}, {rid}) lost by blocking"
            );
        }
    }

    // The candidate list is strictly increasing (sorted + deduplicated),
    // and swapping the collections yields exactly the mirrored set.
    #[test]
    fn candidates_are_deduped_and_symmetric(
        family_idx in 0usize..5,
        entities in 20usize..60,
        seed in 0u64..1000,
    ) {
        let c = collections(family_of(family_idx), entities, seed);
        let config = BlockingConfig::default();
        let out = block_candidates(&c.left, &c.right, &config);
        prop_assert!(out.pairs.windows(2).all(|w| w[0] < w[1]));

        let swapped = block_candidates(&c.right, &c.left, &config);
        let mut mirrored: Vec<(u32, u32)> =
            swapped.pairs.iter().map(|&(j, i)| (i, j)).collect();
        mirrored.sort_unstable();
        prop_assert_eq!(&out.pairs, &mirrored);
        prop_assert_eq!(out.blocks, swapped.blocks);
        prop_assert_eq!(out.oversized, swapped.oversized);
    }

    // Permuting the records permutes indices but leaves the candidate
    // set and the canonical components unchanged.
    #[test]
    fn blocking_is_invariant_under_record_order(
        family_idx in 0usize..5,
        entities in 20usize..60,
        seed in 0u64..1000,
        shuffle_seed in 1u64..1_000_000,
    ) {
        let c = collections(family_of(family_idx), entities, seed);
        let config = BlockingConfig::default();
        let base = block_candidates(&c.left, &c.right, &config);

        let pl = permutation(c.left.len(), shuffle_seed);
        let pr = permutation(c.right.len(), shuffle_seed.wrapping_mul(3));
        let left: Vec<Record> = pl.iter().map(|&i| c.left[i].clone()).collect();
        let right: Vec<Record> = pr.iter().map(|&j| c.right[j].clone()).collect();
        let shuffled = block_candidates(&left, &right, &config);

        // Map shuffled indices back to the original positions.
        let mut pairs: Vec<(u32, u32)> = shuffled
            .pairs
            .iter()
            .map(|&(i, j)| (pl[i as usize] as u32, pr[j as usize] as u32))
            .collect();
        pairs.sort_unstable();
        prop_assert_eq!(&base.pairs, &pairs);

        let remapped = shuffled
            .components
            .iter()
            .map(|comp| {
                comp.iter()
                    .map(|&n| {
                        if n < left.len() {
                            pl[n]
                        } else {
                            c.left.len() + pr[n - left.len()]
                        }
                    })
                    .collect()
            })
            .collect();
        prop_assert_eq!(
            canonicalize(base.components.clone()),
            canonicalize(remapped)
        );
    }

    // The parallel phases write index-keyed slots, so any thread count
    // produces the identical candidate set and components.
    #[test]
    fn blocking_is_invariant_under_thread_count(
        family_idx in 0usize..5,
        entities in 20usize..60,
        seed in 0u64..1000,
        threads in 2usize..5,
    ) {
        let c = collections(family_of(family_idx), entities, seed);
        let sequential = block_candidates(
            &c.left,
            &c.right,
            &BlockingConfig { jobs: 1, ..Default::default() },
        );
        let parallel = block_candidates(
            &c.left,
            &c.right,
            &BlockingConfig { jobs: threads, ..Default::default() },
        );
        prop_assert_eq!(&sequential.pairs, &parallel.pairs);
        prop_assert_eq!(&sequential.components, &parallel.components);
        prop_assert_eq!(sequential.blocks, parallel.blocks);
        prop_assert_eq!(sequential.oversized, parallel.oversized);
    }
}
