pub fn placeholder() {}
