//! Shared helpers for the runnable examples: a small evaluation session
//! (with its memoizing context/explanation stores) so each example stays
//! focused on the API it demonstrates.

use em_eval::{EvalContext, EvalSession, ExperimentConfig, MatcherKind};
use em_synth::{Family, GeneratorConfig};
use std::sync::Arc;

/// A session scaled for interactive runs. Its stores make repeated
/// context preparation and explanation calls free.
pub fn demo_session() -> EvalSession {
    EvalSession::new(ExperimentConfig {
        seed: 42,
        entities: 150,
        pairs: 400,
        explain_pairs: 8,
        samples: 256,
        threads: 4,
        families: vec![Family::Products],
        matcher: MatcherKind::Attention,
    })
}

/// Fetch (or prepare once, via the session's context store) the small
/// products context the examples share.
pub fn demo_context(session: &EvalSession) -> Arc<EvalContext> {
    session
        .contexts()
        .get(
            Family::Products,
            GeneratorConfig {
                entities: 150,
                pairs: 400,
                match_rate: 0.2,
                hard_negative_rate: 0.6,
                seed: 42,
            },
        )
        .expect("synthetic generation is infallible for valid configs")
}

/// Train (cached on the context) the matcher used across examples.
pub fn demo_matcher(ctx: &EvalContext) -> std::sync::Arc<dyn em_matchers::Matcher> {
    ctx.matcher(MatcherKind::Attention)
        .expect("training on generated data succeeds")
}

/// Pick an interesting test pair: a predicted match with enough words to
/// make clustering meaningful.
pub fn interesting_pair(
    ctx: &EvalContext,
    matcher: &dyn em_matchers::Matcher,
) -> em_data::EntityPair {
    ctx.split
        .test
        .examples()
        .iter()
        .find(|ex| ex.label.is_match() && matcher.predict_proba(&ex.pair) > 0.6)
        .map(|ex| ex.pair.clone())
        .unwrap_or_else(|| ctx.split.test.examples()[0].pair.clone())
}
