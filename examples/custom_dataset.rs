//! Use CREW on your own data: load a DeepMatcher-style joined CSV
//! (`label,ltable_*,rtable_*` columns), train a matcher, explain pairs.
//!
//! ```text
//! cargo run --release -p examples --bin custom_dataset [path/to/pairs.csv]
//! ```
//!
//! Without an argument the example writes and reads back a small
//! demonstration CSV so it always runs offline.

use crew_core::{Crew, CrewOptions};
use em_data::dataset_from_joined_csv;
use em_embed::{EmbeddingOptions, WordEmbeddings};
use em_matchers::{evaluate, LogisticMatcher, Matcher, TrainOptions};
use std::sync::Arc;

const DEMO_CSV: &str = "\
label,ltable_title,ltable_brand,ltable_price,rtable_title,rtable_brand,rtable_price
1,sonix bravia 55 oled tv,sonix,899.99,sonix bravia 55in television,sonix,879.00
1,veltron x200 gaming laptop,veltron,1299.00,veltron x200 laptop 16gb,veltron,1250.00
0,sonix bravia 55 oled tv,sonix,899.99,sonix wh900 headphones,sonix,199.99
1,koyama airfry pro oven,koyama,149.50,koyama air fryer pro,koyama,144.99
0,veltron x200 gaming laptop,veltron,1299.00,koyama airfry pro oven,koyama,149.50
1,brixton soundwave speaker,brixton,79.99,brixton soundwave bt speaker,brixton,82.00
0,brixton soundwave speaker,brixton,79.99,veltron x200 laptop 16gb,veltron,1250.00
1,sonix wh900 headphones,sonix,199.99,sonix wh 900 wireless headphones,sonix,189.00
0,koyama airfry pro oven,koyama,149.50,brixton soundwave bt speaker,brixton,82.00
1,lumetra vista 4k projector,lumetra,549.00,lumetra vista projector 4k,lumetra,539.99
0,lumetra vista 4k projector,lumetra,549.00,sonix bravia 55in television,sonix,879.00
1,quorra breeze tower fan,quorra,89.00,quorra breeze fan tower,quorra,85.50
0,quorra breeze tower fan,quorra,89.00,lumetra vista projector 4k,lumetra,539.99
1,nordvik polar freezer 300l,nordvik,449.00,nordvik polar 300 l freezer,nordvik,440.00
0,nordvik polar freezer 300l,nordvik,449.00,quorra breeze fan tower,quorra,85.50
1,ashford quiet kettle 17l,ashford,39.99,ashford quiet kettle,ashford,38.00
0,ashford quiet kettle 17l,ashford,39.99,nordvik polar 300 l freezer,nordvik,440.00
1,tremona slate e reader,tremona,129.00,tremona slate ereader wifi,tremona,125.00
0,tremona slate e reader,tremona,129.00,ashford quiet kettle,ashford,38.00
0,sonix wh900 headphones,sonix,199.99,tremona slate ereader wifi,tremona,125.00
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load the CSV (user-supplied path or the built-in demo).
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)?,
        None => {
            println!("(no CSV given — using the built-in 20-pair demo)\n");
            DEMO_CSV.to_string()
        }
    };
    let dataset = dataset_from_joined_csv("custom", &text)?;
    let stats = dataset.stats();
    println!(
        "loaded {} pairs ({} matches, {} attributes: {})",
        stats.pairs,
        stats.matches,
        stats.attributes,
        dataset.schema().names().collect::<Vec<_>>().join(", ")
    );

    // 2. Split and train. Tiny datasets train in milliseconds; for real
    //    ER-Magellan exports expect a few seconds.
    let split = dataset.split(0.6, 0.2, 1)?;
    let matcher = LogisticMatcher::fit(&split.train, &split.validation, TrainOptions::default())?;
    let q = evaluate(&matcher, &split.test);
    println!("logistic matcher F1 on test: {:.3}\n", q.f1);

    // 3. Word embeddings for CREW's semantic knowledge, trained on the
    //    dataset's own corpus.
    let embeddings = Arc::new(WordEmbeddings::train_on_dataset(
        &split.train,
        EmbeddingOptions::default(),
    )?);

    // 4. Explain every test pair.
    let crew = Crew::new(embeddings, CrewOptions::default());
    for ex in split.test.examples() {
        let p = matcher.predict_proba(&ex.pair);
        println!(
            "--- pair (truth: {}, model: {:.3}) ---",
            if ex.label.is_match() {
                "match"
            } else {
                "non-match"
            },
            p
        );
        let explanation = crew.explain_clusters(&matcher, &ex.pair)?;
        println!("{}", explanation.render(ex.pair.schema()));
    }
    Ok(())
}
