//! The full EM pipeline on raw record tables: blocking → matching →
//! CREW explanation → global summary. This is the workflow a downstream
//! user runs on two dirty sources, end to end.
//!
//! ```text
//! cargo run --release -p examples --bin blocking_pipeline
//! ```

use crew_core::{explain_dataset, Crew, CrewOptions};
use em_data::{block, candidates_to_pairs, BlockingStrategy, Record};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Two "sources": the demo context's dataset supplies clean left
    //    records and corrupted right records — exactly the two-table shape
    //    blocking consumes.
    let session = examples_support::demo_session();
    let ctx = examples_support::demo_context(&session);
    let schema = ctx.dataset.schema_arc();
    let left: Vec<Record> = ctx
        .dataset
        .examples()
        .iter()
        .take(150)
        .map(|e| e.pair.left().clone())
        .collect();
    let right: Vec<Record> = ctx
        .dataset
        .examples()
        .iter()
        .take(150)
        .map(|e| e.pair.right().clone())
        .collect();
    println!(
        "sources: {} left records, {} right records",
        left.len(),
        right.len()
    );

    // 2. Blocking: brand equality plus a token-overlap pass.
    let by_brand = block(
        &schema,
        &left,
        &right,
        &BlockingStrategy::AttributeEquality { attribute: 1 },
    )?;
    let by_tokens = block(
        &schema,
        &left,
        &right,
        &BlockingStrategy::TokenOverlap { min_shared: 4 },
    )?;
    println!(
        "blocking: brand-equality {} candidates (reduction {:.3}), token-overlap {} candidates",
        by_brand.candidates.len(),
        by_brand.reduction_ratio(left.len(), right.len()),
        by_tokens.candidates.len()
    );
    // Union of the two candidate sets.
    let mut candidates = by_brand.candidates;
    for c in by_tokens.candidates {
        if !candidates.contains(&c) {
            candidates.push(c);
        }
    }
    let pairs = candidates_to_pairs(&schema, &left, &right, &candidates)?;

    // 3. Matching: score every candidate with the trained attention model.
    let matcher = examples_support::demo_matcher(&ctx);
    let mut matches: Vec<&em_data::EntityPair> =
        pairs.iter().filter(|p| matcher.predict(p)).collect();
    println!(
        "matcher accepted {} of {} candidates\n",
        matches.len(),
        pairs.len()
    );
    matches.truncate(3);

    // 4. Explain the accepted matches with CREW.
    let crew = Crew::new(Arc::clone(&ctx.embeddings), CrewOptions::default());
    for pair in &matches {
        println!("--- match (p = {:.3}) ---", matcher.predict_proba(pair));
        let ce = crew.explain_clusters(matcher.as_ref(), pair)?;
        println!("{}", ce.render(pair.schema()));
        // Machine-readable form for downstream dashboards:
        let json = crew_core::cluster_explanation_to_json(&ce, pair.schema());
        println!("json: {}…\n", &json[..json.len().min(120)]);
    }

    // 5. Global view: what does this matcher rely on overall?
    let sample = ctx.split.test.sample(15, 7);
    let global = explain_dataset(&crew, matcher.as_ref(), &sample, 15, 2)?;
    println!("{}", global.render());
    Ok(())
}
