//! Quickstart: generate a product-matching dataset, train a token-level
//! attention matcher, and explain one of its decisions with CREW.
//!
//! ```text
//! cargo run --release -p examples --bin quickstart
//! ```

use crew_core::{Crew, CrewOptions};
use em_matchers::evaluate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A dataset: five seeded synthetic families mirror the ER-Magellan
    //    benchmark; real DeepMatcher CSVs load via
    //    em_data::dataset_from_joined_csv (see the custom_dataset example).
    let session = examples_support::demo_session();
    let ctx = examples_support::demo_context(&session);
    println!(
        "dataset: {} ({} pairs)",
        ctx.dataset.name(),
        ctx.dataset.len()
    );

    // 2. A matcher: the token-level soft-alignment model (the stand-in for
    //    the transformer EM models the paper explains).
    let matcher = examples_support::demo_matcher(&ctx);
    let quality = evaluate(matcher.as_ref(), &ctx.split.test);
    println!(
        "matcher '{}' — P {:.3} / R {:.3} / F1 {:.3}\n",
        matcher.name(),
        quality.precision,
        quality.recall,
        quality.f1
    );

    // 3. A pair worth explaining.
    let pair = examples_support::interesting_pair(&ctx, matcher.as_ref());
    println!("pair under explanation:\n{pair}");
    println!(
        "model says match probability = {:.3}\n",
        matcher.predict_proba(&pair)
    );

    // 4. CREW: clusters of words from three knowledge sources (semantic
    //    similarity, attribute arrangement, model importance).
    let crew = Crew::new(
        std::sync::Arc::clone(&ctx.embeddings),
        CrewOptions::default(),
    );
    let explanation = crew.explain_clusters(matcher.as_ref(), &pair)?;
    println!("{}", explanation.render(pair.schema()));

    // 5. Drill down: the word-level attribution CREW computed internally.
    println!("{}", explanation.word_level.render(pair.schema(), 8));
    Ok(())
}
