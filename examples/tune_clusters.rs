//! Inspect CREW's cluster-count selection: sweep K on one pair, print the
//! fidelity/silhouette trade-off and where the knee rule lands, then show
//! how the knowledge-source weights change the clustering.
//!
//! ```text
//! cargo run --release -p examples --bin tune_clusters
//! ```

use crew_core::{Crew, CrewOptions, KnowledgeWeights};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = examples_support::demo_session();
    let ctx = examples_support::demo_context(&session);
    let matcher = examples_support::demo_matcher(&ctx);
    let pair = examples_support::interesting_pair(&ctx, matcher.as_ref());
    println!("pair:\n{pair}");

    // 1. The K sweep behind CREW's model selection.
    let crew = Crew::new(Arc::clone(&ctx.embeddings), CrewOptions::default());
    let sweep = crew.k_sweep(matcher.as_ref(), &pair)?;
    let chosen = crew.explain_clusters(matcher.as_ref(), &pair)?;
    println!("K sweep (tau = {:.2}):", crew.options().tau);
    println!("{:>4} {:>12} {:>12}", "K", "group_R2", "silhouette");
    for (k, r2, sil) in &sweep {
        let marker = if *k == chosen.selected_k {
            "  <= selected"
        } else {
            ""
        };
        println!("{k:>4} {r2:>12.4} {sil:>12.4}{marker}");
    }
    println!();

    // 2. How each knowledge source shapes the clusters.
    for (name, weights) in [
        ("semantic only", KnowledgeWeights::only_semantic()),
        ("attribute only", KnowledgeWeights::only_attribute()),
        ("importance only", KnowledgeWeights::only_importance()),
        ("all three (CREW)", KnowledgeWeights::default()),
    ] {
        let variant = Crew::new(
            Arc::clone(&ctx.embeddings),
            CrewOptions {
                knowledge: weights,
                ..Default::default()
            },
        );
        let ce = variant.explain_clusters(matcher.as_ref(), &pair)?;
        println!("=== {name} ===");
        println!("{}", ce.render(pair.schema()));
    }
    Ok(())
}
