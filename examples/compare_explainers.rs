//! Compare all six explanation systems (CREW + LIME, Mojito, Landmark,
//! LEMON, CERTA) on the same pair and model, reporting fidelity and
//! explanation size side by side.
//!
//! ```text
//! cargo run --release -p examples --bin compare_explainers
//! ```

use em_data::TokenizedPair;
use em_eval::{ExplainBudget, ExplainerKind, MatcherKind};
use em_metrics as metrics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = examples_support::demo_session();
    let ctx = examples_support::demo_context(&session);
    let matcher = examples_support::demo_matcher(&ctx);
    let pair = examples_support::interesting_pair(&ctx, matcher.as_ref());
    let tokenized = TokenizedPair::new(pair.clone());

    println!(
        "pair under explanation ({} words):\n{pair}",
        tokenized.len()
    );
    println!("model probability: {:.3}\n", matcher.predict_proba(&pair));

    let budget = ExplainBudget {
        samples: 256,
        seed: 11,
        threads: 4,
    };
    let fractions = metrics::standard_fractions();

    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "explainer", "units", "aopc_del", "suff@30%", "flip?", "secs"
    );
    for kind in ExplainerKind::all() {
        // The session's explanation store computes each explanation once;
        // the second loop below re-requests the same keys as pure hits.
        let out =
            session
                .explanations()
                .explain(&ctx, MatcherKind::Attention, kind, budget, &pair)?;
        let aopc = metrics::aopc_deletion(matcher.as_ref(), &tokenized, &out.units, &fractions)?;
        let suff = metrics::sufficiency(matcher.as_ref(), &tokenized, &out.units, 0.3)?;
        let flip = metrics::decision_flip(matcher.as_ref(), &tokenized, &out.units)?;
        println!(
            "{:<10} {:>8} {:>10.3} {:>10.3} {:>10} {:>9.3}",
            kind.label(),
            out.units.len(),
            aopc,
            suff,
            if flip { "yes" } else { "no" },
            out.elapsed
        );
    }

    // Show what the top unit of each system actually contains. These are
    // store hits — no explanation is recomputed.
    println!("\ntop unit per explainer:");
    for kind in ExplainerKind::all() {
        let out =
            session
                .explanations()
                .explain(&ctx, MatcherKind::Attention, kind, budget, &pair)?;
        let ranked = metrics::ranked_units(&out.units);
        if let Some(top) = ranked.first() {
            let words: Vec<String> = top
                .member_indices
                .iter()
                .map(|&i| out.word_level.words[i].label(pair.schema()))
                .collect();
            println!(
                "  {:<10} {:+.4} {{{}}}",
                kind.label(),
                top.weight,
                words.join(", ")
            );
        } else {
            println!("  {:<10} (empty explanation)", kind.label());
        }
    }
    println!("\n{}", session.stats_summary());
    Ok(())
}
