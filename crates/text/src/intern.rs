//! Arena-interned tokenization for the perturbation-query hot path.
//!
//! A CREW explanation queries the matcher with hundreds of masked
//! variants of one pair. The masked cell *values* are drawn from a tiny
//! set (subsets of the original tokens), so re-tokenizing each variant
//! into fresh `Vec<String>`s — the `em_text::tokenize` path — burns
//! nearly all of its time allocating strings it has produced before.
//!
//! [`TokenArena`] interns at two levels:
//!
//! - **tokens** (and character q-grams) map to dense `u32` ids, so set
//!   kernels run on sorted integer slices
//!   ([`crate::similarity::jaccard_sorted_ids`]) instead of `HashSet`s
//!   of strings;
//! - **cells** (whole attribute values) map to ids whose token/gram
//!   slices are computed once and stored in flat arrays; re-interning a
//!   seen cell is a single hash lookup and no allocation.
//!
//! The arena is a scratch structure: callers `clear()` it between
//! batches (capacity is retained). Token ids are only meaningful within
//! one arena lifetime — they are *not* a persistent vocabulary (that is
//! [`crate::Vocabulary`]'s job).
//!
//! Determinism: tokens are produced by the same `scan_runs` +
//! char-wise-lowercase core as [`crate::tokenize`], and gram sets by the
//! same padding rules as [`crate::qgrams`] over the `str::to_lowercase`
//! of the cell, so kernels over arena slices are bitwise-identical to
//! their string counterparts.

use crate::tokenize::{lowercase_run_into, scan_runs};
use std::collections::HashMap;

/// q-gram width used for interned gram sets; matches the `q = 3` the
/// matcher feature extractor passes to [`crate::qgram_jaccard`].
pub const GRAM_Q: usize = 3;

/// Per-cell index ranges into the arena's flat storage.
#[derive(Debug, Clone, Copy)]
struct CellSpans {
    seq: (u32, u32),
    sorted: (u32, u32),
    grams: (u32, u32),
}

/// Interner mapping cell text → token-id / gram-id slices; see the
/// module docs for the lifecycle.
#[derive(Debug)]
pub struct TokenArena {
    /// Whether [`Self::intern_cell`] materialises gram sets. Gram
    /// construction (lowercase + window hashing per distinct cell) is
    /// the most expensive part of first-sight interning; callers that
    /// never read [`Self::grams`] — e.g. the attention matcher's
    /// alignment path — opt out via [`Self::without_grams`].
    build_grams: bool,
    token_ids: HashMap<String, u32>,
    token_texts: Vec<String>,
    gram_ids: HashMap<String, u32>,
    cell_ids: HashMap<String, u32>,
    cell_texts: Vec<String>,
    cells: Vec<CellSpans>,
    /// Token ids of every cell in source order, concatenated.
    seq: Vec<u32>,
    /// Sorted, deduplicated token ids of every cell, concatenated.
    sorted: Vec<u32>,
    /// Sorted, deduplicated gram ids of every cell, concatenated.
    grams: Vec<u32>,
    tok_scratch: String,
    char_scratch: Vec<char>,
}

/// Sort the tail `v[start..]` and drop adjacent duplicates in place.
fn sort_dedup_tail(v: &mut Vec<u32>, start: usize) {
    v[start..].sort_unstable();
    let mut w = start;
    for r in start..v.len() {
        if w == start || v[w - 1] != v[r] {
            v[w] = v[r];
            w += 1;
        }
    }
    v.truncate(w);
}

impl Default for TokenArena {
    /// Grams are built by default so `Default`-derived scratch structs
    /// (e.g. the feature extractor's) keep the full contract.
    fn default() -> Self {
        TokenArena {
            build_grams: true,
            token_ids: HashMap::new(),
            token_texts: Vec::new(),
            gram_ids: HashMap::new(),
            cell_ids: HashMap::new(),
            cell_texts: Vec::new(),
            cells: Vec::new(),
            seq: Vec::new(),
            sorted: Vec::new(),
            grams: Vec::new(),
            tok_scratch: String::new(),
            char_scratch: Vec::new(),
        }
    }
}

impl TokenArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena that skips gram-set construction; [`Self::grams`]
    /// returns an empty slice for every cell. Use when only token
    /// sequences/sets are consumed.
    pub fn without_grams() -> Self {
        TokenArena {
            build_grams: false,
            ..Self::default()
        }
    }

    /// Drop all interned content but keep allocated capacity; call
    /// between batches so ids never leak across batch boundaries.
    pub fn clear(&mut self) {
        self.token_ids.clear();
        self.token_texts.clear();
        self.gram_ids.clear();
        self.cell_ids.clear();
        self.cell_texts.clear();
        self.cells.clear();
        self.seq.clear();
        self.sorted.clear();
        self.grams.clear();
    }

    /// Intern a cell value, tokenizing it on first sight; returns its id.
    pub fn intern_cell(&mut self, text: &str) -> u32 {
        if let Some(&id) = self.cell_ids.get(text) {
            return id;
        }
        let id = self.cell_texts.len() as u32;
        let seq_start = self.seq.len();
        // Token sequence (source order, duplicates kept).
        let token_ids = &mut self.token_ids;
        let token_texts = &mut self.token_texts;
        let tok_scratch = &mut self.tok_scratch;
        let seq = &mut self.seq;
        scan_runs(text, |start, end| {
            tok_scratch.clear();
            lowercase_run_into(&text[start..end], tok_scratch);
            let tid = match token_ids.get(tok_scratch.as_str()) {
                Some(&tid) => tid,
                None => {
                    let tid = token_texts.len() as u32;
                    token_ids.insert(tok_scratch.clone(), tid);
                    token_texts.push(tok_scratch.clone());
                    tid
                }
            };
            seq.push(tid);
        });
        let seq_end = self.seq.len();
        // Sorted distinct token ids.
        let sorted_start = self.sorted.len();
        self.sorted.extend_from_slice(&self.seq[seq_start..seq_end]);
        sort_dedup_tail(&mut self.sorted, sorted_start);
        let sorted_end = self.sorted.len();
        // Sorted distinct gram ids over the '#'-padded lowercased text —
        // `str::to_lowercase` on purpose, mirroring the q-gram feature's
        // `qgram_jaccard(&l.to_lowercase(), ..)` call exactly.
        let gram_start = self.grams.len();
        if self.build_grams {
            let lower = text.to_lowercase();
            self.char_scratch.clear();
            self.char_scratch.push('#');
            self.char_scratch.extend(lower.chars());
            self.char_scratch.push('#');
            if self.char_scratch.len() < GRAM_Q {
                let gid = Self::intern_gram(
                    &mut self.gram_ids,
                    &mut self.tok_scratch,
                    &self.char_scratch,
                );
                self.grams.push(gid);
            } else {
                for w in self.char_scratch.windows(GRAM_Q) {
                    let gid = Self::intern_gram(&mut self.gram_ids, &mut self.tok_scratch, w);
                    self.grams.push(gid);
                }
            }
            sort_dedup_tail(&mut self.grams, gram_start);
        }
        let gram_end = self.grams.len();

        self.cell_ids.insert(text.to_string(), id);
        self.cell_texts.push(text.to_string());
        self.cells.push(CellSpans {
            seq: (seq_start as u32, seq_end as u32),
            sorted: (sorted_start as u32, sorted_end as u32),
            grams: (gram_start as u32, gram_end as u32),
        });
        id
    }

    fn intern_gram(
        gram_ids: &mut HashMap<String, u32>,
        scratch: &mut String,
        chars: &[char],
    ) -> u32 {
        scratch.clear();
        scratch.extend(chars.iter());
        match gram_ids.get(scratch.as_str()) {
            Some(&gid) => gid,
            None => {
                let gid = gram_ids.len() as u32;
                gram_ids.insert(scratch.clone(), gid);
                gid
            }
        }
    }

    /// Token ids of a cell in source order (duplicates kept).
    pub fn tokens(&self, cell: u32) -> &[u32] {
        let (s, e) = self.cells[cell as usize].seq;
        &self.seq[s as usize..e as usize]
    }

    /// Sorted, deduplicated token ids of a cell.
    pub fn sorted_tokens(&self, cell: u32) -> &[u32] {
        let (s, e) = self.cells[cell as usize].sorted;
        &self.sorted[s as usize..e as usize]
    }

    /// Sorted, deduplicated q-gram ids of a cell.
    pub fn grams(&self, cell: u32) -> &[u32] {
        let (s, e) = self.cells[cell as usize].grams;
        &self.grams[s as usize..e as usize]
    }

    /// Original (raw) text of an interned cell.
    pub fn cell_text(&self, cell: u32) -> &str {
        &self.cell_texts[cell as usize]
    }

    /// Lowercased text of an interned token id.
    pub fn token_text(&self, token: u32) -> &str {
        &self.token_texts[token as usize]
    }

    /// Number of distinct tokens interned so far (ids are `0..n_tokens`).
    pub fn n_tokens(&self) -> usize {
        self.token_texts.len()
    }

    /// Number of distinct cells interned so far.
    pub fn n_cells(&self) -> usize {
        self.cell_texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cell_texts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn interned_tokens_match_string_tokenizer() {
        let mut arena = TokenArena::new();
        for text in [
            "Sony WH-1000XM4 Headphones",
            "",
            "café—crème (2021)",
            "a a b",
        ] {
            let id = arena.intern_cell(text);
            let via_arena: Vec<&str> = arena
                .tokens(id)
                .iter()
                .map(|&t| arena.token_text(t))
                .collect();
            let via_strings = crate::tokenize(text);
            assert_eq!(via_arena, via_strings, "input: {text:?}");
        }
    }

    #[test]
    fn reinterning_returns_same_id() {
        let mut arena = TokenArena::new();
        let a = arena.intern_cell("sony tv");
        let b = arena.intern_cell("lg tv");
        let a2 = arena.intern_cell("sony tv");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(arena.n_cells(), 2);
        // "tv" is shared between the cells.
        assert_eq!(arena.n_tokens(), 3);
        assert_eq!(arena.cell_text(a), "sony tv");
    }

    #[test]
    fn sorted_tokens_are_sorted_distinct() {
        let mut arena = TokenArena::new();
        let id = arena.intern_cell("b a c a b");
        assert_eq!(arena.tokens(id).len(), 5);
        let sorted = arena.sorted_tokens(id);
        assert_eq!(sorted.len(), 3);
        for w in sorted.windows(2) {
            assert!(w[0] < w[1]);
        }
        let from_seq: HashSet<u32> = arena.tokens(id).iter().copied().collect();
        let from_sorted: HashSet<u32> = sorted.iter().copied().collect();
        assert_eq!(from_seq, from_sorted);
    }

    #[test]
    fn gram_sets_match_qgrams_of_lowercased_text() {
        let mut arena = TokenArena::new();
        for text in ["Sony TV", "", "ab", "x"] {
            let id = arena.intern_cell(text);
            let expect: HashSet<String> = crate::qgrams(&text.to_lowercase(), GRAM_Q)
                .into_iter()
                .collect();
            assert_eq!(
                arena.grams(id).len(),
                expect.len(),
                "gram set size for {text:?}"
            );
            let sorted = arena.grams(id);
            for w in sorted.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn distinct_cells_share_gram_ids() {
        let mut arena = TokenArena::new();
        let a = arena.intern_cell("sony");
        let b = arena.intern_cell("sony x");
        let ga: HashSet<u32> = arena.grams(a).iter().copied().collect();
        let gb: HashSet<u32> = arena.grams(b).iter().copied().collect();
        // "#so"/"son"/"ony" grams are shared.
        assert!(ga.intersection(&gb).count() >= 3);
    }

    #[test]
    fn clear_resets_ids_but_keeps_working() {
        let mut arena = TokenArena::new();
        arena.intern_cell("one two");
        arena.intern_cell("three");
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.n_tokens(), 0);
        let id = arena.intern_cell("fresh start");
        assert_eq!(id, 0);
        assert_eq!(arena.tokens(id).len(), 2);
    }
}
