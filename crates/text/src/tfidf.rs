//! TF-IDF vectorisation over token streams, used by the logistic matcher's
//! whole-record cosine feature and by the CERTA support-set retrieval.

use std::collections::HashMap;

/// A fitted TF-IDF model: vocabulary plus smoothed inverse document
/// frequencies (`ln((1+N)/(1+df)) + 1`, the scikit-learn convention).
#[derive(Debug, Clone)]
pub struct TfIdf {
    vocab: HashMap<String, usize>,
    idf: Vec<f64>,
    n_docs: usize,
}

/// Sparse vector: sorted `(index, value)` pairs.
pub type SparseVec = Vec<(usize, f64)>;

impl TfIdf {
    /// Fit from an iterator of documents (each a token slice).
    pub fn fit<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut vocab: HashMap<String, usize> = HashMap::new();
        let mut df: Vec<usize> = Vec::new();
        let mut n_docs = 0usize;
        let mut seen: Vec<usize> = Vec::new();
        for doc in docs {
            n_docs += 1;
            seen.clear();
            for tok in doc {
                let next_id = vocab.len();
                let id = *vocab.entry(tok.clone()).or_insert(next_id);
                if id == df.len() {
                    df.push(0);
                }
                if !seen.contains(&id) {
                    seen.push(id);
                }
            }
            for &id in &seen {
                df[id] += 1;
            }
        }
        let idf = df
            .iter()
            .map(|&d| ((1.0 + n_docs as f64) / (1.0 + d as f64)).ln() + 1.0)
            .collect();
        TfIdf { vocab, idf, n_docs }
    }

    /// Number of documents the model was fitted on.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// IDF of a token, if in vocabulary.
    pub fn idf(&self, token: &str) -> Option<f64> {
        self.vocab.get(token).map(|&i| self.idf[i])
    }

    /// Vocabulary column of a token, if fitted.
    pub fn column(&self, token: &str) -> Option<usize> {
        self.vocab.get(token).copied()
    }

    /// IDF weight of a vocabulary column (panics if out of range).
    pub fn idf_of_column(&self, column: usize) -> f64 {
        self.idf[column]
    }

    /// [`TfIdf::transform`] from a pre-aggregated term-frequency list:
    /// `counts` holds `(column, term_count)` sorted ascending by column
    /// with no duplicates, out-of-vocabulary tokens already dropped.
    /// Bitwise-identical to `transform`: that path also multiplies
    /// `tf * idf` per entry, sorts by column, and only then accumulates
    /// the norm in ascending-column order.
    pub fn transform_sorted_counts(&self, counts: &[(usize, f64)]) -> SparseVec {
        debug_assert!(counts.windows(2).all(|w| w[0].0 < w[1].0));
        let mut vec: SparseVec = counts
            .iter()
            .map(|&(id, tf)| (id, tf * self.idf[id]))
            .collect();
        let norm: f64 = vec.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, v) in &mut vec {
                *v /= norm;
            }
        }
        vec
    }

    /// Transform a document into an L2-normalised sparse TF-IDF vector.
    /// Out-of-vocabulary tokens are dropped.
    pub fn transform(&self, doc: &[String]) -> SparseVec {
        let mut counts: HashMap<usize, f64> = HashMap::new();
        for tok in doc {
            if let Some(&id) = self.vocab.get(tok) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut vec: SparseVec = counts
            .into_iter()
            .map(|(id, tf)| (id, tf * self.idf[id]))
            .collect();
        vec.sort_by_key(|&(id, _)| id);
        let norm: f64 = vec.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, v) in &mut vec {
                *v /= norm;
            }
        }
        vec
    }

    /// Cosine similarity between the TF-IDF vectors of two documents.
    pub fn cosine(&self, a: &[String], b: &[String]) -> f64 {
        sparse_dot(&self.transform(a), &self.transform(b))
    }
}

/// Dot product of two sorted sparse vectors.
pub fn sparse_dot(a: &SparseVec, b: &SparseVec) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut sum = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                sum += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

fn owned(words: &[&str]) -> Vec<String> {
    words.iter().map(|s| s.to_string()).collect()
}

/// Convenience: fit a TF-IDF model over `&str` documents (used in tests and
/// small examples).
pub fn fit_from_strs(docs: &[Vec<&str>]) -> TfIdf {
    let owned_docs: Vec<Vec<String>> = docs.iter().map(|d| owned(d)).collect();
    TfIdf::fit(owned_docs.iter().map(|d| d.as_slice()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<String>> {
        vec![
            owned(&["sony", "tv", "black"]),
            owned(&["sony", "headphones"]),
            owned(&["lg", "tv", "white"]),
        ]
    }

    #[test]
    fn fit_counts_documents_and_vocab() {
        let d = docs();
        let m = TfIdf::fit(d.iter().map(|x| x.as_slice()));
        assert_eq!(m.n_docs(), 3);
        assert_eq!(m.vocab_size(), 6);
    }

    #[test]
    fn idf_ranks_rare_above_common() {
        let d = docs();
        let m = TfIdf::fit(d.iter().map(|x| x.as_slice()));
        let idf_sony = m.idf("sony").unwrap();
        let idf_black = m.idf("black").unwrap();
        assert!(idf_black > idf_sony, "rare token should have higher idf");
        assert_eq!(m.idf("unknown"), None);
    }

    #[test]
    fn transform_is_normalised_and_sorted() {
        let d = docs();
        let m = TfIdf::fit(d.iter().map(|x| x.as_slice()));
        let v = m.transform(&owned(&["sony", "tv", "sony"]));
        let norm: f64 = v.iter().map(|&(_, x)| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn transform_sorted_counts_matches_transform_bitwise() {
        let d = docs();
        let m = TfIdf::fit(d.iter().map(|x| x.as_slice()));
        let doc = owned(&["sony", "tv", "sony", "zzz", "black"]);
        // Build the (column, count) view the interned path would supply.
        let mut counts: Vec<(usize, f64)> = Vec::new();
        for tok in &doc {
            if let Some(col) = m.column(tok) {
                match counts.iter_mut().find(|(c, _)| *c == col) {
                    Some((_, n)) => *n += 1.0,
                    None => counts.push((col, 1.0)),
                }
            }
        }
        counts.sort_by_key(|&(c, _)| c);
        let fast = m.transform_sorted_counts(&counts);
        let slow = m.transform(&doc);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn oov_tokens_are_dropped() {
        let d = docs();
        let m = TfIdf::fit(d.iter().map(|x| x.as_slice()));
        assert!(m.transform(&owned(&["zzz", "qqq"])).is_empty());
    }

    #[test]
    fn cosine_identical_docs_is_one() {
        let d = docs();
        let m = TfIdf::fit(d.iter().map(|x| x.as_slice()));
        let a = owned(&["sony", "tv", "black"]);
        assert!((m.cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orders_by_overlap() {
        let d = docs();
        let m = TfIdf::fit(d.iter().map(|x| x.as_slice()));
        let q = owned(&["sony", "tv"]);
        let close = owned(&["sony", "tv", "black"]);
        let far = owned(&["lg", "white"]);
        assert!(m.cosine(&q, &close) > m.cosine(&q, &far));
    }

    #[test]
    fn sparse_dot_disjoint_is_zero() {
        let a = vec![(0, 1.0), (2, 1.0)];
        let b = vec![(1, 1.0), (3, 1.0)];
        assert_eq!(sparse_dot(&a, &b), 0.0);
        let c = vec![(2, 0.5)];
        assert_eq!(sparse_dot(&a, &c), 0.5);
    }

    #[test]
    fn empty_document_transforms_to_empty() {
        let d = docs();
        let m = TfIdf::fit(d.iter().map(|x| x.as_slice()));
        assert!(m.transform(&[]).is_empty());
        assert_eq!(m.cosine(&[], &owned(&["sony"])), 0.0);
    }
}
