//! Word tokenization for entity descriptions.
//!
//! EM records are short, noisy product/bibliographic strings; the tokenizer
//! lowercases, splits on non-alphanumerics but keeps digit/letter mixes
//! ("mp3", "x100-s") together after separator normalisation, the behaviour
//! the DeepMatcher-family preprocessing uses.

/// A token together with its character span in the original string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lowercased token text.
    pub text: String,
    /// Byte offset of the token start in the original string.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
}

/// Shared scanner behind every tokenization entry point: invokes `emit`
/// with the byte range of each Unicode-alphanumeric run. `tokenize_spans`,
/// `tokenize`, `token_count` and `intern::TokenArena` all delegate here,
/// so the token-boundary rules live in exactly one place.
pub(crate) fn scan_runs(s: &str, mut emit: impl FnMut(usize, usize)) {
    let mut start: Option<usize> = None;
    for (i, ch) in s.char_indices() {
        if ch.is_alphanumeric() {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(st) = start.take() {
            emit(st, i);
        }
    }
    if let Some(st) = start {
        emit(st, s.len());
    }
}

/// Lowercase one token run into `out`, char-by-char via
/// `char::to_lowercase`. Deliberately NOT `str::to_lowercase`: the str
/// version applies the Greek final-sigma rule (word-final Σ → ς), and
/// token identity must not depend on position within the source string.
pub(crate) fn lowercase_run_into(run: &str, out: &mut String) {
    out.reserve(run.len());
    for ch in run.chars() {
        for lc in ch.to_lowercase() {
            out.push(lc);
        }
    }
}

/// Tokenize a string into lowercase alphanumeric tokens with spans.
///
/// Rules:
/// - Unicode alphanumeric runs form tokens; everything else separates.
/// - ASCII letters are lowercased; other characters are kept as-is
///   (lowercased via `char::to_lowercase` when single-mapped).
pub fn tokenize_spans(s: &str) -> Vec<Token> {
    let mut out = Vec::new();
    scan_runs(s, |start, end| {
        let mut text = String::with_capacity(end - start);
        lowercase_run_into(&s[start..end], &mut text);
        out.push(Token { text, start, end });
    });
    out
}

/// Tokenize into plain lowercase strings (no spans).
pub fn tokenize(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    scan_runs(s, |start, end| {
        let mut text = String::with_capacity(end - start);
        lowercase_run_into(&s[start..end], &mut text);
        out.push(text);
    });
    out
}

/// Number of tokens a string produces (no allocation).
pub fn token_count(s: &str) -> usize {
    let mut n = 0;
    scan_runs(s, |_, _| n += 1);
    n
}

/// Extract character q-grams of a token, padded with `#` boundaries.
///
/// `qgrams("abc", 2)` → `["#a", "ab", "bc", "c#"]`. Returns the padded
/// string itself if shorter than `q`.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q must be at least 1");
    let padded: Vec<char> = std::iter::once('#')
        .chain(s.chars())
        .chain(std::iter::once('#'))
        .collect();
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// A compact interned vocabulary mapping token strings to dense ids.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_token: std::collections::HashMap<String, u32>,
    tokens: Vec<String>,
    counts: Vec<u64>,
}

impl Vocabulary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a token, incrementing its frequency count.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.by_token.get(token) {
            self.counts[id as usize] += 1;
            return id;
        }
        let id = self.tokens.len() as u32;
        self.by_token.insert(token.to_string(), id);
        self.tokens.push(token.to_string());
        self.counts.push(1);
        id
    }

    /// Look up a token id without inserting.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.by_token.get(token).copied()
    }

    /// Token string for an id.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.tokens.get(id as usize).map(|s| s.as_str())
    }

    /// Frequency count recorded for an id.
    pub fn count(&self, id: u32) -> u64 {
        self.counts.get(id as usize).copied().unwrap_or(0)
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Iterate `(id, token, count)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str, u64)> {
        self.tokens
            .iter()
            .enumerate()
            .map(move |(i, t)| (i as u32, t.as_str(), self.counts[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(
            tokenize("Sony WH-1000XM4 Headphones"),
            vec!["sony", "wh", "1000xm4", "headphones"]
        );
    }

    #[test]
    fn tokenize_handles_punctuation_and_unicode() {
        assert_eq!(tokenize("café—crème (2021)"), vec!["café", "crème", "2021"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("...!!!"), Vec::<String>::new());
    }

    #[test]
    fn spans_point_back_into_source() {
        let s = "Abc  12-x";
        let toks = tokenize_spans(s);
        assert_eq!(toks.len(), 3);
        assert_eq!(&s[toks[0].start..toks[0].end], "Abc");
        assert_eq!(&s[toks[1].start..toks[1].end], "12");
        assert_eq!(&s[toks[2].start..toks[2].end], "x");
        assert_eq!(toks[0].text, "abc");
    }

    #[test]
    fn token_count_matches_tokenize() {
        for s in ["", "a", "a b c", "x-1 y_2 z", "  spaced   out  "] {
            assert_eq!(token_count(s), tokenize(s).len(), "input: {s:?}");
        }
    }

    #[test]
    fn qgrams_pad_boundaries() {
        assert_eq!(qgrams("abc", 2), vec!["#a", "ab", "bc", "c#"]);
        assert_eq!(qgrams("a", 3), vec!["#a#"]);
        assert_eq!(qgrams("", 2), vec!["##"]);
    }

    #[test]
    fn qgrams_of_len_one_enumerate_chars() {
        assert_eq!(qgrams("ab", 1), vec!["#", "a", "b", "#"]);
    }

    #[test]
    fn vocabulary_interning_round_trip() {
        let mut v = Vocabulary::new();
        let a = v.add("red");
        let b = v.add("blue");
        let a2 = v.add("red");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
        assert_eq!(v.token(a), Some("red"));
        assert_eq!(v.count(a), 2);
        assert_eq!(v.count(b), 1);
        assert_eq!(v.get("green"), None);
    }

    #[test]
    fn vocabulary_iter_in_id_order() {
        let mut v = Vocabulary::new();
        v.add("one");
        v.add("two");
        v.add("one");
        let items: Vec<_> = v.iter().collect();
        assert_eq!(items, vec![(0, "one", 2), (1, "two", 1)]);
    }
}
