//! # em-text
//!
//! Tokenization, vocabulary interning, string/set similarity measures and
//! TF-IDF vectorisation — the textual primitives shared by every layer of
//! the CREW reproduction (matchers, perturbation engine, embeddings,
//! synthetic data corruption).
//!
//! ```
//! use em_text::{tokenize, jaccard, jaro_winkler};
//! let a = tokenize("Sonix WH-900 Headphones");
//! let b = tokenize("sonix wh900 headphones");
//! assert!(jaccard(&a, &b) > 0.3);
//! assert!(jaro_winkler("panasonic", "panasonik") > 0.9);
//! ```

pub mod intern;
pub mod normalize;
pub mod similarity;
pub mod tfidf;
pub mod tokenize;

pub use intern::TokenArena;
pub use normalize::{
    canonical_number, canonical_unit, normalize_tokens, segment_letter_digit, tokenize_normalized,
};
pub use similarity::{
    dice, jaccard, jaccard_sorted_ids, jaro, jaro_winkler, lcs_len, levenshtein,
    levenshtein_similarity, monge_elkan, monge_elkan_sym, numeric_or_string_similarity,
    overlap_coefficient, overlap_sorted_ids, qgram_jaccard,
};
pub use tfidf::{sparse_dot, SparseVec, TfIdf};
pub use tokenize::{qgrams, token_count, tokenize, tokenize_spans, Token, Vocabulary};

#[cfg(test)]
mod proptests {
    use super::*;
    use propcheck::prelude::*;

    fn word() -> impl Strategy<Value = String> {
        "[a-z0-9]{0,12}"
    }

    proptest! {
        #[test]
        fn levenshtein_is_a_metric(a in word(), b in word(), c in word()) {
            let ab = levenshtein(&a, &b);
            let ba = levenshtein(&b, &a);
            prop_assert_eq!(ab, ba); // symmetry
            prop_assert_eq!(levenshtein(&a, &a), 0); // identity
            // triangle inequality
            prop_assert!(levenshtein(&a, &c) <= ab + levenshtein(&b, &c));
        }

        #[test]
        fn jaro_winkler_bounded_and_reflexive(a in word(), b in word()) {
            let s = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((jaro_winkler(&a, &a) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn jaccard_bounded_and_symmetric(
            a in propcheck::collection::vec("[a-c]{1,3}", 0..8),
            b in propcheck::collection::vec("[a-c]{1,3}", 0..8),
        ) {
            let ab = jaccard(&a, &b);
            let ba = jaccard(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        #[test]
        fn tokenize_output_is_lowercase_alphanumeric(s in ".{0,40}") {
            for tok in tokenize(&s) {
                prop_assert!(!tok.is_empty());
                prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
                // Lowercasing is idempotent (some uppercase code points like
                // 𝘼 have no lowercase mapping and stay as-is).
                prop_assert_eq!(tok.to_lowercase(), tok);
            }
        }

        #[test]
        fn tokenize_spans_cover_source_tokens(s in "[ a-zA-Z0-9,.-]{0,40}") {
            for t in tokenize_spans(&s) {
                let src = &s[t.start..t.end];
                prop_assert_eq!(src.to_lowercase(), t.text);
            }
        }

        #[test]
        fn arena_tokens_match_string_tokenizer(
            cells in propcheck::collection::vec(".{0,24}", 0..6),
        ) {
            let mut arena = TokenArena::new();
            for cell in &cells {
                let id = arena.intern_cell(cell);
                let via_arena: Vec<String> = arena
                    .tokens(id)
                    .iter()
                    .map(|&t| arena.token_text(t).to_string())
                    .collect();
                prop_assert_eq!(via_arena, tokenize(cell));
            }
        }

        #[test]
        fn sorted_id_kernels_match_hashset_kernels(
            a in propcheck::collection::vec(0u32..16, 0..12),
            b in propcheck::collection::vec(0u32..16, 0..12),
        ) {
            let mut sa = a.clone();
            sa.sort_unstable();
            sa.dedup();
            let mut sb = b.clone();
            sb.sort_unstable();
            sb.dedup();
            prop_assert_eq!(
                jaccard_sorted_ids(&sa, &sb).to_bits(),
                jaccard(&sa, &sb).to_bits()
            );
            prop_assert_eq!(
                overlap_sorted_ids(&sa, &sb).to_bits(),
                overlap_coefficient(&sa, &sb).to_bits()
            );
        }

        #[test]
        fn tfidf_cosine_bounded(
            a in propcheck::collection::vec("[a-d]{1,2}", 1..6),
            b in propcheck::collection::vec("[a-d]{1,2}", 1..6),
        ) {
            let docs = [a.clone(), b.clone()];
            let m = TfIdf::fit(docs.iter().map(|d| d.as_slice()));
            let c = m.cosine(&a, &b);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&c));
        }
    }

    /// Ported from the retired proptest regression file
    /// (`proptest-regressions/lib.txt`), which shrank to `s = "𝘼"`: an
    /// uppercase code point with no lowercase mapping must pass through
    /// tokenization unchanged, still alphanumeric, and idempotent under
    /// further lowercasing.
    #[test]
    fn tokenize_survives_unmappable_uppercase() {
        assert_eq!(tokenize("𝘼"), vec!["𝘼".to_string()]);
        for s in ["𝘼", "a𝘼b", "𝘼 𝘼", "x.𝘼.y"] {
            for tok in tokenize(s) {
                assert!(!tok.is_empty());
                assert!(tok.chars().all(|c| c.is_alphanumeric()), "{s:?} -> {tok:?}");
                assert_eq!(tok.to_lowercase(), tok, "{s:?} -> {tok:?}");
            }
        }
    }
}
