//! Opt-in token normalization for dirty product data: letter/digit
//! segmentation ("55in" → "55", "in"), unit canonicalization ("inches" →
//! "in") and number canonicalization ("1,299.00" → "1299"). Real
//! ER-Magellan sources disagree on these surface forms constantly; the
//! utilities let a matcher or explainer opt into a normalized token view
//! without changing the default tokenizer (whose output must stay aligned
//! with the original text for explanation rendering).

/// Split a token at letter/digit boundaries: `"wh1000xm4"` →
/// `["wh", "1000", "xm", "4"]`. Pure-letter or pure-digit tokens are
/// returned unchanged (as a single segment).
pub fn segment_letter_digit(token: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut cur_is_digit: Option<bool> = None;
    for c in token.chars() {
        let is_digit = c.is_ascii_digit();
        match cur_is_digit {
            Some(prev) if prev != is_digit => {
                out.push(std::mem::take(&mut cur));
                cur_is_digit = Some(is_digit);
            }
            None => cur_is_digit = Some(is_digit),
            _ => {}
        }
        cur.push(c);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Canonical short form of a measurement-unit word, if it is one.
pub fn canonical_unit(token: &str) -> Option<&'static str> {
    Some(match token {
        "inch" | "inches" | "in" | "\"" => "in",
        "centimeter" | "centimeters" | "cm" => "cm",
        "millimeter" | "millimeters" | "mm" => "mm",
        "gigabyte" | "gigabytes" | "gb" => "gb",
        "terabyte" | "terabytes" | "tb" => "tb",
        "megabyte" | "megabytes" | "mb" => "mb",
        "watt" | "watts" | "w" => "watt",
        "hertz" | "hz" => "hz",
        "gigahertz" | "ghz" => "ghz",
        "milliamp" | "milliamps" | "mah" => "mah",
        "megapixel" | "megapixels" | "mp" => "mp",
        "pound" | "pounds" | "lb" | "lbs" => "lb",
        "ounce" | "ounces" | "oz" => "oz",
        "liter" | "liters" | "litre" | "litres" | "l" => "l",
        _ => return None,
    })
}

/// Canonicalize a numeric token: strip thousands separators, drop a
/// trailing `.00`-style zero fraction, so `"1,299.00"` → `"1299"` and
/// `"12.50"` → `"12.5"`. Non-numeric tokens are returned unchanged.
pub fn canonical_number(token: &str) -> String {
    let stripped: String = token.chars().filter(|&c| c != ',').collect();
    if stripped.parse::<f64>().is_err() {
        return token.to_string();
    }
    if let Some((int_part, frac)) = stripped.split_once('.') {
        let frac = frac.trim_end_matches('0');
        if frac.is_empty() {
            int_part.to_string()
        } else {
            format!("{int_part}.{frac}")
        }
    } else {
        stripped
    }
}

/// Full normalization of a token stream: segment letter/digit boundaries,
/// canonicalize units and numbers, lowercase is assumed from `tokenize`.
pub fn normalize_tokens(tokens: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(tokens.len());
    for t in tokens {
        for seg in segment_letter_digit(t) {
            if let Some(u) = canonical_unit(&seg) {
                out.push(u.to_string());
            } else {
                out.push(canonical_number(&seg));
            }
        }
    }
    out
}

/// Tokenize then normalize in one step.
pub fn tokenize_normalized(s: &str) -> Vec<String> {
    normalize_tokens(&crate::tokenize::tokenize(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmentation_splits_mixed_tokens() {
        assert_eq!(
            segment_letter_digit("wh1000xm4"),
            vec!["wh", "1000", "xm", "4"]
        );
        assert_eq!(segment_letter_digit("55in"), vec!["55", "in"]);
        assert_eq!(segment_letter_digit("abc"), vec!["abc"]);
        assert_eq!(segment_letter_digit("1234"), vec!["1234"]);
        assert!(segment_letter_digit("").is_empty());
    }

    #[test]
    fn unit_canonicalization() {
        assert_eq!(canonical_unit("inches"), Some("in"));
        assert_eq!(canonical_unit("gb"), Some("gb"));
        assert_eq!(canonical_unit("gigabytes"), Some("gb"));
        assert_eq!(canonical_unit("sony"), None);
    }

    #[test]
    fn number_canonicalization() {
        assert_eq!(canonical_number("1299"), "1299");
        assert_eq!(canonical_number("12.50"), "12.5");
        assert_eq!(canonical_number("12.00"), "12");
        assert_eq!(canonical_number("brand"), "brand");
        // Comma-separated (pre-tokenizer) forms.
        assert_eq!(canonical_number("1,299.00"), "1299");
    }

    #[test]
    fn normalized_views_align_disagreeing_sources() {
        // The classic Walmart-vs-Amazon surface disagreement. (Decimal
        // canonicalization applies to attribute values before tokenizing —
        // the tokenizer itself splits on '.'.)
        let a = tokenize_normalized("Sonix 55in TV 1299 watts");
        let b = tokenize_normalized("sonix 55 inch tv 1299 watt");
        assert_eq!(a, b, "normalized views should agree: {a:?} vs {b:?}");
    }

    #[test]
    fn normalization_improves_jaccard_on_model_numbers() {
        let raw_a = crate::tokenize::tokenize("wh1000xm4 headphones");
        let raw_b = crate::tokenize::tokenize("wh 1000 xm4 headphones");
        let raw_j = crate::similarity::jaccard(&raw_a, &raw_b);
        let norm_j =
            crate::similarity::jaccard(&normalize_tokens(&raw_a), &normalize_tokens(&raw_b));
        assert!(
            norm_j > raw_j,
            "normalized {norm_j} should beat raw {raw_j}"
        );
        assert_eq!(norm_j, 1.0);
    }

    #[test]
    fn normalization_is_idempotent() {
        for s in ["sonix 55in tv 1299.00", "wh1000xm4", "plain words here"] {
            let once = tokenize_normalized(s);
            let twice = normalize_tokens(&once);
            assert_eq!(once, twice, "not idempotent on {s:?}");
        }
    }
}
