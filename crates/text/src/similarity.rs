//! String and set similarity measures used both by the matcher feature
//! extractors and by the synthetic-data hard-negative miner.

use std::collections::HashSet;

/// Levenshtein edit distance (unit costs) between two strings, by chars.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row DP.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalised Levenshtein similarity in [0,1].
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in [0,1].
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut a_matched = vec![false; a.len()];
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == *ca {
                a_matched[i] = true;
                b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions among matched characters.
    let mut transpositions = 0usize;
    let mut j = 0usize;
    for (i, &am) in a_matched.iter().enumerate() {
        if !am {
            continue;
        }
        while !b_matched[j] {
            j += 1;
        }
        if a[i] != b[j] {
            transpositions += 1;
        }
        j += 1;
    }
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64 / 2.0) / m) / 3.0
}

/// Jaro-Winkler similarity with standard prefix scale 0.1 and max prefix 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

/// Jaccard similarity of two token multiset-as-sets.
pub fn jaccard<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: HashSet<&T> = a.iter().collect();
    let sb: HashSet<&T> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// Overlap coefficient `|A∩B| / min(|A|,|B|)`.
pub fn overlap_coefficient<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let sa: HashSet<&T> = a.iter().collect();
    let sb: HashSet<&T> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    inter / sa.len().min(sb.len()) as f64
}

/// Intersection size of two sorted, deduplicated slices (linear merge).
fn sorted_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// [`jaccard`] over sorted, deduplicated id slices (the interned-token
/// hot path). Bitwise-identical to the `HashSet` version: intersection
/// and union sizes are exact integers, and the only float operation is
/// the final division.
pub fn jaccard_sorted_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = sorted_intersection_len(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// [`overlap_coefficient`] over sorted, deduplicated id slices;
/// bitwise-identical for the same reason as [`jaccard_sorted_ids`].
pub fn overlap_sorted_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let inter = sorted_intersection_len(a, b) as f64;
    inter / a.len().min(b.len()) as f64
}

/// Dice coefficient `2|A∩B| / (|A|+|B|)` on sets.
pub fn dice<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: HashSet<&T> = a.iter().collect();
    let sb: HashSet<&T> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let denom = (sa.len() + sb.len()) as f64;
    if denom == 0.0 {
        1.0
    } else {
        2.0 * inter / denom
    }
}

/// Jaccard over character q-grams of whole strings.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    let ga = crate::tokenize::qgrams(a, q);
    let gb = crate::tokenize::qgrams(b, q);
    jaccard(&ga, &gb)
}

/// Monge-Elkan similarity: average best Jaro-Winkler match of each token of
/// `a` against tokens of `b` (asymmetric; callers can symmetrise).
pub fn monge_elkan(a_tokens: &[String], b_tokens: &[String]) -> f64 {
    if a_tokens.is_empty() {
        return if b_tokens.is_empty() { 1.0 } else { 0.0 };
    }
    if b_tokens.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for ta in a_tokens {
        let best = b_tokens
            .iter()
            .map(|tb| jaro_winkler(ta, tb))
            .fold(0.0f64, f64::max);
        sum += best;
    }
    sum / a_tokens.len() as f64
}

/// Symmetric Monge-Elkan (mean of both directions).
pub fn monge_elkan_sym(a_tokens: &[String], b_tokens: &[String]) -> f64 {
    0.5 * (monge_elkan(a_tokens, b_tokens) + monge_elkan(b_tokens, a_tokens))
}

/// Longest common subsequence length between token sequences.
pub fn lcs_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for ai in a {
        for (j, bj) in b.iter().enumerate() {
            cur[j + 1] = if ai == bj {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.iter_mut().for_each(|x| *x = 0);
    }
    prev[b.len()]
}

/// Numeric-aware similarity: if both strings parse as numbers, compare as
/// relative difference; otherwise fall back to Levenshtein similarity.
/// Useful for price/year attributes in EM records.
pub fn numeric_or_string_similarity(a: &str, b: &str) -> f64 {
    match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        (Ok(x), Ok(y)) => {
            let denom = x.abs().max(y.abs());
            if denom == 0.0 {
                1.0
            } else {
                (1.0 - (x - y).abs() / denom).max(0.0)
            }
        }
        _ => levenshtein_similarity(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn levenshtein_known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_known_values() {
        assert!(approx(jaro("martha", "marhta"), 0.944_444_444_444_444_4));
        assert!(approx(jaro("dixon", "dicksonx"), 0.766_666_666_666_666_7));
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_common_prefix() {
        let jw = jaro_winkler("martha", "marhta");
        assert!(approx(jw, 0.961_111_111_111_111_1));
        assert!(jaro_winkler("prefixed", "prefixing") > jaro("prefixed", "prefixing"));
        assert!(jaro_winkler("abc", "abc") == 1.0);
    }

    #[test]
    fn jaccard_set_semantics() {
        let a = vec!["a", "b", "b", "c"];
        let b = vec!["b", "c", "d"];
        assert!(approx(jaccard(&a, &b), 0.5)); // {a,b,c} vs {b,c,d}: 2/4
        assert_eq!(jaccard::<&str>(&[], &[]), 1.0);
        assert_eq!(jaccard(&["x"], &[]), 0.0);
    }

    #[test]
    fn sorted_id_kernels_match_hashset_kernels_bitwise() {
        let cases: [(&[u32], &[u32]); 6] = [
            (&[], &[]),
            (&[1], &[]),
            (&[0, 1, 2], &[1, 2, 3]),
            (&[0, 1, 2], &[0, 1, 2]),
            (&[5, 9], &[1, 2, 3, 4]),
            (&[2], &[0, 1, 2, 3, 4, 5]),
        ];
        for (a, b) in cases {
            assert_eq!(
                jaccard_sorted_ids(a, b).to_bits(),
                jaccard(a, b).to_bits(),
                "jaccard {a:?} vs {b:?}"
            );
            assert_eq!(
                overlap_sorted_ids(a, b).to_bits(),
                overlap_coefficient(a, b).to_bits(),
                "overlap {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn overlap_and_dice() {
        let a = vec![1, 2, 3];
        let b = vec![2, 3, 4, 5];
        assert!(approx(overlap_coefficient(&a, &b), 2.0 / 3.0));
        assert!(approx(dice(&a, &b), 4.0 / 7.0));
        assert_eq!(overlap_coefficient::<i32>(&[], &[]), 1.0);
    }

    #[test]
    fn qgram_jaccard_detects_typos_gracefully() {
        let clean = qgram_jaccard("panasonic", "panasonic", 3);
        let typo = qgram_jaccard("panasonic", "panasonik", 3);
        let other = qgram_jaccard("panasonic", "sony", 3);
        assert_eq!(clean, 1.0);
        assert!(typo > other);
        assert!(typo > 0.4);
    }

    #[test]
    fn monge_elkan_favours_token_permutations() {
        let a: Vec<String> = ["sony", "headphones"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let b: Vec<String> = ["headphones", "sony"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(approx(monge_elkan_sym(&a, &b), 1.0));
        let c: Vec<String> = ["bose", "speaker"].iter().map(|s| s.to_string()).collect();
        assert!(monge_elkan_sym(&a, &c) < 0.8);
    }

    #[test]
    fn monge_elkan_empty_cases() {
        let e: Vec<String> = vec![];
        let x: Vec<String> = vec!["a".into()];
        assert_eq!(monge_elkan(&e, &e), 1.0);
        assert_eq!(monge_elkan(&e, &x), 0.0);
        assert_eq!(monge_elkan(&x, &e), 0.0);
    }

    #[test]
    fn lcs_known() {
        assert_eq!(lcs_len(&['a', 'b', 'c', 'd'], &['a', 'x', 'c', 'y']), 2);
        assert_eq!(lcs_len::<char>(&[], &['a']), 0);
        let a = ["the", "quick", "fox"];
        let b = ["the", "slow", "quick", "brown", "fox"];
        assert_eq!(lcs_len(&a, &b), 3);
    }

    #[test]
    fn numeric_similarity_compares_magnitudes() {
        assert!(approx(numeric_or_string_similarity("100", "100"), 1.0));
        assert!(approx(numeric_or_string_similarity("100", "50"), 0.5));
        assert!(numeric_or_string_similarity("100", "1000") < 0.2);
        assert_eq!(numeric_or_string_similarity("0", "0"), 1.0);
        // Non-numeric falls back to string similarity.
        assert!(numeric_or_string_similarity("red", "redd") > 0.7);
    }
}
