//! # em-eval
//!
//! The experiment harness of the CREW reproduction: prepared evaluation
//! contexts (datasets, splits, embeddings, trained model zoo), the roster
//! of six explanation systems under comparison, and one runner per
//! table/figure of the reconstructed evaluation (T1-T6, F1-F4 — see
//! DESIGN.md for the experiment index and EXPERIMENTS.md for results).

pub mod context;
pub mod experiments;
pub mod explainers;
pub mod store;
pub mod table;

pub use context::{EvalContext, MatcherKind};
pub use experiments::{
    exp_e1, exp_e2, exp_e3, exp_e4, exp_e5, exp_e6, exp_e7, exp_f1, exp_f2, exp_f3, exp_f4, exp_t1,
    exp_t2, exp_t3, exp_t4, exp_t5, exp_t6, run_suite, suite, ExperimentConfig, ExperimentFn,
    SuiteResult,
};
pub use explainers::{
    build_crew, build_explainer, explain_pair, explain_pair_opts, ExplainBudget, ExplainerKind,
    ExplanationOutput, UNIT_MASS_THRESHOLD,
};
pub use store::{
    crew_options_fingerprint, pair_content_fingerprint, pair_fingerprint, ContextStore,
    EvalSession, ExplanationStore, SlotMap, StoreBudget, StoreStats, TimedSet,
};
pub use table::{Cell, Table};

/// Errors from the evaluation harness (wraps every layer below).
#[derive(Debug)]
pub enum EvalError {
    Synth(em_synth::SynthError),
    Data(em_data::DataError),
    Embed(em_embed::EmbedError),
    Matcher(em_matchers::MatcherError),
    Explain(crew_core::ExplainError),
    Metric(em_metrics::MetricError),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Synth(e) => write!(f, "dataset generation: {e}"),
            EvalError::Data(e) => write!(f, "data: {e}"),
            EvalError::Embed(e) => write!(f, "embeddings: {e}"),
            EvalError::Matcher(e) => write!(f, "matcher training: {e}"),
            EvalError::Explain(e) => write!(f, "explanation: {e}"),
            EvalError::Metric(e) => write!(f, "metric: {e}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Synth(e) => Some(e),
            EvalError::Data(e) => Some(e),
            EvalError::Embed(e) => Some(e),
            EvalError::Matcher(e) => Some(e),
            EvalError::Explain(e) => Some(e),
            EvalError::Metric(e) => Some(e),
        }
    }
}

impl From<em_synth::SynthError> for EvalError {
    fn from(e: em_synth::SynthError) -> Self {
        EvalError::Synth(e)
    }
}
impl From<em_data::DataError> for EvalError {
    fn from(e: em_data::DataError) -> Self {
        EvalError::Data(e)
    }
}
impl From<em_embed::EmbedError> for EvalError {
    fn from(e: em_embed::EmbedError) -> Self {
        EvalError::Embed(e)
    }
}
impl From<em_matchers::MatcherError> for EvalError {
    fn from(e: em_matchers::MatcherError) -> Self {
        EvalError::Matcher(e)
    }
}
impl From<crew_core::ExplainError> for EvalError {
    fn from(e: crew_core::ExplainError) -> Self {
        EvalError::Explain(e)
    }
}
impl From<em_metrics::MetricError> for EvalError {
    fn from(e: em_metrics::MetricError) -> Self {
        EvalError::Metric(e)
    }
}
