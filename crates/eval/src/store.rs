//! Memoized evaluation substrate: shared stores that let the seventeen
//! experiment runners reuse each other's work instead of re-deriving it.
//!
//! Two stores back one [`EvalSession`]:
//!
//! * [`ContextStore`] caches prepared [`EvalContext`]s keyed by
//!   `(family, GeneratorConfig)`. Dataset generation, splitting, embedding
//!   training and (lazily) matcher-zoo training happen once per distinct
//!   configuration, no matter how many experiments ask.
//! * [`ExplanationStore`] caches [`ExplanationOutput`]s keyed by
//!   `(context, matcher kind, explainer kind, pair content, budget,
//!   CREW-options fingerprint)`. A cached explanation is bitwise identical
//!   to a fresh run, and its `elapsed` field records the *cold* (first
//!   computation) wall-clock, so latency columns report first-computation
//!   time even when served from the store. Runtime experiments either read
//!   that recorded cold time or bypass the store explicitly.
//!
//! The explanation store additionally caches CREW perturbation sets (the
//! only stage that queries the matcher) separately from the clustering
//! tail, so ablation variants that differ only in clustering options share
//! one set of matcher queries. A cached CREW explanation reports
//! `elapsed = set cold time + own clustering tail time`, i.e. what a fresh
//! end-to-end run would have cost.
//!
//! Both stores coalesce concurrent misses: each key owns a slot with an
//! init lock, so two experiments racing on the same key compute it once
//! and the loser blocks until the value lands. Errors are never cached —
//! a failed computation is retried by the next caller.
//!
//! ## Memory-bounded variants
//!
//! The grow-only maps are the right trade for the seventeen-experiment
//! suite (every entry is re-read), but the streaming pipeline (`em-stream`)
//! visits 10⁵–10⁶ candidate pairs and would OOM long before the end. The
//! generic [`SlotMap`] underneath both stores therefore takes an optional
//! **byte budget**: every cached value is accounted by an approximate
//! byte size, and inserting past the budget evicts victims chosen by the
//! clock (second-chance FIFO) policy *before* the insert, so resident
//! cache bytes never exceed the budget. Evictions only discard reuse —
//! an evicted key is recomputed on its next request and, because every
//! computation here is deterministic, the recomputed value is bitwise
//! identical to the first one. Counters `store/<name>/hit|miss|evict`
//! and the max-gauge `store/<name>/bytes_peak` (via `em-obs`) make the
//! policy observable; [`ExplanationStore::bounded`] is the user-facing
//! constructor.

use crate::context::{EvalContext, MatcherKind};
use crate::experiments::ExperimentConfig;
use crate::explainers::{
    build_crew, crew_output, explain_pair_opts, ExplainBudget, ExplainerKind, ExplanationOutput,
};
use crew_core::{ClusterAlgorithm, CrewOptions, PerturbationSet};
use em_cluster::Linkage;
use em_data::{EntityPair, TokenizedPair};
use em_synth::{Family, GeneratorConfig};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Hit/miss counters of one store (reported by `run_all` and mirrored
/// into the `em-obs` counters `store/<name>/hit|miss|evict`).
///
/// `hits` and `misses` depend only on the workload, never on scheduling:
/// a request either finds the value (hit) or is the one computation of it
/// (miss), so the pair is asserted jobs-invariant in `eval_store.rs` —
/// *for unbounded stores*. With a byte budget, eviction timing depends on
/// completion order, so `misses` (recomputations) and `evictions` are
/// schedule-dependent; only the served values stay bitwise invariant.
/// `coalesced` counts the hits that blocked on a concurrent in-flight
/// miss — a subset of `hits` that exists only under concurrency, so it is
/// schedule-dependent and excluded from the obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub hits: usize,
    pub misses: usize,
    pub coalesced: usize,
    /// Entries discarded by the byte-budget clock policy (always 0 for
    /// unbounded stores).
    pub evictions: usize,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({} coalesced)",
            self.hits, self.misses, self.coalesced
        )?;
        if self.evictions > 0 {
            write!(f, " [{} evicted]", self.evictions)?;
        }
        Ok(())
    }
}

/// How a slot request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// The value was already present.
    Hit,
    /// This request computed the value.
    Miss,
    /// A concurrent request was computing; this one blocked and received
    /// the freshly written value (a hit that paid latency).
    Coalesced,
}

/// One cache slot: a per-key init lock plus a write-once cell. Concurrent
/// misses on the same key serialize on the lock and all but the first see
/// the freshly written value; errors leave the cell empty for retry.
pub(crate) struct Slot<T> {
    init: Mutex<()>,
    cell: OnceLock<Arc<T>>,
}

impl<T> Slot<T> {
    pub(crate) fn new() -> Self {
        Slot {
            init: Mutex::new(()),
            cell: OnceLock::new(),
        }
    }

    /// Fetch the cached value or compute it, reporting how the request
    /// was served.
    pub(crate) fn get_or_try_init<E>(
        &self,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, Outcome), E> {
        if let Some(v) = self.cell.get() {
            return Ok((Arc::clone(v), Outcome::Hit));
        }
        let _guard = self.init.lock().expect("slot init lock poisoned");
        if let Some(v) = self.cell.get() {
            return Ok((Arc::clone(v), Outcome::Coalesced));
        }
        let v = Arc::new(compute()?);
        let _ = self.cell.set(Arc::clone(&v));
        Ok((v, Outcome::Miss))
    }
}

/// Per-store counter quad, mirrored into the obs counters.
#[derive(Default)]
struct Counts {
    hits: AtomicUsize,
    misses: AtomicUsize,
    coalesced: AtomicUsize,
    evictions: AtomicUsize,
}

impl Counts {
    /// Record one served request. Obs sees `store/<name>/hit` and
    /// `store/<name>/miss` (coalesced counts as a hit there: whether a
    /// hit blocked on an in-flight miss is schedule-dependent, and the
    /// obs structure must stay identical across `--jobs` values).
    fn record(&self, name: &str, outcome: Outcome) {
        match outcome {
            Outcome::Hit => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                em_obs::counter!(&format!("store/{name}/hit"), 1);
            }
            Outcome::Coalesced => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                em_obs::counter!(&format!("store/{name}/hit"), 1);
            }
            Outcome::Miss => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                em_obs::counter!(&format!("store/{name}/miss"), 1);
            }
        }
    }

    fn record_evict(&self, name: &str, n: usize) {
        if n > 0 {
            self.evictions.fetch_add(n, Ordering::Relaxed);
            em_obs::counter!(&format!("store/{name}/evict"), n as u64);
        }
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Clock (second-chance FIFO) bookkeeping of one bounded [`SlotMap`].
///
/// `queue` holds each cached key once in insertion order; `entries` maps
/// a key to its byte cost and referenced bit. A hit sets the bit; an
/// eviction scan pops the front, re-queueing referenced keys with the bit
/// cleared and discarding the first unreferenced one.
struct Clock<K> {
    budget: usize,
    resident: usize,
    peak: usize,
    queue: VecDeque<K>,
    entries: HashMap<K, (usize, bool)>,
}

impl<K: Eq + Hash + Clone> Clock<K> {
    fn new(budget: usize) -> Self {
        Clock {
            budget,
            resident: 0,
            peak: 0,
            queue: VecDeque::new(),
            entries: HashMap::new(),
        }
    }

    /// Mark a key recently used (no-op if it was already evicted).
    fn touch(&mut self, key: &K) {
        if let Some((_, referenced)) = self.entries.get_mut(key) {
            *referenced = true;
        }
    }

    /// Pick victims until `incoming` more bytes fit. Returns the evicted
    /// keys; the caller removes them from the slot map (under the clock
    /// lock, so the budget invariant holds across threads).
    fn make_room(&mut self, incoming: usize) -> Vec<K> {
        let mut evicted = Vec::new();
        while self.resident + incoming > self.budget && !self.queue.is_empty() {
            let key = self.queue.pop_front().expect("non-empty queue");
            let entry = self.entries.get_mut(&key).expect("queued key has entry");
            if entry.1 {
                entry.1 = false;
                self.queue.push_back(key);
            } else {
                let (bytes, _) = self.entries.remove(&key).expect("entry exists");
                self.resident -= bytes;
                evicted.push(key);
            }
        }
        evicted
    }

    /// Account an inserted value. Returns false if the value alone busts
    /// the budget and must not be retained.
    fn insert(&mut self, key: K, bytes: usize) -> bool {
        if self.resident + bytes > self.budget {
            return false;
        }
        if let Some((old, _)) = self.entries.insert(key.clone(), (bytes, false)) {
            // Key re-inserted after a concurrent recompute: replace the
            // accounting, keep its existing queue position.
            self.resident -= old;
        } else {
            self.queue.push_back(key);
        }
        self.resident += bytes;
        self.peak = self.peak.max(self.resident);
        true
    }
}

/// A keyed map of coalescing [`Slot`]s with hit/miss accounting and an
/// optional byte budget (see the module docs). This is the shared
/// machinery of [`ContextStore`] and [`ExplanationStore`]; `em-stream`
/// builds its content-fingerprint stores on it directly.
pub struct SlotMap<K, V> {
    name: &'static str,
    slots: Mutex<HashMap<K, Arc<Slot<V>>>>,
    counts: Counts,
    clock: Option<Mutex<Clock<K>>>,
    bytes_of: fn(&V) -> usize,
}

impl<K: Eq + Hash + Clone, V> SlotMap<K, V> {
    /// An unbounded (grow-only) map. `name` labels the obs counters
    /// (`store/<name>/hit` …).
    pub fn new(name: &'static str, bytes_of: fn(&V) -> usize) -> Self {
        SlotMap {
            name,
            slots: Mutex::new(HashMap::new()),
            counts: Counts::default(),
            clock: None,
            bytes_of,
        }
    }

    /// A byte-budgeted map: resident cached bytes (as measured by
    /// `bytes_of`) never exceed `budget_bytes`; victims are chosen by the
    /// clock policy. Values larger than the whole budget are computed and
    /// returned but never retained.
    pub fn bounded(name: &'static str, bytes_of: fn(&V) -> usize, budget_bytes: usize) -> Self {
        SlotMap {
            clock: Some(Mutex::new(Clock::new(budget_bytes))),
            ..SlotMap::new(name, bytes_of)
        }
    }

    /// Fetch the slot of `key`; the map lock is held only for the lookup,
    /// never during a computation.
    fn slot_for(&self, key: &K) -> Arc<Slot<V>> {
        let mut map = self.slots.lock().expect("store map lock poisoned");
        Arc::clone(
            map.entry(key.clone())
                .or_insert_with(|| Arc::new(Slot::new())),
        )
    }

    /// Fetch the cached value of `key` or compute it (coalescing
    /// concurrent misses). Under a byte budget this is where victims are
    /// evicted and the freshly computed value is accounted.
    pub fn get_or_compute<E>(
        &self,
        key: &K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let slot = self.slot_for(key);
        let (value, outcome) = slot.get_or_try_init(compute)?;
        self.counts.record(self.name, outcome);
        if let Some(clock) = &self.clock {
            // Lock order is clock → slots (eviction removes slots while
            // holding the clock); the hit path above touched slots only
            // before taking the clock, so the order is acyclic.
            let mut clock = clock.lock().expect("store clock lock poisoned");
            match outcome {
                Outcome::Hit | Outcome::Coalesced => clock.touch(key),
                Outcome::Miss => {
                    let bytes = (self.bytes_of)(&value);
                    let victims = clock.make_room(bytes);
                    let retained = clock.insert(key.clone(), bytes);
                    let mut evicted = victims.len();
                    {
                        let mut map = self.slots.lock().expect("store map lock poisoned");
                        for victim in &victims {
                            map.remove(victim);
                        }
                        if !retained {
                            map.remove(key);
                            evicted += 1;
                        }
                    }
                    self.counts.record_evict(self.name, evicted);
                    em_obs::gauge!(
                        &format!("store/{}/bytes_peak", self.name),
                        clock.peak as u64
                    );
                }
            }
        }
        Ok(value)
    }

    pub fn stats(&self) -> StoreStats {
        self.counts.stats()
    }

    /// Bytes currently retained by the budgeted cache (0 when unbounded).
    pub fn resident_bytes(&self) -> usize {
        self.clock
            .as_ref()
            .map(|c| c.lock().expect("store clock lock poisoned").resident)
            .unwrap_or(0)
    }

    /// High-water mark of [`Self::resident_bytes`] (0 when unbounded).
    pub fn peak_bytes(&self) -> usize {
        self.clock
            .as_ref()
            .map(|c| c.lock().expect("store clock lock poisoned").peak)
            .unwrap_or(0)
    }

    /// The configured byte budget, if any.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.clock
            .as_ref()
            .map(|c| c.lock().expect("store clock lock poisoned").budget)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn mix_u64(h: u64, v: u64) -> u64 {
    fnv1a(h, &v.to_le_bytes())
}

/// Content fingerprint of a pair. Record ids alone are not an identity:
/// the scaling experiments reuse ids 0/1 for pairs of different sizes, so
/// the fingerprint folds in every attribute value of both records.
pub fn pair_fingerprint(pair: &EntityPair) -> u64 {
    let mut h = FNV_OFFSET;
    for record in [pair.left(), pair.right()] {
        h = mix_u64(h, record.id);
        h = mix_u64(h, record.values().len() as u64);
        for value in record.values() {
            h = mix_u64(h, value.len() as u64);
            h = fnv1a(h, value.as_bytes());
        }
    }
    h
}

/// [`pair_fingerprint`] without the record ids: two pairs whose attribute
/// values agree byte-for-byte share this fingerprint even when the records
/// came from different collection rows. The streaming pipeline keys its
/// perturbation and explanation stores on it, so exact-duplicate listings
/// (ubiquitous in raw product feeds) pay for matcher queries once.
pub fn pair_content_fingerprint(pair: &EntityPair) -> u64 {
    let mut h = FNV_OFFSET;
    for record in [pair.left(), pair.right()] {
        h = mix_u64(h, record.values().len() as u64);
        for value in record.values() {
            h = mix_u64(h, value.len() as u64);
            h = fnv1a(h, value.as_bytes());
        }
    }
    h
}

/// Fingerprint of the CREW options that shape the clustering tail. The
/// perturbation options are deliberately excluded — the explain keys carry
/// the budget separately, and the perturbation sub-cache is shared by all
/// variants that only differ in tail options.
pub fn crew_options_fingerprint(o: &CrewOptions) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix_u64(h, o.surrogate.kernel_width.to_bits());
    h = mix_u64(h, o.surrogate.lambda.to_bits());
    h = mix_u64(h, o.knowledge.semantic.to_bits());
    h = mix_u64(h, o.knowledge.attribute.to_bits());
    h = mix_u64(h, o.knowledge.importance.to_bits());
    h = mix_u64(
        h,
        match o.algorithm {
            ClusterAlgorithm::Agglomerative => 0,
            ClusterAlgorithm::KMedoids => 1,
        },
    );
    h = mix_u64(
        h,
        match o.linkage {
            Linkage::Single => 0,
            Linkage::Complete => 1,
            Linkage::Average => 2,
            Linkage::Ward => 3,
        },
    );
    h = mix_u64(h, o.max_clusters as u64);
    h = mix_u64(h, o.tau.to_bits());
    h = mix_u64(h, o.cannot_link_quantile.to_bits());
    // Semantic backend selection changes the distance matrix for large
    // vocabularies, so it is part of the cache identity (thread budget
    // excluded: output is thread-invariant by construction).
    h = mix_u64(
        h,
        match o.semantic.backend {
            em_embed::SemanticBackend::Exact => 0,
            em_embed::SemanticBackend::Auto => 1,
            em_embed::SemanticBackend::Ann => 2,
        },
    );
    h = mix_u64(h, o.semantic.neighbors as u64);
    h = mix_u64(h, o.semantic.auto_threshold as u64);
    h = mix_u64(h, o.semantic.ann.tables as u64);
    h = mix_u64(h, o.semantic.ann.bits as u64);
    h = mix_u64(h, o.semantic.ann.seed);
    h = mix_u64(h, o.semantic.ann.rerank as u64);
    h
}

/// Cache identity of a prepared context. Float knobs are keyed by their
/// bit patterns (`GeneratorConfig` carries `f64`s and derives neither `Eq`
/// nor `Hash`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextKey {
    family: Family,
    entities: usize,
    pairs: usize,
    match_rate_bits: u64,
    hard_negative_rate_bits: u64,
    seed: u64,
}

impl ContextKey {
    pub fn new(family: Family, config: &GeneratorConfig) -> Self {
        ContextKey {
            family,
            entities: config.entities,
            pairs: config.pairs,
            match_rate_bits: config.match_rate.to_bits(),
            hard_negative_rate_bits: config.hard_negative_rate.to_bits(),
            seed: config.seed,
        }
    }
}

/// Shared store of prepared evaluation contexts.
pub struct ContextStore {
    map: SlotMap<ContextKey, EvalContext>,
}

impl Default for ContextStore {
    fn default() -> Self {
        ContextStore::new()
    }
}

impl ContextStore {
    pub fn new() -> Self {
        // Contexts are never byte-budgeted: a handful exist per run and
        // every one is re-read by later experiments.
        ContextStore {
            map: SlotMap::new("context", |_| 0),
        }
    }

    /// Fetch (or prepare once) the context of `(family, config)`.
    pub fn get(
        &self,
        family: Family,
        config: GeneratorConfig,
    ) -> Result<Arc<EvalContext>, crate::EvalError> {
        let key = ContextKey::new(family, &config);
        self.map.get_or_compute(&key, || {
            // Root-anchored: which experiment pays a shared miss is
            // schedule-dependent, so nesting under the caller would make
            // the aggregated trace vary across `--jobs` values.
            let _span = em_obs::root_span!("store/context");
            EvalContext::prepare(family, config)
        })
    }

    pub fn stats(&self) -> StoreStats {
        self.map.stats()
    }
}

/// A CREW perturbation set together with its cold-computation wall-clock.
pub struct TimedSet {
    pub set: PerturbationSet,
    /// Seconds the first computation of this set took.
    pub elapsed: f64,
}

impl TimedSet {
    /// Accounting size under a store byte budget.
    pub fn approx_bytes(&self) -> usize {
        self.set.approx_bytes() + 16
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PerturbKey {
    context: ContextKey,
    matcher: MatcherKind,
    pair: u64,
    samples: usize,
    seed: u64,
    threads: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ExplainKey {
    context: ContextKey,
    matcher: MatcherKind,
    explainer: ExplainerKind,
    pair: u64,
    samples: usize,
    seed: u64,
    threads: usize,
    /// [`crew_options_fingerprint`] for CREW, 0 for every other kind
    /// (their options are fully determined by the budget).
    options: u64,
}

/// Byte budgets of a bounded [`ExplanationStore`], split per sub-store
/// (the perturbation sets and the finished explanations have very
/// different sizes, so one shared number would starve one of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreBudget {
    pub explanation_bytes: usize,
    pub perturbation_bytes: usize,
}

impl StoreBudget {
    /// Split one total budget: perturbation sets dominate (masks ×
    /// samples), so they get three quarters of it.
    pub fn total(bytes: usize) -> Self {
        StoreBudget {
            explanation_bytes: bytes / 4,
            perturbation_bytes: bytes - bytes / 4,
        }
    }
}

/// Shared store of explanation outputs (plus the CREW perturbation-set
/// sub-cache).
pub struct ExplanationStore {
    explanations: SlotMap<ExplainKey, ExplanationOutput>,
    perturbations: SlotMap<PerturbKey, TimedSet>,
}

impl Default for ExplanationStore {
    fn default() -> Self {
        ExplanationStore::new()
    }
}

impl ExplanationStore {
    pub fn new() -> Self {
        ExplanationStore {
            explanations: SlotMap::new("explain", |o| o.approx_bytes()),
            perturbations: SlotMap::new("perturb_set", |t| t.approx_bytes()),
        }
    }

    /// A memory-bounded store: cached bytes never exceed the budget;
    /// entries evicted by the clock policy are recomputed (bitwise
    /// identically) if requested again.
    pub fn bounded(budget: StoreBudget) -> Self {
        ExplanationStore {
            explanations: SlotMap::bounded(
                "explain",
                |o| o.approx_bytes(),
                budget.explanation_bytes,
            ),
            perturbations: SlotMap::bounded(
                "perturb_set",
                |t| t.approx_bytes(),
                budget.perturbation_bytes,
            ),
        }
    }

    /// Explain `pair` with default CREW options (the common case).
    pub fn explain(
        &self,
        ctx: &Arc<EvalContext>,
        matcher: MatcherKind,
        kind: ExplainerKind,
        budget: ExplainBudget,
        pair: &EntityPair,
    ) -> Result<Arc<ExplanationOutput>, crate::EvalError> {
        self.explain_with_options(ctx, matcher, kind, budget, pair, &CrewOptions::default())
    }

    /// Explain `pair`, caching under the full key. Cached entries are
    /// bitwise identical to a fresh [`explain_pair_opts`] run; their
    /// `elapsed` is the recorded cold time (for CREW: perturbation-set
    /// cold time plus this variant's clustering tail).
    pub fn explain_with_options(
        &self,
        ctx: &Arc<EvalContext>,
        matcher: MatcherKind,
        kind: ExplainerKind,
        budget: ExplainBudget,
        pair: &EntityPair,
        options: &CrewOptions,
    ) -> Result<Arc<ExplanationOutput>, crate::EvalError> {
        let context = ContextKey::new(ctx.family, &ctx.config);
        let key = ExplainKey {
            context,
            matcher,
            explainer: kind,
            pair: pair_fingerprint(pair),
            samples: budget.samples,
            seed: budget.seed,
            threads: budget.threads,
            options: if kind == ExplainerKind::Crew {
                crew_options_fingerprint(options)
            } else {
                0
            },
        };
        self.explanations.get_or_compute(&key, || {
            // Root-anchored for the same reason as `store/context`: the
            // payer of a shared miss is schedule-dependent. Stage spans
            // of the explainer run nest under this anchor.
            let _span = em_obs::root_span!("store/explain");
            if kind == ExplainerKind::Crew {
                let timed = self.perturbation_set(ctx, matcher, budget, pair)?;
                let crew = build_crew(ctx, budget, options.clone());
                let tokenized = TokenizedPair::new(pair.clone());
                let t0 = Instant::now();
                let ce = crew.explain_clusters_with_set(&tokenized, &timed.set)?;
                Ok(crew_output(ce, timed.elapsed + t0.elapsed().as_secs_f64()))
            } else {
                let trained = ctx.matcher(matcher)?;
                explain_pair_opts(kind, ctx, budget, trained.as_ref(), pair, options)
            }
        })
    }

    /// Fetch (or compute once) the CREW perturbation set of
    /// `(context, matcher, budget, pair)` — the only stage that queries
    /// the matcher. Shared by every CREW variant on the same budget.
    pub fn perturbation_set(
        &self,
        ctx: &Arc<EvalContext>,
        matcher: MatcherKind,
        budget: ExplainBudget,
        pair: &EntityPair,
    ) -> Result<Arc<TimedSet>, crate::EvalError> {
        let key = PerturbKey {
            context: ContextKey::new(ctx.family, &ctx.config),
            matcher,
            pair: pair_fingerprint(pair),
            samples: budget.samples,
            seed: budget.seed,
            threads: budget.threads,
        };
        self.perturbations.get_or_compute(&key, || {
            let _span = em_obs::root_span!("store/perturb_set");
            let trained = ctx.matcher(matcher)?;
            let crew = build_crew(ctx, budget, CrewOptions::default());
            let tokenized = TokenizedPair::new(pair.clone());
            let t0 = Instant::now();
            let set = crew.perturbation_set(trained.as_ref(), &tokenized)?;
            Ok(TimedSet {
                set,
                elapsed: t0.elapsed().as_secs_f64(),
            })
        })
    }

    pub fn stats(&self) -> StoreStats {
        self.explanations.stats()
    }

    pub fn perturbation_stats(&self) -> StoreStats {
        self.perturbations.stats()
    }

    /// Peak resident bytes across both budgeted sub-stores (0 when
    /// unbounded).
    pub fn peak_bytes(&self) -> usize {
        self.explanations.peak_bytes() + self.perturbations.peak_bytes()
    }
}

/// One evaluation session: the experiment configuration plus the shared
/// stores every runner draws from. All seventeen experiments take a
/// session, so a full `run_all` sweep prepares each context once and
/// explains each distinct (matcher, explainer, pair, budget) tuple once.
pub struct EvalSession {
    config: ExperimentConfig,
    contexts: ContextStore,
    explanations: ExplanationStore,
    /// Memo of the T3/T4 shared headline aggregation.
    pub(crate) headline: Slot<Vec<crate::experiments::tables::HeadlineRow>>,
}

impl EvalSession {
    pub fn new(config: ExperimentConfig) -> Self {
        EvalSession {
            config,
            contexts: ContextStore::new(),
            explanations: ExplanationStore::new(),
            headline: Slot::new(),
        }
    }

    /// A session whose explanation store is byte-budgeted (the context
    /// store stays unbounded — see [`ContextStore::new`]).
    pub fn with_budget(config: ExperimentConfig, budget: StoreBudget) -> Self {
        EvalSession {
            explanations: ExplanationStore::bounded(budget),
            ..EvalSession::new(config)
        }
    }

    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    pub fn contexts(&self) -> &ContextStore {
        &self.contexts
    }

    pub fn explanations(&self) -> &ExplanationStore {
        &self.explanations
    }

    /// The shared context of `family` under this session's configuration.
    pub fn context(&self, family: Family) -> Result<Arc<EvalContext>, crate::EvalError> {
        self.contexts.get(family, self.config.generator(family))
    }

    /// Explain `pair` with the session's configured matcher and budget.
    pub fn explain(
        &self,
        kind: ExplainerKind,
        ctx: &Arc<EvalContext>,
        pair: &EntityPair,
    ) -> Result<Arc<ExplanationOutput>, crate::EvalError> {
        self.explanations
            .explain(ctx, self.config.matcher, kind, self.config.budget(), pair)
    }

    /// Explain `pair` with an explicit matcher kind (model-zoo sweeps).
    pub fn explain_for(
        &self,
        matcher: MatcherKind,
        kind: ExplainerKind,
        ctx: &Arc<EvalContext>,
        pair: &EntityPair,
    ) -> Result<Arc<ExplanationOutput>, crate::EvalError> {
        self.explanations
            .explain(ctx, matcher, kind, self.config.budget(), pair)
    }

    /// CREW with explicit options (ablations), on the session budget.
    pub fn explain_crew_with(
        &self,
        ctx: &Arc<EvalContext>,
        matcher: MatcherKind,
        pair: &EntityPair,
        options: &CrewOptions,
    ) -> Result<Arc<ExplanationOutput>, crate::EvalError> {
        self.explanations.explain_with_options(
            ctx,
            matcher,
            ExplainerKind::Crew,
            self.config.budget(),
            pair,
            options,
        )
    }

    /// The shared CREW perturbation set of `pair` on the session budget.
    pub fn perturbation_set(
        &self,
        ctx: &Arc<EvalContext>,
        matcher: MatcherKind,
        pair: &EntityPair,
    ) -> Result<Arc<TimedSet>, crate::EvalError> {
        self.explanations
            .perturbation_set(ctx, matcher, self.config.budget(), pair)
    }

    /// One-line hit/miss summary across all stores (logged by `run_all`).
    pub fn stats_summary(&self) -> String {
        format!(
            "store stats: contexts {}, explanations {}, perturbation sets {}",
            self.contexts.stats(),
            self.explanations.stats(),
            self.explanations.perturbation_stats(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explainers::explain_pair;

    fn session() -> EvalSession {
        EvalSession::new(ExperimentConfig::smoke())
    }

    #[test]
    fn context_store_reuses_instances() {
        let s = session();
        let a = s.context(Family::Restaurants).unwrap();
        let b = s.context(Family::Restaurants).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = s.contexts().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_generator_configs_get_distinct_contexts() {
        let s = session();
        let a = s.context(Family::Restaurants).unwrap();
        let mut other = s.config().generator(Family::Restaurants);
        other.seed ^= 1;
        let b = s.contexts().get(Family::Restaurants, other).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn explanation_store_hits_are_the_same_arc() {
        let s = session();
        let ctx = s.context(Family::Restaurants).unwrap();
        let pair = &ctx.pairs_to_explain(1)[0].pair;
        let a = s.explain(ExplainerKind::Lime, &ctx, pair).unwrap();
        let b = s.explain(ExplainerKind::Lime, &ctx, pair).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b.elapsed, a.elapsed, "hits keep the recorded cold time");
    }

    #[test]
    fn stored_crew_explanation_matches_fresh_run() {
        let s = session();
        let ctx = s.context(Family::Restaurants).unwrap();
        let pair = &ctx.pairs_to_explain(1)[0].pair;
        let matcher = ctx.matcher(s.config().matcher).unwrap();
        let stored = s.explain(ExplainerKind::Crew, &ctx, pair).unwrap();
        let fresh = explain_pair(
            ExplainerKind::Crew,
            &ctx,
            s.config().budget(),
            matcher.as_ref(),
            pair,
        )
        .unwrap();
        assert_eq!(stored.word_level.weights, fresh.word_level.weights);
        assert_eq!(stored.cluster_info, fresh.cluster_info);
        let su: Vec<_> = stored.units.iter().map(|u| &u.member_indices).collect();
        let fu: Vec<_> = fresh.units.iter().map(|u| &u.member_indices).collect();
        assert_eq!(su, fu);
    }

    #[test]
    fn crew_variants_share_one_perturbation_set() {
        let s = session();
        let ctx = s.context(Family::Restaurants).unwrap();
        let pair = &ctx.pairs_to_explain(1)[0].pair;
        let matcher = s.config().matcher;
        s.explain(ExplainerKind::Crew, &ctx, pair).unwrap();
        let ablated = CrewOptions {
            knowledge: crew_core::KnowledgeWeights::only_semantic(),
            ..Default::default()
        };
        s.explain_crew_with(&ctx, matcher, pair, &ablated).unwrap();
        let p = s.explanations().perturbation_stats();
        assert_eq!((p.hits, p.misses), (1, 1));
        let e = s.explanations().stats();
        assert_eq!((e.hits, e.misses), (0, 2), "distinct option fingerprints");
    }

    #[test]
    fn pair_fingerprint_distinguishes_content_not_just_ids() {
        let a = em_synth::scaling_pair(40, 7);
        let b = em_synth::scaling_pair(80, 7);
        assert_ne!(pair_fingerprint(&a), pair_fingerprint(&b));
        assert_eq!(pair_fingerprint(&a), pair_fingerprint(&a));
    }

    #[test]
    fn content_fingerprint_ignores_record_ids() {
        use em_data::{Record, Schema};
        let schema = Arc::new(Schema::new(vec!["title"]));
        let pair_a = EntityPair::new(
            Arc::clone(&schema),
            Record::new(1, vec!["sonix tv".into()]),
            Record::new(2, vec!["sonix television".into()]),
        )
        .unwrap();
        let pair_b = EntityPair::new(
            Arc::clone(&schema),
            Record::new(77, vec!["sonix tv".into()]),
            Record::new(99, vec!["sonix television".into()]),
        )
        .unwrap();
        assert_ne!(pair_fingerprint(&pair_a), pair_fingerprint(&pair_b));
        assert_eq!(
            pair_content_fingerprint(&pair_a),
            pair_content_fingerprint(&pair_b)
        );
        let different = EntityPair::new(
            schema,
            Record::new(1, vec!["sonix tv".into()]),
            Record::new(2, vec!["ashford kettle".into()]),
        )
        .unwrap();
        assert_ne!(
            pair_content_fingerprint(&pair_a),
            pair_content_fingerprint(&different)
        );
    }

    #[test]
    fn options_fingerprint_separates_variants() {
        let base = CrewOptions::default();
        let mut tweaked = CrewOptions::default();
        tweaked.tau = 0.8;
        assert_ne!(
            crew_options_fingerprint(&base),
            crew_options_fingerprint(&tweaked)
        );
        // The perturbation options are not part of the fingerprint.
        let mut budget_only = CrewOptions::default();
        budget_only.perturb.samples = 9999;
        assert_eq!(
            crew_options_fingerprint(&base),
            crew_options_fingerprint(&budget_only)
        );
    }

    #[test]
    fn slot_map_respects_byte_budget_and_evicts_clockwise() {
        // Values of 100 "bytes" each under a 250-byte budget: at most two
        // fit; the third insert evicts the least-recently-touched.
        let map: SlotMap<u32, Vec<u8>> = SlotMap::bounded("unit_test", |v| v.len(), 250);
        let compute = |k: u32| move || Ok::<_, ()>(vec![k as u8; 100]);
        map.get_or_compute(&1, compute(1)).unwrap();
        map.get_or_compute(&2, compute(2)).unwrap();
        assert_eq!(map.resident_bytes(), 200);
        // Touch 1 so the clock grants it a second chance over 2.
        map.get_or_compute(&1, compute(1)).unwrap();
        map.get_or_compute(&3, compute(3)).unwrap();
        assert!(map.resident_bytes() <= 250);
        let stats = map.stats();
        assert_eq!(stats.evictions, 1);
        // Key 2 was the victim: asking again recomputes (a miss), while 1
        // is still a hit.
        let before = map.stats().misses;
        map.get_or_compute(&1, compute(1)).unwrap();
        assert_eq!(map.stats().misses, before);
        map.get_or_compute(&2, compute(2)).unwrap();
        assert_eq!(map.stats().misses, before + 1);
        assert!(map.peak_bytes() <= 250);
        assert_eq!(map.budget_bytes(), Some(250));
    }

    #[test]
    fn slot_map_never_retains_oversized_values() {
        let map: SlotMap<u32, Vec<u8>> = SlotMap::bounded("unit_test_big", |v| v.len(), 50);
        map.get_or_compute(&1, || Ok::<_, ()>(vec![0u8; 500]))
            .unwrap();
        assert_eq!(map.resident_bytes(), 0);
        assert_eq!(map.stats().evictions, 1);
        assert!(map.peak_bytes() <= 50);
        // The value is still served to the caller and a re-request
        // recomputes instead of hitting.
        map.get_or_compute(&1, || Ok::<_, ()>(vec![0u8; 500]))
            .unwrap();
        assert_eq!(map.stats().misses, 2);
    }

    #[test]
    fn unbounded_slot_map_reports_zero_budget_metrics() {
        let map: SlotMap<u32, Vec<u8>> = SlotMap::new("unit_unbounded", |v| v.len());
        map.get_or_compute(&1, || Ok::<_, ()>(vec![0u8; 500]))
            .unwrap();
        assert_eq!(map.resident_bytes(), 0);
        assert_eq!(map.peak_bytes(), 0);
        assert_eq!(map.budget_bytes(), None);
        assert_eq!(map.stats().evictions, 0);
    }
}
