//! Extension experiments (beyond the reconstructed paper evaluation):
//!
//! - **E1** — counterfactual quality of CREW explanations: how often does
//!   removing a few clusters flip the decision, and at what cost?
//! - **E2** — global (dataset-level) explanations: which attributes drive
//!   each trained matcher overall.
//! - **E3** — model-agnosticity: CREW's fidelity across all matcher
//!   families, including an ensemble.
//! - **E4** — statistical significance of the headline fidelity gaps
//!   (paired sign test + bootstrap CI of CREW − baseline per pair).
//! - **E7** — matcher calibration (ECE, Platt scaling) and its effect on
//!   CREW's fidelity.

use crate::context::MatcherKind;
use crate::explainers::{build_crew, ExplainerKind};
use crate::store::EvalSession;
use crate::table::{Cell, Table};
use crew_core::{
    explain_dataset, explanation_robustness, find_counterfactual, CounterfactualOptions,
    CrewOptions,
};
use em_data::TokenizedPair;
use em_matchers::EnsembleMatcher;
use em_metrics as metrics;
use std::sync::Arc;

/// E1 — counterfactual quality of CREW cluster explanations.
pub fn exp_e1(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let mut table = Table::new(
        "E1",
        "Counterfactuals from CREW clusters (flip rate within 3 removals, mean cost)",
        vec![
            "dataset",
            "flip@3",
            "mean_cost",
            "mean_robustness",
            "mean_prob_swing",
        ],
    );
    for &family in &config.families {
        let ctx = session.context(family)?;
        let matcher = ctx.matcher(config.matcher)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        let mut flips = 0usize;
        let mut costs = Vec::new();
        let mut robustness = Vec::new();
        let mut swings = Vec::new();
        for ex in &pairs {
            let out = session.explain(ExplainerKind::Crew, &ctx, &ex.pair)?;
            let ce = out
                .cluster_explanation
                .as_ref()
                .expect("crew output carries the cluster explanation");
            let cf = find_counterfactual(
                matcher.as_ref(),
                &ex.pair,
                ce,
                CounterfactualOptions { max_removals: 3 },
            )?;
            if let Some(cf) = cf {
                flips += 1;
                costs.push(cf.cost() as f64);
                swings.push((cf.probability_before - cf.probability_after).abs());
            }
            if let Some(r) = explanation_robustness(matcher.as_ref(), &ex.pair, ce)? {
                robustness.push(r);
            }
        }
        let mean = em_linalg::stats::mean;
        table.push_row(vec![
            ctx.dataset.name().into(),
            (flips as f64 / pairs.len().max(1) as f64).into(),
            mean(&costs).into(),
            mean(&robustness).into(),
            mean(&swings).into(),
        ]);
    }
    Ok(table)
}

/// E2 — global explanations: per dataset, the attribute ranking CREW's
/// aggregated clusters assign to the trained matcher.
pub fn exp_e2(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let mut table = Table::new(
        "E2",
        "Global CREW explanations: attribute importance per dataset",
        vec![
            "dataset",
            "attribute",
            "mean_abs_mass",
            "top_cluster_share",
            "rank",
        ],
    );
    for &family in &config.families {
        let ctx = session.context(family)?;
        let matcher = ctx.matcher(config.matcher)?;
        // Aggregates over a different pair sample than the headline
        // experiments, so the explanations are computed directly.
        let crew = build_crew(&ctx, config.budget(), CrewOptions::default());
        let sample = ctx.split.test.sample(config.explain_pairs, ctx.seed ^ 0x91);
        let global = explain_dataset(&crew, matcher.as_ref(), &sample, config.explain_pairs, 2)?;
        for (rank, attr) in global.attributes.iter().enumerate() {
            table.push_row(vec![
                ctx.dataset.name().into(),
                Cell::text(attr.attribute.clone()),
                attr.mean_abs_mass.into(),
                attr.top_cluster_share.into(),
                (rank + 1).into(),
            ]);
        }
    }
    Ok(table)
}

/// E3 — model-agnosticity: CREW fidelity and size across matcher families
/// (logistic, MLP, attention, rules, ensemble of all four).
pub fn exp_e3(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let mut table = Table::new(
        "E3",
        "CREW across model families (model-agnosticity)",
        vec![
            "dataset",
            "model",
            "model_f1",
            "aopc_unit@3",
            "units",
            "group_r2",
        ],
    );
    let mean = em_linalg::stats::mean;
    let families: Vec<_> = config.families.iter().copied().take(2).collect();
    for family in families {
        let ctx = session.context(family)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        // The four zoo models route through the explanation store (the
        // attention rows are the same tuples the headline experiments
        // explain); the ensemble is not a `MatcherKind`, so its rows are
        // computed directly below.
        for kind in MatcherKind::all() {
            let matcher = ctx.matcher(kind)?;
            let f1 = em_matchers::evaluate(matcher.as_ref(), &ctx.split.test).f1;
            let mut aopc_u = Vec::new();
            let mut units = Vec::new();
            let mut r2 = Vec::new();
            for ex in &pairs {
                let out = session.explain_for(kind, ExplainerKind::Crew, &ctx, &ex.pair)?;
                let tokenized = TokenizedPair::new(ex.pair.clone());
                aopc_u.push(metrics::aopc_units(
                    matcher.as_ref(),
                    &tokenized,
                    &out.units,
                    3,
                )?);
                let (selected_k, group_r2, _) = out.cluster_info.expect("crew output");
                units.push(selected_k as f64);
                r2.push(group_r2);
            }
            table.push_row(vec![
                ctx.dataset.name().into(),
                Cell::text(kind.label()),
                f1.into(),
                mean(&aopc_u).into(),
                mean(&units).into(),
                mean(&r2).into(),
            ]);
        }
        let mut zoo: Vec<Arc<dyn em_matchers::Matcher>> = Vec::new();
        for kind in MatcherKind::all() {
            zoo.push(ctx.matcher(kind)?);
        }
        let mut ensemble = EnsembleMatcher::uniform(zoo)?;
        ensemble.calibrate(&ctx.split.validation);
        let f1 = em_matchers::evaluate(&ensemble, &ctx.split.test).f1;
        let crew = build_crew(&ctx, config.budget(), CrewOptions::default());
        let mut aopc_u = Vec::new();
        let mut units = Vec::new();
        let mut r2 = Vec::new();
        for ex in &pairs {
            let ce = crew.explain_clusters(&ensemble, &ex.pair)?;
            let tokenized = TokenizedPair::new(ex.pair.clone());
            aopc_u.push(metrics::aopc_units(&ensemble, &tokenized, &ce.units(), 3)?);
            units.push(ce.selected_k as f64);
            r2.push(ce.group_r2);
        }
        table.push_row(vec![
            ctx.dataset.name().into(),
            Cell::text("ensemble"),
            f1.into(),
            mean(&aopc_u).into(),
            mean(&units).into(),
            mean(&r2).into(),
        ]);
    }
    Ok(table)
}

/// E4 — significance of the unit-level fidelity gap: per dataset and
/// baseline, the paired per-pair difference `aopc_unit@3(CREW) −
/// aopc_unit@3(baseline)` with a sign-test p-value and a 95% bootstrap CI.
pub fn exp_e4(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let mut table = Table::new(
        "E4",
        "Significance of CREW's unit-level fidelity advantage (paired per pair)",
        vec![
            "dataset",
            "baseline",
            "mean_diff",
            "ci95_lo",
            "ci95_hi",
            "sign_p",
        ],
    );
    for &family in &config.families {
        let ctx = session.context(family)?;
        let matcher = ctx.matcher(config.matcher)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        // Per-pair unit-level AOPC for every system (store hits after the
        // headline experiments: same tuples).
        let mut scores: std::collections::HashMap<ExplainerKind, Vec<f64>> =
            std::collections::HashMap::new();
        for kind in ExplainerKind::all() {
            let mut v = Vec::with_capacity(pairs.len());
            for ex in &pairs {
                let out = session.explain(kind, &ctx, &ex.pair)?;
                let tokenized = TokenizedPair::new(ex.pair.clone());
                v.push(metrics::aopc_units(
                    matcher.as_ref(),
                    &tokenized,
                    &out.units,
                    3,
                )?);
            }
            scores.insert(kind, v);
        }
        let crew_scores = scores[&ExplainerKind::Crew].clone();
        for kind in ExplainerKind::all() {
            if kind == ExplainerKind::Crew {
                continue;
            }
            let base = &scores[&kind];
            let diffs: Vec<f64> = crew_scores.iter().zip(base).map(|(c, b)| c - b).collect();
            let (lo, hi) = em_linalg::stats::paired_bootstrap_ci(
                &crew_scores,
                base,
                0.95,
                1000,
                config.seed ^ 0xe4,
            );
            let p = em_linalg::stats::sign_test(&crew_scores, base);
            table.push_row(vec![
                ctx.dataset.name().into(),
                kind.label().into(),
                em_linalg::stats::mean(&diffs).into(),
                lo.into(),
                hi.into(),
                p.into(),
            ]);
        }
    }
    Ok(table)
}

/// E7 — matcher calibration and its effect on explanation fidelity: the
/// expected calibration error of each trained model before/after Platt
/// scaling, and CREW's unit-level AOPC against both versions. Perturbation
/// surrogates regress on probabilities, so a saturated model compresses
/// the attribution signal — calibration is the cheap fix.
pub fn exp_e7(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let mut table = Table::new(
        "E7",
        "Matcher calibration and CREW fidelity (raw vs Platt-scaled)",
        vec![
            "dataset",
            "model",
            "ece_raw",
            "ece_platt",
            "crew_aopc_raw",
            "crew_aopc_platt",
        ],
    );
    let families: Vec<_> = config.families.iter().copied().take(2).collect();
    for family in families {
        let ctx = session.context(family)?;
        for kind in [MatcherKind::Logistic, MatcherKind::Attention] {
            let raw = ctx.matcher(kind)?;
            let platt = em_matchers::CalibratedMatcher::fit(
                ArcMatcher(Arc::clone(&raw)),
                &ctx.split.validation,
            )?;
            let ece_raw =
                em_matchers::expected_calibration_error(raw.as_ref(), &ctx.split.test, 10)?;
            let ece_platt = em_matchers::expected_calibration_error(&platt, &ctx.split.test, 10)?;
            let pairs = ctx.pairs_to_explain(config.explain_pairs);
            // Raw-model explanations come from the store (E3 explains the
            // same tuples); the Platt-scaled model is not in the zoo, so
            // its explanations are computed directly.
            let crew = build_crew(&ctx, config.budget(), CrewOptions::default());
            let mut aopc_raw = Vec::new();
            let mut aopc_platt = Vec::new();
            for ex in &pairs {
                let tokenized = em_data::TokenizedPair::new(ex.pair.clone());
                let out = session.explain_for(kind, ExplainerKind::Crew, &ctx, &ex.pair)?;
                aopc_raw.push(metrics::aopc_units(
                    raw.as_ref(),
                    &tokenized,
                    &out.units,
                    3,
                )?);
                let ce2 = crew.explain_clusters(&platt, &ex.pair)?;
                aopc_platt.push(metrics::aopc_units(&platt, &tokenized, &ce2.units(), 3)?);
            }
            table.push_row(vec![
                ctx.dataset.name().into(),
                kind.label().into(),
                ece_raw.into(),
                ece_platt.into(),
                em_linalg::stats::mean(&aopc_raw).into(),
                em_linalg::stats::mean(&aopc_platt).into(),
            ]);
        }
    }
    Ok(table)
}

/// Adapter: `Arc<dyn Matcher>` as a `Matcher` by value (CalibratedMatcher
/// is generic over a concrete `M: Matcher`).
struct ArcMatcher(Arc<dyn em_matchers::Matcher>);

impl em_matchers::Matcher for ArcMatcher {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn predict_proba(&self, pair: &em_data::EntityPair) -> f64 {
        self.0.predict_proba(pair)
    }
    fn threshold(&self) -> f64 {
        self.0.threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentConfig;

    #[test]
    fn e1_reports_counterfactual_stats() {
        let cfg = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_e1(&cfg).unwrap();
        assert_eq!(t.rows.len(), 1);
        let csv = t.to_csv();
        let rows = em_data::parse_csv(&csv).unwrap();
        let flip_col = rows[0].iter().position(|c| c == "flip@3").unwrap();
        let v: f64 = rows[1][flip_col].parse().unwrap();
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn e2_ranks_every_attribute() {
        let cfg = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_e2(&cfg).unwrap();
        // restaurants schema has 4 attributes.
        assert_eq!(t.rows.len(), 4);
        assert!(t.to_markdown().contains("synth-restaurants"));
    }

    #[test]
    fn e4_compares_crew_to_every_other_system() {
        let cfg = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_e4(&cfg).unwrap();
        assert_eq!(t.rows.len(), 6); // 1 family × 6 non-CREW systems
        let csv = t.to_csv();
        let rows = em_data::parse_csv(&csv).unwrap();
        let p_col = rows[0].iter().position(|c| c == "sign_p").unwrap();
        for row in &rows[1..] {
            let p: f64 = row[p_col].parse().unwrap();
            assert!((0.0..=1.0).contains(&p), "p-value out of range: {p}");
        }
    }

    #[test]
    fn e7_reports_calibration_effect() {
        let cfg = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_e7(&cfg).unwrap();
        assert_eq!(t.rows.len(), 2); // 1 family × 2 models
        let csv = t.to_csv();
        let rows = em_data::parse_csv(&csv).unwrap();
        for col in ["ece_raw", "ece_platt"] {
            let c = rows[0].iter().position(|h| h == col).unwrap();
            for row in &rows[1..] {
                let v: f64 = row[c].parse().unwrap();
                assert!((0.0..=1.0).contains(&v), "{col} out of range: {v}");
            }
        }
    }

    #[test]
    fn e3_covers_five_models() {
        let cfg = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_e3(&cfg).unwrap();
        assert_eq!(t.rows.len(), 5);
        assert!(t.to_markdown().contains("ensemble"));
    }
}
