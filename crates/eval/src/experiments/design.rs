//! Design-choice ablations and agreement analyses:
//!
//! - **E5** — ablation of CREW's *clustering machinery*: linkage criteria,
//!   agglomerative vs k-medoids, cannot-link constraints on/off — the
//!   design decisions DESIGN.md calls out, each scored on fidelity,
//!   structure quality and interpretability.
//! - **E6** — inter-explainer agreement: mean Spearman correlation between
//!   the word attributions of every pair of systems (do the explainers
//!   even agree on what matters?).

use super::ExperimentConfig;
use crate::context::EvalContext;
use crate::explainers::{build_crew, explain_pair, ExplainerKind};
use crate::table::{Cell, Table};
use crew_core::{ClusterAlgorithm, CrewOptions};
use em_cluster::Linkage;
use em_metrics as metrics;

/// E5 — clustering design ablation.
pub fn exp_e5(config: &ExperimentConfig) -> Result<Table, crate::EvalError> {
    let variants: Vec<(&str, CrewOptions)> = vec![
        ("average+cl (CREW)", CrewOptions::default()),
        (
            "single linkage",
            CrewOptions {
                linkage: Linkage::Single,
                ..Default::default()
            },
        ),
        (
            "complete linkage",
            CrewOptions {
                linkage: Linkage::Complete,
                ..Default::default()
            },
        ),
        (
            "ward linkage",
            CrewOptions {
                linkage: Linkage::Ward,
                ..Default::default()
            },
        ),
        (
            "no cannot-link",
            CrewOptions {
                cannot_link_quantile: 0.0,
                ..Default::default()
            },
        ),
        (
            "k-medoids",
            CrewOptions {
                algorithm: ClusterAlgorithm::KMedoids,
                ..Default::default()
            },
        ),
    ];
    let mut table = Table::new(
        "E5",
        "Ablation of CREW's clustering design choices",
        vec![
            "dataset",
            "variant",
            "group_r2",
            "silhouette",
            "units",
            "coherence",
            "aopc_unit@3",
        ],
    );
    // Two representative families keep the runtime in minutes.
    let families: Vec<_> = config.families.iter().copied().take(2).collect();
    for family in families {
        let ctx = EvalContext::prepare(family, config.generator(family))?;
        let matcher = ctx.matcher(config.matcher)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        for (name, options) in &variants {
            let crew = build_crew(&ctx, config.budget(), options.clone());
            let mut r2 = Vec::new();
            let mut sil = Vec::new();
            let mut units_n = Vec::new();
            let mut coh = Vec::new();
            let mut aopc = Vec::new();
            for ex in &pairs {
                let ce = crew.explain_clusters(matcher.as_ref(), &ex.pair)?;
                r2.push(ce.group_r2);
                sil.push(ce.silhouette);
                let rep =
                    metrics::interpretability(&ce.units(), &ce.word_level.words, &ctx.embeddings)?;
                units_n.push(rep.unit_count as f64);
                coh.push(rep.semantic_coherence);
                let tokenized = em_data::TokenizedPair::new(ex.pair.clone());
                aopc.push(metrics::aopc_units(
                    matcher.as_ref(),
                    &tokenized,
                    &ce.units(),
                    3,
                )?);
            }
            let mean = em_linalg::stats::mean;
            table.push_row(vec![
                ctx.dataset.name().into(),
                Cell::text(*name),
                mean(&r2).into(),
                mean(&sil).into(),
                mean(&units_n).into(),
                mean(&coh).into(),
                mean(&aopc).into(),
            ]);
        }
    }
    Ok(table)
}

/// E6 — inter-explainer agreement: mean Spearman correlation of word
/// attributions over the explained pairs, for every ordered pair of
/// systems (upper triangle reported).
pub fn exp_e6(config: &ExperimentConfig) -> Result<Table, crate::EvalError> {
    let mut table = Table::new(
        "E6",
        "Inter-explainer agreement (mean Spearman over explained pairs)",
        vec![
            "dataset",
            "explainer_a",
            "explainer_b",
            "mean_spearman",
            "mean_jaccard@5",
        ],
    );
    let families: Vec<_> = config.families.iter().copied().take(2).collect();
    for family in families {
        let ctx = EvalContext::prepare(family, config.generator(family))?;
        let matcher = ctx.matcher(config.matcher)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        // Collect every system's word-level explanation per pair.
        let kinds = ExplainerKind::all();
        let mut per_kind: Vec<Vec<crew_core::WordExplanation>> = Vec::with_capacity(kinds.len());
        for kind in kinds {
            let mut v = Vec::with_capacity(pairs.len());
            for ex in &pairs {
                v.push(
                    explain_pair(kind, &ctx, config.budget(), matcher.as_ref(), &ex.pair)?
                        .word_level,
                );
            }
            per_kind.push(v);
        }
        for a in 0..kinds.len() {
            for b in a + 1..kinds.len() {
                let mut rho = Vec::new();
                let mut jac = Vec::new();
                for (ea, eb) in per_kind[a].iter().zip(&per_kind[b]) {
                    rho.push(metrics::weight_rank_correlation(ea, eb)?);
                    let k = 5.min(ea.weights.len().max(1));
                    jac.push(metrics::topk_jaccard(ea, eb, k)?);
                }
                table.push_row(vec![
                    ctx.dataset.name().into(),
                    kinds[a].label().into(),
                    kinds[b].label().into(),
                    em_linalg::stats::mean(&rho).into(),
                    em_linalg::stats::mean(&jac).into(),
                ]);
            }
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_covers_all_variants() {
        let cfg = ExperimentConfig::smoke();
        let t = exp_e5(&cfg).unwrap();
        assert_eq!(t.rows.len(), 6); // 1 family × 6 variants
        let md = t.to_markdown();
        assert!(md.contains("k-medoids"));
        assert!(md.contains("ward linkage"));
    }

    #[test]
    fn e6_reports_upper_triangle() {
        let cfg = ExperimentConfig::smoke();
        let t = exp_e6(&cfg).unwrap();
        // 7 systems → 21 unordered pairs × 1 family.
        assert_eq!(t.rows.len(), 21);
        let csv = t.to_csv();
        let rows = em_data::parse_csv(&csv).unwrap();
        let col = rows[0].iter().position(|c| c == "mean_spearman").unwrap();
        for row in &rows[1..] {
            let v: f64 = row[col].parse().unwrap();
            assert!((-1.0..=1.0).contains(&v));
        }
    }
}
