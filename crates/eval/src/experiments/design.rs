//! Design-choice ablations and agreement analyses:
//!
//! - **E5** — ablation of CREW's *clustering machinery*: linkage criteria,
//!   agglomerative vs k-medoids, cannot-link constraints on/off — the
//!   design decisions DESIGN.md calls out, each scored on fidelity,
//!   structure quality and interpretability.
//! - **E6** — inter-explainer agreement: mean Spearman correlation between
//!   the word attributions of every pair of systems (do the explainers
//!   even agree on what matters?).

use crate::explainers::ExplainerKind;
use crate::store::EvalSession;
use crate::table::{Cell, Table};
use crew_core::{ClusterAlgorithm, CrewOptions};
use em_cluster::Linkage;
use em_metrics as metrics;

/// E5 — clustering design ablation.
pub fn exp_e5(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let variants: Vec<(&str, CrewOptions)> = vec![
        ("average+cl (CREW)", CrewOptions::default()),
        (
            "single linkage",
            CrewOptions {
                linkage: Linkage::Single,
                ..Default::default()
            },
        ),
        (
            "complete linkage",
            CrewOptions {
                linkage: Linkage::Complete,
                ..Default::default()
            },
        ),
        (
            "ward linkage",
            CrewOptions {
                linkage: Linkage::Ward,
                ..Default::default()
            },
        ),
        (
            "no cannot-link",
            CrewOptions {
                cannot_link_quantile: 0.0,
                ..Default::default()
            },
        ),
        (
            "k-medoids",
            CrewOptions {
                algorithm: ClusterAlgorithm::KMedoids,
                ..Default::default()
            },
        ),
    ];
    let mut table = Table::new(
        "E5",
        "Ablation of CREW's clustering design choices",
        vec![
            "dataset",
            "variant",
            "group_r2",
            "silhouette",
            "units",
            "coherence",
            "aopc_unit@3",
        ],
    );
    // Two representative families keep the runtime in minutes.
    let families: Vec<_> = config.families.iter().copied().take(2).collect();
    for family in families {
        let ctx = session.context(family)?;
        let matcher = ctx.matcher(config.matcher)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        for (name, options) in &variants {
            // Each variant reshapes only the clustering tail, so all six
            // share one cached perturbation set per pair (and the default
            // variant is a full hit after the headline experiments).
            let mut r2 = Vec::new();
            let mut sil = Vec::new();
            let mut units_n = Vec::new();
            let mut coh = Vec::new();
            let mut aopc = Vec::new();
            for ex in &pairs {
                let out = session.explain_crew_with(&ctx, config.matcher, &ex.pair, options)?;
                let (_, group_r2, silhouette) = out.cluster_info.expect("crew output");
                r2.push(group_r2);
                sil.push(silhouette);
                let rep =
                    metrics::interpretability(&out.units, &out.word_level.words, &ctx.embeddings)?;
                units_n.push(rep.unit_count as f64);
                coh.push(rep.semantic_coherence);
                let tokenized = em_data::TokenizedPair::new(ex.pair.clone());
                aopc.push(metrics::aopc_units(
                    matcher.as_ref(),
                    &tokenized,
                    &out.units,
                    3,
                )?);
            }
            let mean = em_linalg::stats::mean;
            table.push_row(vec![
                ctx.dataset.name().into(),
                Cell::text(*name),
                mean(&r2).into(),
                mean(&sil).into(),
                mean(&units_n).into(),
                mean(&coh).into(),
                mean(&aopc).into(),
            ]);
        }
    }
    Ok(table)
}

/// E6 — inter-explainer agreement: mean Spearman correlation of word
/// attributions over the explained pairs, for every ordered pair of
/// systems (upper triangle reported).
pub fn exp_e6(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let mut table = Table::new(
        "E6",
        "Inter-explainer agreement (mean Spearman over explained pairs)",
        vec![
            "dataset",
            "explainer_a",
            "explainer_b",
            "mean_spearman",
            "mean_jaccard@5",
        ],
    );
    let families: Vec<_> = config.families.iter().copied().take(2).collect();
    for family in families {
        let ctx = session.context(family)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        // Collect every system's explanation per pair (store hits after
        // the headline experiments: same tuples).
        let kinds = ExplainerKind::all();
        let mut per_kind: Vec<Vec<std::sync::Arc<crate::explainers::ExplanationOutput>>> =
            Vec::with_capacity(kinds.len());
        for kind in kinds {
            let mut v = Vec::with_capacity(pairs.len());
            for ex in &pairs {
                v.push(session.explain(kind, &ctx, &ex.pair)?);
            }
            per_kind.push(v);
        }
        for a in 0..kinds.len() {
            for b in a + 1..kinds.len() {
                let mut rho = Vec::new();
                let mut jac = Vec::new();
                for (oa, ob) in per_kind[a].iter().zip(&per_kind[b]) {
                    let (ea, eb) = (&oa.word_level, &ob.word_level);
                    rho.push(metrics::weight_rank_correlation(ea, eb)?);
                    let k = 5.min(ea.weights.len().max(1));
                    jac.push(metrics::topk_jaccard(ea, eb, k)?);
                }
                table.push_row(vec![
                    ctx.dataset.name().into(),
                    kinds[a].label().into(),
                    kinds[b].label().into(),
                    em_linalg::stats::mean(&rho).into(),
                    em_linalg::stats::mean(&jac).into(),
                ]);
            }
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentConfig;

    #[test]
    fn e5_covers_all_variants() {
        let cfg = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_e5(&cfg).unwrap();
        assert_eq!(t.rows.len(), 6); // 1 family × 6 variants
        let md = t.to_markdown();
        assert!(md.contains("k-medoids"));
        assert!(md.contains("ward linkage"));
    }

    #[test]
    fn e6_reports_upper_triangle() {
        let cfg = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_e6(&cfg).unwrap();
        // 7 systems → 21 unordered pairs × 1 family.
        assert_eq!(t.rows.len(), 21);
        let csv = t.to_csv();
        let rows = em_data::parse_csv(&csv).unwrap();
        let col = rows[0].iter().position(|c| c == "mean_spearman").unwrap();
        for row in &rows[1..] {
            let v: f64 = row[col].parse().unwrap();
            assert!((-1.0..=1.0).contains(&v));
        }
    }
}
