//! Table experiments T1-T6 (see DESIGN.md for the reconstruction notes).

use crate::context::{EvalContext, MatcherKind};
use crate::explainers::{build_crew, ExplainerKind};
use crate::store::EvalSession;
use crate::table::{Cell, Table};
use crew_core::{CrewOptions, KnowledgeWeights};
use em_data::TokenizedPair;
use em_metrics as metrics;
use std::sync::Arc;

/// T1 — dataset statistics (pairs, match rate, attributes, tokens).
pub fn exp_t1(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let mut table = Table::new(
        "T1",
        "Synthetic benchmark statistics (ER-Magellan shaped)",
        vec![
            "dataset",
            "pairs",
            "matches",
            "match_rate",
            "attributes",
            "avg_tokens/pair",
        ],
    );
    for &family in &config.families {
        let ctx = session.context(family)?;
        let s = ctx.dataset.stats();
        table.push_row(vec![
            s.name.into(),
            s.pairs.into(),
            s.matches.into(),
            s.match_rate.into(),
            s.attributes.into(),
            s.avg_tokens_per_pair.into(),
        ]);
    }
    Ok(table)
}

/// T2 — matcher quality (precision/recall/F1) per dataset: validates that
/// the substrate models are competent enough to be worth explaining.
pub fn exp_t2(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let mut table = Table::new(
        "T2",
        "Matcher quality on held-out test pairs",
        vec!["dataset", "matcher", "precision", "recall", "f1"],
    );
    for &family in &session.config().families {
        let ctx = session.context(family)?;
        for kind in MatcherKind::all() {
            let matcher = ctx.matcher(kind)?;
            let report = em_matchers::evaluate(matcher.as_ref(), &ctx.split.test);
            table.push_row(vec![
                ctx.dataset.name().into(),
                kind.label().into(),
                report.precision.into(),
                report.recall.into(),
                report.f1.into(),
            ]);
        }
    }
    Ok(table)
}

/// Shared per-(dataset, explainer) aggregates behind T3 and T4.
pub(crate) struct HeadlineRow {
    pub dataset: String,
    pub explainer: ExplainerKind,
    pub aopc: f64,
    pub aopc_units: f64,
    pub flip_rate: f64,
    pub surrogate_r2: f64,
    pub sufficiency: f64,
    pub units: f64,
    pub coherence: f64,
    pub purity: f64,
    pub compression: f64,
    pub seconds_per_pair: f64,
}

/// Per-pair measurements behind one [`HeadlineRow`].
struct PairStats {
    aopc: f64,
    aopc_u: f64,
    flip: f64,
    r2: f64,
    suff: f64,
    units_n: f64,
    coh: f64,
    pur: f64,
    comp: f64,
    secs: f64,
}

/// Explain one pair with one system and measure everything T3/T4 report.
/// The unperturbed base score is queried once, and the four fidelity
/// metrics share a single batched model query
/// ([`metrics::fidelity_probes_with_base`]) — identical values to the
/// individual `*_with_base` forms at a fraction of the dispatches.
fn pair_stats(
    kind: ExplainerKind,
    ctx: &Arc<EvalContext>,
    session: &EvalSession,
    matcher: &dyn em_matchers::Matcher,
    pair: &em_data::EntityPair,
    fractions: &[f64],
) -> Result<PairStats, crate::EvalError> {
    let out = session.explain(kind, ctx, pair)?;
    let tokenized = TokenizedPair::new(pair.clone());
    let base = metrics::base_probability(matcher, &tokenized);
    let probes = metrics::fidelity_probes_with_base(
        matcher, &tokenized, &out.units, fractions, 3, 0.3, base,
    )?;
    let rep = metrics::interpretability(&out.units, &out.word_level.words, &ctx.embeddings)?;
    Ok(PairStats {
        aopc: probes.aopc_deletion,
        aopc_u: probes.aopc_units,
        flip: f64::from(probes.decision_flip),
        r2: out.word_level.surrogate_r2,
        suff: probes.sufficiency,
        units_n: rep.unit_count as f64,
        coh: rep.semantic_coherence,
        pur: rep.attribute_purity,
        comp: rep.compression,
        secs: out.elapsed,
    })
}

/// The T3/T4 shared aggregation, memoized on the session (T3 and T4 both
/// read it; whichever runs first pays for it once).
pub(crate) fn headline_metrics(
    session: &EvalSession,
) -> Result<Arc<Vec<HeadlineRow>>, crate::EvalError> {
    let (rows, _outcome) = session.headline.get_or_try_init(|| {
        let _span = em_obs::root_span!("store/headline");
        compute_headline(session)
    })?;
    Ok(rows)
}

fn compute_headline(session: &EvalSession) -> Result<Vec<HeadlineRow>, crate::EvalError> {
    let config = session.config();
    let mut rows = Vec::new();
    let fractions = metrics::standard_fractions();
    for &family in &config.families {
        let ctx = session.context(family)?;
        let matcher = ctx.matcher(config.matcher)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        for kind in ExplainerKind::all() {
            // Pair-level fan-out over the shared worker pool. Every pair's
            // result lands in its own slot, and aggregation walks the slots
            // in pair order, so the row is identical at any thread count
            // (each explanation is deterministic on its own).
            let slots: Vec<std::sync::Mutex<Option<Result<PairStats, crate::EvalError>>>> =
                pairs.iter().map(|_| std::sync::Mutex::new(None)).collect();
            let run_pair = |i: usize| {
                let r = pair_stats(
                    kind,
                    &ctx,
                    session,
                    matcher.as_ref(),
                    &pairs[i].pair,
                    &fractions,
                );
                *slots[i].lock().expect("slot lock") = Some(r);
            };
            if config.threads <= 1 {
                for i in 0..pairs.len() {
                    run_pair(i);
                }
            } else {
                em_pool::global().run(pairs.len(), config.threads, &run_pair);
            }
            let mut aopc = Vec::new();
            let mut aopc_u = Vec::new();
            let mut flips = Vec::new();
            let mut r2 = Vec::new();
            let mut suff = Vec::new();
            let mut units_n = Vec::new();
            let mut coh = Vec::new();
            let mut pur = Vec::new();
            let mut comp = Vec::new();
            let mut secs = Vec::new();
            for slot in slots {
                let stats = slot
                    .into_inner()
                    .expect("slot lock")
                    .expect("every pair processed")?;
                aopc.push(stats.aopc);
                aopc_u.push(stats.aopc_u);
                flips.push(stats.flip);
                r2.push(stats.r2);
                suff.push(stats.suff);
                units_n.push(stats.units_n);
                coh.push(stats.coh);
                pur.push(stats.pur);
                comp.push(stats.comp);
                secs.push(stats.secs);
            }
            let mean = em_linalg::stats::mean;
            rows.push(HeadlineRow {
                dataset: ctx.dataset.name().to_string(),
                explainer: kind,
                aopc: mean(&aopc),
                aopc_units: mean(&aopc_u),
                flip_rate: mean(&flips),
                surrogate_r2: mean(&r2),
                sufficiency: mean(&suff),
                units: mean(&units_n),
                coherence: mean(&coh),
                purity: mean(&pur),
                compression: mean(&comp),
                seconds_per_pair: mean(&secs),
            });
        }
    }
    Ok(rows)
}

/// T3 — headline fidelity: AOPC-deletion, decision-flip rate, sufficiency
/// and surrogate R² per explainer × dataset.
pub fn exp_t3(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let mut table = Table::new(
        "T3",
        "Fidelity to the model (higher is better)",
        vec![
            "dataset",
            "explainer",
            "aopc_del",
            "aopc_unit@3",
            "flip_rate",
            "sufficiency",
            "surrogate_r2",
            "secs/pair",
        ],
    );
    for row in headline_metrics(session)?.iter() {
        table.push_row(vec![
            row.dataset.clone().into(),
            row.explainer.label().into(),
            row.aopc.into(),
            row.aopc_units.into(),
            row.flip_rate.into(),
            row.sufficiency.into(),
            row.surrogate_r2.into(),
            row.seconds_per_pair.into(),
        ]);
    }
    Ok(table)
}

/// T4 — headline interpretability: unit count, coherence, purity,
/// compression per explainer × dataset.
pub fn exp_t4(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let mut table = Table::new(
        "T4",
        "Interpretability proxies (fewer/more-coherent units are better)",
        vec![
            "dataset",
            "explainer",
            "units",
            "coherence",
            "attr_purity",
            "compression",
        ],
    );
    for row in headline_metrics(session)?.iter() {
        table.push_row(vec![
            row.dataset.clone().into(),
            row.explainer.label().into(),
            row.units.into(),
            row.coherence.into(),
            row.purity.into(),
            row.compression.into(),
        ]);
    }
    Ok(table)
}

/// T5 — ablation of CREW's three knowledge sources.
pub fn exp_t5(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let variants: Vec<(&str, KnowledgeWeights)> = vec![
        ("semantic-only", KnowledgeWeights::only_semantic()),
        ("attribute-only", KnowledgeWeights::only_attribute()),
        ("importance-only", KnowledgeWeights::only_importance()),
        (
            "sem+attr",
            KnowledgeWeights {
                semantic: 1.0,
                attribute: 1.0,
                importance: 0.0,
            },
        ),
        (
            "sem+imp",
            KnowledgeWeights {
                semantic: 1.0,
                attribute: 0.0,
                importance: 1.0,
            },
        ),
        (
            "attr+imp",
            KnowledgeWeights {
                semantic: 0.0,
                attribute: 1.0,
                importance: 1.0,
            },
        ),
        ("all (CREW)", KnowledgeWeights::default()),
    ];
    let mut table = Table::new(
        "T5",
        "Ablation of CREW's knowledge sources",
        vec![
            "dataset",
            "variant",
            "group_r2",
            "silhouette",
            "units",
            "coherence",
            "attr_purity",
        ],
    );
    for &family in &config.families {
        let ctx = session.context(family)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        for (name, weights) in &variants {
            // All variants share the cached perturbation set of each pair
            // (the budget is identical); only the clustering tail differs.
            let options = CrewOptions {
                knowledge: *weights,
                ..Default::default()
            };
            let mut r2 = Vec::new();
            let mut sil = Vec::new();
            let mut units_n = Vec::new();
            let mut coh = Vec::new();
            let mut pur = Vec::new();
            for ex in &pairs {
                let out = session.explain_crew_with(&ctx, config.matcher, &ex.pair, &options)?;
                let (_, group_r2, silhouette) = out.cluster_info.expect("crew output");
                r2.push(group_r2);
                sil.push(silhouette);
                let rep =
                    metrics::interpretability(&out.units, &out.word_level.words, &ctx.embeddings)?;
                units_n.push(rep.unit_count as f64);
                coh.push(rep.semantic_coherence);
                pur.push(rep.attribute_purity);
            }
            let mean = em_linalg::stats::mean;
            table.push_row(vec![
                ctx.dataset.name().into(),
                Cell::text(*name),
                mean(&r2).into(),
                mean(&sil).into(),
                mean(&units_n).into(),
                mean(&coh).into(),
                mean(&pur).into(),
            ]);
        }
    }
    Ok(table)
}

/// T6 — sensitivity of CREW to the perturbation budget S.
pub fn exp_t6(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let budgets = [32usize, 64, 128, 256, 512];
    let mut table = Table::new(
        "T6",
        "CREW sensitivity to the perturbation budget",
        vec![
            "dataset",
            "samples",
            "aopc_del",
            "group_r2",
            "stability@10",
            "secs/pair",
        ],
    );
    let fractions = metrics::standard_fractions();
    for &family in &config.families {
        let ctx = session.context(family)?;
        let matcher = ctx.matcher(config.matcher)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs.min(8));
        // T6 measures explanation wall-clock across budgets and seeds, so
        // it deliberately bypasses the explanation store: every (sample,
        // seed) combination here is timed fresh with its own stopwatch.
        for &samples in &budgets {
            if samples > config.samples * 2 {
                continue; // respect the configured ceiling in smoke runs
            }
            let mut aopc = Vec::new();
            let mut r2 = Vec::new();
            let mut stab = Vec::new();
            let mut secs = Vec::new();
            for ex in &pairs {
                let tokenized = TokenizedPair::new(ex.pair.clone());
                // Three seeds for the stability estimate.
                let mut word_views = Vec::new();
                let mut first: Option<crew_core::ClusterExplanation> = None;
                let t0 = std::time::Instant::now();
                for s in 0..3u64 {
                    let crew = build_crew(
                        &ctx,
                        crate::explainers::ExplainBudget {
                            samples,
                            seed: config.seed ^ (s * 77 + 1),
                            threads: config.threads,
                        },
                        CrewOptions::default(),
                    );
                    let ce = crew.explain_clusters(matcher.as_ref(), &ex.pair)?;
                    word_views.push(flatten(&ce));
                    if s == 0 {
                        first = Some(ce);
                    }
                }
                secs.push(t0.elapsed().as_secs_f64() / 3.0);
                let ce = first.expect("three seeds ran");
                aopc.push(metrics::aopc_deletion(
                    matcher.as_ref(),
                    &tokenized,
                    &ce.units(),
                    &fractions,
                )?);
                r2.push(ce.group_r2);
                let k = 10.min(tokenized.len().max(1));
                stab.push(metrics::mean_pairwise_stability(&word_views, k)?);
            }
            let mean = em_linalg::stats::mean;
            table.push_row(vec![
                ctx.dataset.name().into(),
                samples.into(),
                mean(&aopc).into(),
                mean(&r2).into(),
                mean(&stab).into(),
                mean(&secs).into(),
            ]);
        }
    }
    Ok(table)
}

/// Word-level view of a cluster explanation (cluster weight spread evenly).
pub(crate) fn flatten(ce: &crew_core::ClusterExplanation) -> crew_core::WordExplanation {
    let mut weights = vec![0.0; ce.word_level.words.len()];
    for c in &ce.clusters {
        let share = c.weight / c.member_indices.len() as f64;
        for &i in &c.member_indices {
            weights[i] = share;
        }
    }
    crew_core::WordExplanation {
        explainer: "crew".into(),
        words: ce.word_level.words.clone(),
        weights,
        base_score: ce.word_level.base_score,
        intercept: ce.word_level.intercept,
        surrogate_r2: ce.group_r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentConfig;

    #[test]
    fn t1_reports_every_family() {
        let s = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_t1(&s).unwrap();
        assert_eq!(t.rows.len(), 1);
        assert!(t.to_markdown().contains("synth-restaurants"));
    }

    #[test]
    fn t3_and_t4_cover_all_explainers() {
        let s = EvalSession::new(ExperimentConfig::smoke());
        let t3 = exp_t3(&s).unwrap();
        assert_eq!(t3.rows.len(), 7); // 1 family × 7 explainers (incl. WYM ext.)
        let md = t3.to_markdown();
        for kind in ExplainerKind::all() {
            assert!(md.contains(kind.label()), "missing {}", kind.label());
        }
        // T4 reads the memoized aggregation T3 just computed.
        let t4 = exp_t4(&s).unwrap();
        assert_eq!(t4.rows.len(), 7);
    }

    #[test]
    fn t5_has_seven_variants() {
        let s = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_t5(&s).unwrap();
        assert_eq!(t.rows.len(), 7);
        assert!(t.to_markdown().contains("all (CREW)"));
    }
}
