//! Experiment runners: one function per table/figure of the reconstructed
//! CREW evaluation (see DESIGN.md for the experiment index). Every runner
//! is deterministic for a fixed [`ExperimentConfig`].

pub mod design;
pub mod extensions;
pub mod figures;
pub mod tables;

pub use design::{exp_e5, exp_e6};
pub use extensions::{exp_e1, exp_e2, exp_e3, exp_e4, exp_e7};
pub use figures::{exp_f1, exp_f2, exp_f3, exp_f4};
pub use tables::{exp_t1, exp_t2, exp_t3, exp_t4, exp_t5, exp_t6};

use crate::context::MatcherKind;
use em_synth::Family;

/// Scale/seed knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Master seed (datasets, training, sampling all derive from it).
    pub seed: u64,
    /// Base entities per synthetic dataset.
    pub entities: usize,
    /// Labelled pairs per synthetic dataset.
    pub pairs: usize,
    /// Test pairs explained per dataset in the headline experiments.
    pub explain_pairs: usize,
    /// Perturbation samples per explanation.
    pub samples: usize,
    /// Worker threads for model queries.
    pub threads: usize,
    /// Dataset families included.
    pub families: Vec<Family>,
    /// The model being explained in the headline experiments.
    pub matcher: MatcherKind,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 7,
            entities: 400,
            pairs: 1200,
            explain_pairs: 20,
            samples: 256,
            threads: 4,
            families: Family::all().to_vec(),
            matcher: MatcherKind::Attention,
        }
    }
}

impl ExperimentConfig {
    /// The default configuration over all seven families (five core +
    /// electronics + scholar).
    pub fn extended() -> Self {
        ExperimentConfig {
            families: Family::all_extended().to_vec(),
            ..Default::default()
        }
    }

    /// A drastically reduced configuration for unit/integration tests.
    pub fn smoke() -> Self {
        ExperimentConfig {
            seed: 7,
            entities: 50,
            pairs: 120,
            explain_pairs: 3,
            samples: 48,
            threads: 1,
            families: vec![Family::Restaurants],
            matcher: MatcherKind::Logistic,
        }
    }

    /// Generator settings for one family under this configuration.
    pub fn generator(&self, family: Family) -> em_synth::GeneratorConfig {
        let match_rate = match family {
            Family::Products => 0.12,
            Family::Citations => 0.18,
            Family::Restaurants => 0.22,
            Family::Songs => 0.15,
            Family::Beers => 0.20,
            Family::Electronics => 0.10,
            Family::Scholar => 0.16,
        };
        em_synth::GeneratorConfig {
            entities: self.entities,
            pairs: self.pairs,
            match_rate,
            hard_negative_rate: 0.6,
            seed: self.seed,
        }
    }

    /// The shared explainer budget of this configuration.
    pub fn budget(&self) -> crate::explainers::ExplainBudget {
        crate::explainers::ExplainBudget {
            samples: self.samples,
            seed: self.seed ^ 0xb0d,
            threads: self.threads,
        }
    }
}
