//! Experiment runners: one function per table/figure of the reconstructed
//! CREW evaluation (see DESIGN.md for the experiment index). Every runner
//! is deterministic for a fixed [`ExperimentConfig`].

pub mod design;
pub mod extensions;
pub mod figures;
pub mod tables;

pub use design::{exp_e5, exp_e6};
pub use extensions::{exp_e1, exp_e2, exp_e3, exp_e4, exp_e7};
pub use figures::{exp_f1, exp_f2, exp_f3, exp_f4};
pub use tables::{exp_t1, exp_t2, exp_t3, exp_t4, exp_t5, exp_t6};

use crate::context::MatcherKind;
use crate::store::EvalSession;
use crate::table::Table;
use em_synth::Family;

/// Scale/seed knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Master seed (datasets, training, sampling all derive from it).
    pub seed: u64,
    /// Base entities per synthetic dataset.
    pub entities: usize,
    /// Labelled pairs per synthetic dataset.
    pub pairs: usize,
    /// Test pairs explained per dataset in the headline experiments.
    pub explain_pairs: usize,
    /// Perturbation samples per explanation.
    pub samples: usize,
    /// Worker threads for model queries.
    pub threads: usize,
    /// Dataset families included.
    pub families: Vec<Family>,
    /// The model being explained in the headline experiments.
    pub matcher: MatcherKind,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 7,
            entities: 400,
            pairs: 1200,
            explain_pairs: 20,
            samples: 256,
            threads: 4,
            families: Family::all().to_vec(),
            matcher: MatcherKind::Attention,
        }
    }
}

impl ExperimentConfig {
    /// The default configuration over all seven families (five core +
    /// electronics + scholar).
    pub fn extended() -> Self {
        ExperimentConfig {
            families: Family::all_extended().to_vec(),
            ..Default::default()
        }
    }

    /// A drastically reduced configuration for unit/integration tests.
    pub fn smoke() -> Self {
        ExperimentConfig {
            seed: 7,
            entities: 50,
            pairs: 120,
            explain_pairs: 3,
            samples: 48,
            threads: 1,
            families: vec![Family::Restaurants],
            matcher: MatcherKind::Logistic,
        }
    }

    /// Generator settings for one family under this configuration.
    pub fn generator(&self, family: Family) -> em_synth::GeneratorConfig {
        em_synth::GeneratorConfig {
            entities: self.entities,
            pairs: self.pairs,
            match_rate: family.standard_match_rate(),
            hard_negative_rate: 0.6,
            seed: self.seed,
        }
    }

    /// The shared explainer budget of this configuration.
    pub fn budget(&self) -> crate::explainers::ExplainBudget {
        crate::explainers::ExplainBudget {
            samples: self.samples,
            seed: self.seed ^ 0xb0d,
            threads: self.threads,
        }
    }
}

/// One experiment runner: every table/figure draws from the session's
/// shared stores.
pub type ExperimentFn = fn(&EvalSession) -> Result<Table, crate::EvalError>;

/// The full experiment roster in report order.
pub fn suite() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("T1", exp_t1 as ExperimentFn),
        ("T2", exp_t2),
        ("T3", exp_t3),
        ("T4", exp_t4),
        ("T5", exp_t5),
        ("T6", exp_t6),
        ("F1", exp_f1),
        ("F2", exp_f2),
        ("F3", exp_f3),
        ("F4", exp_f4),
        ("E1", exp_e1),
        ("E2", exp_e2),
        ("E3", exp_e3),
        ("E4", exp_e4),
        ("E5", exp_e5),
        ("E6", exp_e6),
        ("E7", exp_e7),
    ]
}

/// Outcome of one suite entry.
pub struct SuiteResult {
    pub name: &'static str,
    pub result: Result<Table, crate::EvalError>,
    /// Wall-clock seconds this runner spent (including any store misses it
    /// paid for; hits it enjoys were paid for by an earlier runner).
    pub secs: f64,
}

/// Run the whole suite over the shared worker pool with `jobs` concurrent
/// experiments (1 = sequential). Every runner writes into its own slot and
/// the slots are drained in suite order, so the returned tables — and any
/// CSVs derived from them — are identical at every `jobs` value: each
/// runner is deterministic given the session, and the stores guarantee a
/// key's value is computed once and shared regardless of which runner gets
/// there first.
pub fn run_suite(session: &EvalSession, jobs: usize) -> Vec<SuiteResult> {
    let entries = suite();
    let slots: Vec<std::sync::Mutex<Option<SuiteResult>>> = entries
        .iter()
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let run_one = |i: usize| {
        let (name, f) = entries[i];
        // One span per experiment. Direct (store-bypassing) work nests
        // here; shared store computes anchor themselves at the root, so
        // the aggregated tree is identical at every `jobs` value.
        let _span = em_obs::span!(&format!("suite/{name}"));
        let t0 = std::time::Instant::now();
        let result = f(session);
        *slots[i].lock().expect("suite slot lock") = Some(SuiteResult {
            name,
            result,
            secs: t0.elapsed().as_secs_f64(),
        });
    };
    // Always submit through the pool: a budget of 1 executes inline and
    // in suite order, and the batch is counted identically either way, so
    // the obs counters match across `--jobs` values.
    em_pool::global().run(entries.len(), jobs.max(1), &run_one);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("suite slot lock")
                .expect("every experiment ran")
        })
        .collect()
}
