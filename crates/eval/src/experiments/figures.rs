//! Figure experiments F1-F4: each emits a long-format table whose CSV is
//! the plotted series.

use super::tables::flatten;
use crate::explainers::{build_crew, explain_pair, ExplainBudget, ExplainerKind};
use crate::store::EvalSession;
use crate::table::Table;
use crew_core::CrewOptions;
use em_data::TokenizedPair;
use em_metrics as metrics;

/// F1 — AOPC deletion curves: mean probability drop vs fraction of top
/// explanation words removed, per explainer.
pub fn exp_f1(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let mut table = Table::new(
        "F1",
        "Deletion curves: mean Δprob vs fraction of top words removed",
        vec!["dataset", "explainer", "fraction", "mean_drop"],
    );
    for &family in &config.families {
        let ctx = session.context(family)?;
        let matcher = ctx.matcher(config.matcher)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        for kind in ExplainerKind::all() {
            // drops[f] accumulates base - p(after removing top f). The
            // explanations are the same tuples T3 measures, so they are
            // store hits on a full sweep.
            let mut drops = vec![0.0f64; fractions.len()];
            for ex in &pairs {
                let out = session.explain(kind, &ctx, &ex.pair)?;
                let tokenized = TokenizedPair::new(ex.pair.clone());
                let curve =
                    metrics::deletion_curve(matcher.as_ref(), &tokenized, &out.units, &fractions)?;
                let base = curve[0].1;
                for (d, &(_, p)) in drops.iter_mut().zip(&curve) {
                    *d += base - p;
                }
            }
            for (i, &f) in fractions.iter().enumerate() {
                table.push_row(vec![
                    ctx.dataset.name().into(),
                    kind.label().into(),
                    f.into(),
                    (drops[i] / pairs.len().max(1) as f64).into(),
                ]);
            }
        }
    }
    Ok(table)
}

/// F2 — fidelity (group R²) and silhouette vs number of clusters K: the
/// knee CREW's model selection finds.
pub fn exp_f2(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let mut table = Table::new(
        "F2",
        "CREW fidelity and silhouette vs cluster count K",
        vec![
            "dataset",
            "k",
            "mean_group_r2",
            "mean_silhouette",
            "mean_selected_k",
        ],
    );
    for &family in &config.families {
        let ctx = session.context(family)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs);
        let crew = build_crew(&ctx, config.budget(), CrewOptions::default());
        let k_max = crew.options().max_clusters;
        let mut r2_by_k = vec![Vec::new(); k_max + 1];
        let mut sil_by_k = vec![Vec::new(); k_max + 1];
        let mut selected = Vec::new();
        for ex in &pairs {
            // The sweep reuses the shared perturbation set of the pair
            // (the only matcher-querying stage); selected_k comes from the
            // cached headline explanation.
            let timed = session.perturbation_set(&ctx, config.matcher, &ex.pair)?;
            let tokenized = TokenizedPair::new(ex.pair.clone());
            for (k, r2, sil) in crew.k_sweep_with_set(&tokenized, &timed.set)? {
                r2_by_k[k].push(r2);
                sil_by_k[k].push(sil);
            }
            let out = session.explain(ExplainerKind::Crew, &ctx, &ex.pair)?;
            selected.push(out.cluster_info.expect("crew output").0 as f64);
        }
        let mean_selected = em_linalg::stats::mean(&selected);
        for k in 1..=k_max {
            if r2_by_k[k].is_empty() {
                continue;
            }
            table.push_row(vec![
                ctx.dataset.name().into(),
                k.into(),
                em_linalg::stats::mean(&r2_by_k[k]).into(),
                em_linalg::stats::mean(&sil_by_k[k]).into(),
                mean_selected.into(),
            ]);
        }
    }
    Ok(table)
}

/// F3 — runtime scaling: seconds per explanation vs pair length in tokens.
pub fn exp_f3(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    // The base product pair is already ~38 tokens, so the grid starts
    // there and grows (a 20-token target would duplicate the 40 bucket).
    let sizes = [40usize, 80, 120, 160, 200];
    let mut table = Table::new(
        "F3",
        "Explanation runtime vs pair length",
        vec!["tokens", "explainer", "seconds"],
    );
    // A context is still needed for embeddings/support sets; use products
    // (the scaling pairs are product-shaped).
    let ctx = session.context(em_synth::Family::Products)?;
    ctx.matcher(config.matcher)?;
    for &target in &sizes {
        if target > 40 && config.samples < 64 {
            // In smoke configurations skip the large sizes.
            continue;
        }
        let pair = em_synth::scaling_pair(target, config.seed);
        for kind in ExplainerKind::all() {
            // The store records each explanation's cold (first-computation)
            // wall-clock, which is exactly what this figure reports —
            // repeat runs would be cache hits carrying the same number.
            let out = session.explain(kind, &ctx, &pair)?;
            table.push_row(vec![
                pair.token_count().into(),
                kind.label().into(),
                out.elapsed.into(),
            ]);
        }
    }
    Ok(table)
}

/// F4 — stability (top-10 Jaccard across 5 seeds) vs perturbation budget,
/// CREW vs LIME.
pub fn exp_f4(session: &EvalSession) -> Result<Table, crate::EvalError> {
    let config = session.config();
    let budgets = [32usize, 64, 128, 256, 512];
    let n_seeds = 5u64;
    let mut table = Table::new(
        "F4",
        "Explanation stability across seeds vs perturbation budget",
        vec!["dataset", "explainer", "samples", "stability@10"],
    );
    for &family in &config.families {
        let ctx = session.context(family)?;
        let matcher = ctx.matcher(config.matcher)?;
        let pairs = ctx.pairs_to_explain(config.explain_pairs.min(6));
        // Every (budget, seed) combination here is unique to F4, so the
        // explanations are computed directly rather than through the store.
        for &samples in &budgets {
            if samples > config.samples * 2 {
                continue;
            }
            for kind in [ExplainerKind::Crew, ExplainerKind::Lime] {
                let mut scores = Vec::new();
                for ex in &pairs {
                    let tokenized = TokenizedPair::new(ex.pair.clone());
                    let k = 10.min(tokenized.len().max(1));
                    let mut views = Vec::new();
                    for s in 0..n_seeds {
                        let budget = ExplainBudget {
                            samples,
                            seed: config.seed ^ (s * 131 + 7),
                            threads: config.threads,
                        };
                        if kind == ExplainerKind::Crew {
                            let crew = build_crew(&ctx, budget, CrewOptions::default());
                            views
                                .push(flatten(&crew.explain_clusters(matcher.as_ref(), &ex.pair)?));
                        } else {
                            let out = explain_pair(kind, &ctx, budget, matcher.as_ref(), &ex.pair)?;
                            views.push(out.word_level);
                        }
                    }
                    scores.push(metrics::mean_pairwise_stability(&views, k)?);
                }
                table.push_row(vec![
                    ctx.dataset.name().into(),
                    kind.label().into(),
                    samples.into(),
                    em_linalg::stats::mean(&scores).into(),
                ]);
            }
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentConfig;

    #[test]
    fn f1_produces_series_per_explainer() {
        let s = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_f1(&s).unwrap();
        // 1 family × 7 explainers × 6 fractions
        assert_eq!(t.rows.len(), 42);
        // Drop at fraction 0 is exactly zero.
        let md = t.to_csv();
        assert!(md.contains("0.000"));
    }

    #[test]
    fn f2_sweeps_k() {
        let s = EvalSession::new(ExperimentConfig::smoke());
        let t = exp_f2(&s).unwrap();
        assert!(
            t.rows.len() >= 5,
            "expected a K sweep, got {} rows",
            t.rows.len()
        );
    }
}
