//! Evaluation contexts: a prepared dataset (splits, embeddings) plus a
//! lazily trained, cached model zoo — everything an experiment runner
//! needs, derived deterministically from one seed.

use em_data::{Dataset, Split};
use em_embed::{EmbeddingOptions, WordEmbeddings};
use em_matchers::{
    AttentionMatcher, AttentionOptions, LogisticMatcher, Matcher, MlpMatcher, RuleMatcher,
    TrainOptions,
};
use em_synth::{generate, Family, GeneratorConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// Which matcher family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatcherKind {
    Logistic,
    Mlp,
    Attention,
    Rules,
}

impl MatcherKind {
    pub fn all() -> [MatcherKind; 4] {
        [
            MatcherKind::Logistic,
            MatcherKind::Mlp,
            MatcherKind::Attention,
            MatcherKind::Rules,
        ]
    }

    pub fn label(self) -> &'static str {
        match self {
            MatcherKind::Logistic => "logistic",
            MatcherKind::Mlp => "mlp",
            MatcherKind::Attention => "attention",
            MatcherKind::Rules => "rules",
        }
    }
}

/// A prepared dataset with cached trained models.
pub struct EvalContext {
    pub family: Family,
    /// The generator configuration this context was prepared from (the
    /// identity the [`crate::store::ContextStore`] caches under).
    pub config: GeneratorConfig,
    pub dataset: Dataset,
    pub split: Split,
    pub embeddings: Arc<WordEmbeddings>,
    pub seed: u64,
    /// Lazily trained model zoo. Each kind owns a coalescing slot, so
    /// concurrent first requests train the model exactly once (the old
    /// check-unlock-train-insert sequence could train twice under
    /// concurrency, wasting work and making the trace schedule-dependent).
    zoo: Mutex<HashMap<MatcherKind, Arc<crate::store::Slot<Arc<dyn Matcher>>>>>,
}

impl EvalContext {
    /// Prepare a context for one family: generate data, split 70/15/15,
    /// train embeddings on the training corpus.
    pub fn prepare(family: Family, config: GeneratorConfig) -> Result<Self, crate::EvalError> {
        let dataset = generate(family, config)?;
        let split = dataset.split(0.7, 0.15, config.seed)?;
        let embeddings = Arc::new(WordEmbeddings::train_on_dataset(
            &split.train,
            EmbeddingOptions::default(),
        )?);
        Ok(EvalContext {
            family,
            config,
            dataset,
            split,
            embeddings,
            seed: config.seed,
            zoo: Mutex::new(HashMap::new()),
        })
    }

    /// Prepare with the standard benchmark sizing.
    pub fn prepare_standard(family: Family, seed: u64) -> Result<Self, crate::EvalError> {
        EvalContext::prepare(
            family,
            GeneratorConfig {
                match_rate: family.standard_match_rate(),
                seed,
                ..Default::default()
            },
        )
    }

    /// Train (or fetch from cache) a matcher of the requested kind.
    /// Concurrent first requests coalesce on the kind's slot: the model
    /// is trained exactly once and the losers block for the result.
    pub fn matcher(&self, kind: MatcherKind) -> Result<Arc<dyn Matcher>, crate::EvalError> {
        let slot = {
            let mut zoo = self.zoo.lock().expect("matcher zoo lock poisoned");
            Arc::clone(
                zoo.entry(kind)
                    .or_insert_with(|| Arc::new(crate::store::Slot::new())),
            )
        };
        let (trained, _) = slot.get_or_try_init(|| {
            // Root-anchored like the store computes: whichever caller
            // trains first is schedule-dependent.
            let _span = em_obs::root_span!("matcher/train");
            em_obs::counter!("matcher/trained", 1);
            Ok::<_, crate::EvalError>(match kind {
                MatcherKind::Logistic => Arc::new(LogisticMatcher::fit(
                    &self.split.train,
                    &self.split.validation,
                    TrainOptions {
                        seed: self.seed,
                        ..Default::default()
                    },
                )?) as Arc<dyn Matcher>,
                MatcherKind::Mlp => Arc::new(MlpMatcher::fit(
                    &self.split.train,
                    &self.split.validation,
                    TrainOptions {
                        seed: self.seed,
                        ..Default::default()
                    },
                )?),
                MatcherKind::Attention => Arc::new(AttentionMatcher::fit(
                    &self.split.train,
                    &self.split.validation,
                    AttentionOptions {
                        seed: self.seed,
                        ..Default::default()
                    },
                )?),
                MatcherKind::Rules => {
                    Arc::new(RuleMatcher::uniform(self.dataset.schema().len(), 0.5)?)
                }
            })
        })?;
        Ok(Arc::clone(&trained))
    }

    /// Build an [`em_data::EntityPair`] from raw attribute values against
    /// this context's schema — the boundary where a served request's JSON
    /// payload becomes a typed pair. Fails (length mismatch) map to a
    /// client error, not a panic.
    pub fn pair_from_values(
        &self,
        left: Vec<String>,
        right: Vec<String>,
    ) -> Result<em_data::EntityPair, em_data::DataError> {
        em_data::EntityPair::new(
            self.dataset.schema_arc(),
            em_data::Record::new(0, left),
            em_data::Record::new(1, right),
        )
    }

    /// Deterministic sample of test pairs to explain (stratified).
    pub fn pairs_to_explain(&self, n: usize) -> Vec<em_data::LabeledPair> {
        self.split
            .test
            .sample(n, self.seed ^ 0xe8)
            .examples()
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctx() -> EvalContext {
        EvalContext::prepare(
            Family::Beers,
            GeneratorConfig {
                entities: 60,
                pairs: 150,
                match_rate: 0.3,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn prepare_builds_consistent_splits() {
        let ctx = small_ctx();
        assert_eq!(
            ctx.split.train.len() + ctx.split.validation.len() + ctx.split.test.len(),
            150
        );
        assert!(ctx.embeddings.vocab_size() > 10);
    }

    #[test]
    fn matcher_cache_returns_same_instance() {
        let ctx = small_ctx();
        let a = ctx.matcher(MatcherKind::Rules).unwrap();
        let b = ctx.matcher(MatcherKind::Rules).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn trained_matchers_predict_probabilities() {
        let ctx = small_ctx();
        let m = ctx.matcher(MatcherKind::Logistic).unwrap();
        for ex in ctx.split.test.examples().iter().take(5) {
            let p = m.predict_proba(&ex.pair);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn pairs_to_explain_is_deterministic_and_sized() {
        let ctx = small_ctx();
        let a = ctx.pairs_to_explain(8);
        let b = ctx.pairs_to_explain(8);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pair.left().id, y.pair.left().id);
        }
    }

    #[test]
    fn matcher_kind_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            MatcherKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
