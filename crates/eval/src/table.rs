//! Result tables: the uniform output format of every experiment runner,
//! with markdown (for reports) and CSV (for plotting figures) emitters.

/// A cell value: text or number (numbers get consistent formatting).
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    Text(String),
    Num(f64),
    Int(i64),
}

impl Cell {
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    fn render(&self, precision: usize) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(v) => format!("{v:.precision$}"),
            Cell::Int(v) => format!("{v}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}

/// An experiment result table.
#[derive(Debug, Clone)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
    /// Decimal places for numeric cells.
    pub precision: usize,
}

impl Table {
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: Vec<&str>) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.into_iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            precision: 3,
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header — experiment runners
    /// construct rows statically, so this is a programming error.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(row);
    }

    /// Render as a GitHub-flavoured markdown table with a title line.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.render(self.precision);
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push('|');
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push_str("\n|");
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &rendered {
            out.push('|');
            for (s, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {s:<w$} |"));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<Vec<String>> = vec![self.columns.clone()];
        for r in &self.rows {
            rows.push(r.iter().map(|c| c.render(self.precision)).collect());
        }
        em_data::write_csv(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("T9", "demo table", vec!["name", "f1", "n"]);
        t.push_row(vec!["alpha".into(), 0.91234.into(), 42usize.into()]);
        t.push_row(vec!["beta".into(), 0.5.into(), 7usize.into()]);
        t
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = table().to_markdown();
        assert!(md.contains("### T9 — demo table"));
        assert!(md.contains("alpha"));
        assert!(md.contains("0.912"));
        assert!(md.contains("| 42"));
        assert!(md.lines().filter(|l| l.starts_with('|')).count() == 4);
    }

    #[test]
    fn csv_round_trips() {
        let csv = table().to_csv();
        let parsed = em_data::parse_csv(&csv).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0], vec!["name", "f1", "n"]);
        assert_eq!(parsed[1][1], "0.912");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("T0", "x", vec!["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn precision_is_respected() {
        let mut t = table();
        t.precision = 1;
        assert!(t.to_markdown().contains("0.9"));
        assert!(!t.to_markdown().contains("0.912"));
    }
}
