//! Explainer roster: builds the seven systems under comparison (CREW, the
//! five paper baselines, and the WYM extension) with a shared perturbation
//! budget, and provides the uniform "units" view the metrics consume
//! (clusters for CREW, decision units for WYM, mass-thresholded words for
//! the word-level baselines).

use crate::context::EvalContext;
use crew_core::{
    Crew, CrewOptions, Explainer, ExplanationUnit, MaskStrategy, PerturbOptions, WordExplanation,
};
use em_baselines::{
    Certa, CertaOptions, Landmark, LandmarkOptions, Lemon, LemonOptions, Lime, LimeOptions, Mojito,
    MojitoOptions, Wym, WymOptions,
};
use em_data::EntityPair;
use em_matchers::Matcher;
use std::sync::Arc;

/// Fraction of absolute attribution mass that defines the "effective" unit
/// set of a word-level explanation (standard practice for comparing
/// explanation sizes).
pub const UNIT_MASS_THRESHOLD: f64 = 0.8;

/// The systems under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplainerKind {
    Crew,
    Lime,
    Mojito,
    Landmark,
    Lemon,
    Certa,
    /// Extension baseline: WYM-style decision units (not among the five
    /// systems the paper's abstract lists).
    Wym,
}

impl ExplainerKind {
    pub fn all() -> [ExplainerKind; 7] {
        [
            ExplainerKind::Crew,
            ExplainerKind::Lime,
            ExplainerKind::Mojito,
            ExplainerKind::Landmark,
            ExplainerKind::Lemon,
            ExplainerKind::Certa,
            ExplainerKind::Wym,
        ]
    }

    /// The five baselines the paper's abstract lists (no CREW, no WYM).
    pub fn paper_baselines() -> [ExplainerKind; 5] {
        [
            ExplainerKind::Lime,
            ExplainerKind::Mojito,
            ExplainerKind::Landmark,
            ExplainerKind::Lemon,
            ExplainerKind::Certa,
        ]
    }

    pub fn label(self) -> &'static str {
        match self {
            ExplainerKind::Crew => "crew",
            ExplainerKind::Lime => "lime",
            ExplainerKind::Mojito => "mojito",
            ExplainerKind::Landmark => "landmark",
            ExplainerKind::Lemon => "lemon",
            ExplainerKind::Certa => "certa",
            ExplainerKind::Wym => "wym",
        }
    }
}

/// Budget configuration shared by every explainer in one experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExplainBudget {
    /// Total perturbation samples per explanation.
    pub samples: usize,
    pub seed: u64,
    pub threads: usize,
}

impl Default for ExplainBudget {
    fn default() -> Self {
        ExplainBudget {
            samples: 256,
            seed: 0xeb,
            threads: 4,
        }
    }
}

/// One explanation, in both views: the word-level attribution and the unit
/// list used by the metrics.
pub struct ExplanationOutput {
    pub kind: ExplainerKind,
    pub word_level: WordExplanation,
    pub units: Vec<ExplanationUnit>,
    /// CREW-only extras (selected K, group R², silhouette).
    pub cluster_info: Option<(usize, f64, f64)>,
    /// CREW-only: the full cluster explanation (counterfactual and
    /// robustness analyses consume the cluster structure directly).
    pub cluster_explanation: Option<crew_core::ClusterExplanation>,
    /// Wall-clock seconds spent producing the explanation. Entries served
    /// by the [`crate::store::ExplanationStore`] keep the elapsed of their
    /// first (cold) computation, so latency columns never report
    /// cache-hit time.
    pub elapsed: f64,
}

impl ExplanationOutput {
    /// Approximate resident heap bytes — the accounting unit of the
    /// byte-budgeted stores (see [`crew_core::WordExplanation::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        let units: usize = self
            .units
            .iter()
            .map(|u| u.member_indices.len() * 8 + 32)
            .sum();
        let cluster = self
            .cluster_explanation
            .as_ref()
            .map(|ce| ce.approx_bytes())
            .unwrap_or(0);
        self.word_level.approx_bytes() + units + cluster + 64
    }
}

/// Build one explainer of the requested kind.
pub fn build_explainer(
    kind: ExplainerKind,
    ctx: &EvalContext,
    budget: ExplainBudget,
) -> Result<Box<dyn Explainer>, crate::EvalError> {
    Ok(match kind {
        ExplainerKind::Crew => Box::new(build_crew(ctx, budget, CrewOptions::default())),
        ExplainerKind::Lime => Box::new(Lime::new(LimeOptions {
            samples: budget.samples,
            seed: budget.seed,
            threads: budget.threads,
            ..Default::default()
        })),
        ExplainerKind::Mojito => Box::new(Mojito::new(MojitoOptions {
            samples: budget.samples,
            seed: budget.seed,
            threads: budget.threads,
            ..Default::default()
        })),
        ExplainerKind::Landmark => Box::new(Landmark::new(LandmarkOptions {
            samples_per_side: budget.samples / 2,
            seed: budget.seed,
            threads: budget.threads,
            ..Default::default()
        })),
        ExplainerKind::Lemon => Box::new(Lemon::new(LemonOptions {
            samples_per_side: budget.samples / 2,
            seed: budget.seed,
            threads: budget.threads,
            ..Default::default()
        })),
        ExplainerKind::Certa => Box::new(Certa::from_dataset(
            &ctx.split.train,
            32,
            CertaOptions {
                seed: budget.seed,
                threads: budget.threads,
                ..Default::default()
            },
        )?),
        ExplainerKind::Wym => Box::new(Wym::new(WymOptions {
            samples: budget.samples,
            seed: budget.seed,
            threads: budget.threads,
            ..Default::default()
        })),
    })
}

/// Build the CREW explainer for a context with a custom option set (the
/// ablations tweak `knowledge`).
pub fn build_crew(ctx: &EvalContext, budget: ExplainBudget, mut options: CrewOptions) -> Crew {
    options.perturb = PerturbOptions {
        samples: budget.samples,
        strategy: MaskStrategy::AttributeStratified,
        seed: budget.seed,
        threads: budget.threads,
    };
    Crew::new(Arc::clone(&ctx.embeddings), options)
}

/// Explain one pair with one system, producing the uniform output.
pub fn explain_pair(
    kind: ExplainerKind,
    ctx: &EvalContext,
    budget: ExplainBudget,
    matcher: &dyn Matcher,
    pair: &EntityPair,
) -> Result<ExplanationOutput, crate::EvalError> {
    explain_pair_opts(kind, ctx, budget, matcher, pair, &CrewOptions::default())
}

/// [`explain_pair`] with explicit CREW options (the ablations tweak them;
/// `options` is ignored by the non-CREW kinds).
pub fn explain_pair_opts(
    kind: ExplainerKind,
    ctx: &EvalContext,
    budget: ExplainBudget,
    matcher: &dyn Matcher,
    pair: &EntityPair,
    options: &CrewOptions,
) -> Result<ExplanationOutput, crate::EvalError> {
    let start = std::time::Instant::now();
    if kind == ExplainerKind::Crew {
        let crew = build_crew(ctx, budget, options.clone());
        let ce = crew.explain_clusters(matcher, pair)?;
        return Ok(crew_output(ce, start.elapsed().as_secs_f64()));
    }
    let (word_level, units) = if kind == ExplainerKind::Wym {
        // WYM's native units are its decision units; reconstruct them so
        // the metrics see word pairs rather than flattened singletons.
        let wym = Wym::new(WymOptions {
            samples: budget.samples,
            seed: budget.seed,
            threads: budget.threads,
            ..Default::default()
        });
        let we = wym.explain(matcher, pair)?;
        let tokenized = em_data::TokenizedPair::new(pair.clone());
        let units: Vec<crew_core::ExplanationUnit> = wym
            .decision_units(&tokenized)
            .into_iter()
            .map(|u| crew_core::ExplanationUnit {
                weight: u.member_indices.iter().map(|&i| we.weights[i]).sum(),
                member_indices: u.member_indices,
            })
            .filter(|u| u.weight.abs() > f64::EPSILON)
            .collect();
        (we, units)
    } else {
        let explainer = build_explainer(kind, ctx, budget)?;
        let we = explainer.explain(matcher, pair)?;
        let units = we.units(UNIT_MASS_THRESHOLD);
        (we, units)
    };
    Ok(ExplanationOutput {
        kind,
        word_level,
        units,
        cluster_info: None,
        cluster_explanation: None,
        elapsed: start.elapsed().as_secs_f64(),
    })
}

/// Wrap a CREW cluster explanation into the uniform output with a given
/// cold-run elapsed (the store composes elapsed from the perturbation-set
/// cold time plus the clustering tail).
pub(crate) fn crew_output(ce: crew_core::ClusterExplanation, elapsed: f64) -> ExplanationOutput {
    ExplanationOutput {
        kind: ExplainerKind::Crew,
        word_level: ce.word_level.clone(),
        units: ce.units(),
        cluster_info: Some((ce.selected_k, ce.group_r2, ce.silhouette)),
        cluster_explanation: Some(ce),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MatcherKind;
    use em_synth::{Family, GeneratorConfig};

    fn ctx() -> EvalContext {
        EvalContext::prepare(
            Family::Restaurants,
            GeneratorConfig {
                entities: 60,
                pairs: 150,
                match_rate: 0.3,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn every_kind_builds_and_explains() {
        let ctx = ctx();
        let matcher = ctx.matcher(MatcherKind::Rules).unwrap();
        let pair = &ctx.pairs_to_explain(1)[0].pair;
        let budget = ExplainBudget {
            samples: 64,
            seed: 3,
            threads: 1,
        };
        for kind in ExplainerKind::all() {
            let out = explain_pair(kind, &ctx, budget, matcher.as_ref(), pair)
                .unwrap_or_else(|e| panic!("{} failed: {e}", kind.label()));
            assert_eq!(out.kind, kind);
            assert!(!out.word_level.weights.is_empty(), "{}", kind.label());
            assert!(out.elapsed >= 0.0);
            if kind == ExplainerKind::Crew {
                assert!(out.cluster_info.is_some());
                assert!(!out.units.is_empty());
            }
        }
    }

    #[test]
    fn crew_units_are_fewer_than_lime_units_on_average() {
        let ctx = ctx();
        let matcher = ctx.matcher(MatcherKind::Rules).unwrap();
        let budget = ExplainBudget {
            samples: 128,
            seed: 5,
            threads: 1,
        };
        let mut crew_units = 0usize;
        let mut lime_units = 0usize;
        for ex in ctx.pairs_to_explain(5) {
            let c = explain_pair(
                ExplainerKind::Crew,
                &ctx,
                budget,
                matcher.as_ref(),
                &ex.pair,
            )
            .unwrap();
            let l = explain_pair(
                ExplainerKind::Lime,
                &ctx,
                budget,
                matcher.as_ref(),
                &ex.pair,
            )
            .unwrap();
            crew_units += c.units.len();
            lime_units += l.units.len();
        }
        assert!(
            crew_units < lime_units,
            "CREW should compress: crew={crew_units} lime={lime_units}"
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ExplainerKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 7);
        assert_eq!(ExplainerKind::paper_baselines().len(), 5);
    }
}
