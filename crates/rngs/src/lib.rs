//! # em-rngs
//!
//! In-tree seedable pseudo-random number generation for the CREW
//! reproduction. The workspace builds with zero external crates, so this
//! crate supplies the full randomness substrate the codebase needs:
//!
//! - [`rngs::StdRng`] — xoshiro256++ seeded from a `u64` via SplitMix64,
//!   the workspace-wide deterministic generator;
//! - [`Rng`] — `gen_range` / `gen_bool` over integer and float ranges;
//! - [`SeedableRng`] — `seed_from_u64`;
//! - [`seq::SliceRandom`] — `shuffle` / `choose` / `choose_multiple`.
//!
//! The module layout deliberately mirrors the `rand 0.8` paths the code
//! was written against (`rngs::StdRng`, `seq::SliceRandom`), so swapping
//! a call site is a one-token change of the crate name.
//!
//! ## Stream-stability policy
//!
//! The byte streams produced by [`rngs::StdRng`] for a given seed are a
//! **compatibility surface**: persisted test expectations, regression
//! seeds and the paper-reproduction experiment tables all depend on them.
//! Any change to the seeding path, the generator recurrence, or the
//! range-mapping in [`Rng::gen_range`]/[`seq::SliceRandom::shuffle`] is a
//! breaking change and must bump the documented stream version below.
//!
//! **Stream version 1**: SplitMix64 (Steele et al.) expands the `u64`
//! seed into the 256-bit xoshiro256++ state (Blackman & Vigna); integer
//! ranges use unbiased rejection sampling from the high bits; floats use
//! the 53-bit mantissa mapping `(x >> 11) * 2^-53`.
//!
//! ```
//! use em_rngs::rngs::StdRng;
//! use em_rngs::{Rng, SeedableRng};
//! use em_rngs::seq::SliceRandom;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let d = rng.gen_range(0..6) + rng.gen_range(1..=6);
//! assert!((1..=11).contains(&d));
//! let mut v = vec![1, 2, 3, 4];
//! v.shuffle(&mut rng);
//! assert_eq!(v.len(), 4);
//! ```

pub mod rngs;
pub mod seq;

/// Low-level source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53-bit mantissa mapping: exactly representable, never returns 1.0.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on an empty range, matching `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw in `[0, span)` by rejection from the top of the
/// `u64` space. `span == 0` means the full 2^64 range.
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Largest multiple of `span` that fits, minus one: accepting only
    // values at or below it removes modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                // span may be 2^64 (full u64/i64 range): i128 holds it, and
                // `as u64` wraps it to the 0 sentinel uniform_u64 expects.
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end && self.start.is_finite() && self.end.is_finite(),
                    "cannot sample empty or non-finite range {:?}",
                    self
                );
                let v = self.start + rng.next_f64() as $t * (self.end - self.start);
                // Rounding can land exactly on the excluded upper bound.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// One SplitMix64 step (Steele, Lea & Flood 2014): advances `state` and
/// returns the mixed output. Public so downstream code (the property-test
/// harness, seed derivation in tests) can derive independent sub-seeds.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // First outputs for seed 0 from the reference C implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
        assert_eq!(splitmix64(&mut s), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn xoshiro_stream_is_version_1() {
        // Known-answer test pinning stream version 1 (see crate docs):
        // changing seeding or the recurrence must fail here.
        let mut rng = StdRng::seed_from_u64(12345);
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0x8D94_8A82_DEF8_A568,
                0x3477_F953_7967_02A0,
                0x15CA_A2FC_E6DB_8D69,
                0x2CEF_8853_C20C_6DD0,
                0x43FF_3FFF_9C03_9CD9,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(100);
        let first: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        let mut a2 = StdRng::seed_from_u64(99);
        assert_ne!(first, (0..4).map(|_| a2.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let a = rng.gen_range(0..10);
            assert!((0..10).contains(&a));
            let b = rng.gen_range(1..=4);
            assert!((1..=4).contains(&b));
            let c = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&c));
            let d: u8 = rng.gen_range(0..26u8);
            assert!(d < 26);
            let e = rng.gen_range(f64::EPSILON..1.0);
            assert!(e >= f64::EPSILON && e < 1.0);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "six-sided die missed a face: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
