//! Concrete generators. [`StdRng`] is the workspace-wide deterministic
//! generator: xoshiro256++ (Blackman & Vigna 2019) with its 256-bit state
//! expanded from a `u64` seed by SplitMix64, as the xoshiro authors
//! recommend. Fast (one rotate-add per output), equidistributed in every
//! 64-bit subsequence, and with a 2^256 − 1 period — far beyond anything
//! the perturbation sampler can exhaust.

use crate::{splitmix64, RngCore, SeedableRng};

/// The standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // SplitMix64 never yields four zero outputs in a row, so the
        // all-zero fixed point of xoshiro is unreachable; guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl StdRng {
    /// Derive an independent child generator; used to give each worker or
    /// property-test case its own stream without correlated prefixes.
    pub fn fork(&mut self) -> StdRng {
        let mut seed = self.next_u64();
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut seed);
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_streams_are_uncorrelated_with_parent() {
        let mut parent = StdRng::seed_from_u64(42);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn clone_replays_identically() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
