//! Sequence sampling: shuffles and random selection over slices, mirroring
//! `rand::seq::SliceRandom`.

use crate::{uniform_u64, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// One uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in selection order (all of them, in
    /// shuffled order, when `amount >= len`).
    fn choose_multiple<R: RngCore + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&T> {
        index::sample(rng, self.len(), amount)
            .into_iter()
            .map(|i| &self[i])
            .collect()
    }
}

/// Index-level sampling without replacement.
pub mod index {
    use crate::{uniform_u64, RngCore};

    /// `amount` distinct indices from `0..length`, uniformly without
    /// replacement, via a partial Fisher–Yates over the index vector.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> Vec<usize> {
        let amount = amount.min(length);
        let mut indices: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = i + uniform_u64(rng, (length - i) as u64) as usize;
            indices.swap(i, j);
        }
        indices.truncate(amount);
        indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..20).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn shuffle_visits_all_positions() {
        // Each element must appear at position 0 at least once over many
        // seeds — a smoke test against off-by-one bias.
        let mut seen = [false; 5];
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v = [0usize, 1, 2, 3, 4];
            v.shuffle(&mut rng);
            seen[v[0]] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn choose_and_choose_multiple() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [10, 20, 30, 40];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let picked = items.choose_multiple(&mut rng, 3);
        assert_eq!(picked.len(), 3);
        let mut vals: Vec<i32> = picked.into_iter().copied().collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 3, "choose_multiple returned duplicates");
        assert_eq!(items.choose_multiple(&mut rng, 9).len(), 4);
    }
}
