//! Schemas and records for entity descriptions.
//!
//! EM datasets have the characteristic "paired" shape: every example is a
//! pair of records over the same (aligned) schema. CREW exploits this
//! arrangement of words into attributes as one of its three knowledge
//! sources, so attributes are first-class here.

use std::fmt;
use std::sync::Arc;

/// An ordered list of attribute names shared by both sides of a pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<String>,
}

impl Schema {
    /// Create a schema from attribute names.
    ///
    /// # Panics
    /// Panics if names are empty or duplicated — schemas are built by
    /// generators or dataset loaders, so this is a programming error.
    pub fn new<S: Into<String>>(attributes: Vec<S>) -> Self {
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        assert!(
            !attributes.is_empty(),
            "schema must have at least one attribute"
        );
        for (i, a) in attributes.iter().enumerate() {
            assert!(
                !attributes[..i].contains(a),
                "duplicate attribute name: {a}"
            );
        }
        Schema { attributes }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Attribute name by index.
    pub fn name(&self, idx: usize) -> &str {
        &self.attributes[idx]
    }

    /// Index of an attribute name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == name)
    }

    /// Iterate attribute names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|s| s.as_str())
    }
}

/// A single entity description: one string value per schema attribute
/// (empty string models NULL).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Source-local identifier (stable across splits; used in reports).
    pub id: u64,
    values: Vec<String>,
}

impl Record {
    /// Create a record; `values` must align with the schema it will be used
    /// with (checked by [`EntityPair::new`]).
    pub fn new(id: u64, values: Vec<String>) -> Self {
        Record { id, values }
    }

    /// Value of attribute `idx`.
    pub fn value(&self, idx: usize) -> &str {
        &self.values[idx]
    }

    /// All values in schema order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Replace the value of one attribute (used by perturbation engines).
    pub fn set_value(&mut self, idx: usize, value: String) {
        self.values[idx] = value;
    }

    /// Mutable access to one attribute value, letting perturbation
    /// engines rewrite cells in place without reallocating the string.
    pub fn value_mut(&mut self, idx: usize) -> &mut String {
        &mut self.values[idx]
    }

    /// Number of attribute values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Concatenate all values into one description string, space-separated,
    /// skipping empties.
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        for v in &self.values {
            if v.is_empty() {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(v);
        }
        out
    }
}

/// Which record of the pair a word belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    Left,
    Right,
}

impl Side {
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Short display tag used in explanation rendering ("L"/"R").
    pub fn tag(self) -> &'static str {
        match self {
            Side::Left => "L",
            Side::Right => "R",
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A candidate pair of entity descriptions over a shared schema.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityPair {
    schema: Arc<Schema>,
    left: Record,
    right: Record,
}

impl EntityPair {
    /// Build a pair, validating that both records align with the schema.
    pub fn new(schema: Arc<Schema>, left: Record, right: Record) -> Result<Self, crate::DataError> {
        if left.len() != schema.len() {
            return Err(crate::DataError::SchemaMismatch {
                record_id: left.id,
                expected: schema.len(),
                got: left.len(),
            });
        }
        if right.len() != schema.len() {
            return Err(crate::DataError::SchemaMismatch {
                record_id: right.id,
                expected: schema.len(),
                got: right.len(),
            });
        }
        Ok(EntityPair {
            schema,
            left,
            right,
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    pub fn left(&self) -> &Record {
        &self.left
    }

    pub fn right(&self) -> &Record {
        &self.right
    }

    /// Record of a given side.
    pub fn record(&self, side: Side) -> &Record {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// Mutable record of a given side (perturbation engine use).
    pub fn record_mut(&mut self, side: Side) -> &mut Record {
        match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        }
    }

    /// Replace a whole record.
    pub fn with_record(&self, side: Side, record: Record) -> Result<Self, crate::DataError> {
        let (l, r) = match side {
            Side::Left => (record, self.right.clone()),
            Side::Right => (self.left.clone(), record),
        };
        EntityPair::new(Arc::clone(&self.schema), l, r)
    }

    /// Total token count across both records.
    pub fn token_count(&self) -> usize {
        em_text::token_count(&self.left.full_text()) + em_text::token_count(&self.right.full_text())
    }
}

impl fmt::Display for EntityPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, name) in self.schema.names().enumerate() {
            writeln!(
                f,
                "{:>12} | {:<40} | {}",
                name,
                self.left.value(i),
                self.right.value(i)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec!["title", "brand", "price"]))
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(1), "brand");
        assert_eq!(s.index_of("price"), Some(2));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(
            s.names().collect::<Vec<_>>(),
            vec!["title", "brand", "price"]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn schema_rejects_duplicates() {
        Schema::new(vec!["a", "a"]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn schema_rejects_empty() {
        Schema::new(Vec::<String>::new());
    }

    #[test]
    fn record_full_text_skips_empties() {
        let r = Record::new(1, vec!["Sony TV".into(), "".into(), "499".into()]);
        assert_eq!(r.full_text(), "Sony TV 499");
    }

    #[test]
    fn pair_validates_schema_alignment() {
        let s = schema();
        let ok = Record::new(1, vec!["a".into(), "b".into(), "c".into()]);
        let bad = Record::new(2, vec!["a".into()]);
        assert!(EntityPair::new(Arc::clone(&s), ok.clone(), ok.clone()).is_ok());
        let err = EntityPair::new(s, ok, bad).unwrap_err();
        assert!(matches!(
            err,
            crate::DataError::SchemaMismatch { record_id: 2, .. }
        ));
    }

    #[test]
    fn side_other_and_tags() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
        assert_eq!(Side::Left.tag(), "L");
        assert_eq!(format!("{}", Side::Right), "R");
    }

    #[test]
    fn pair_record_access_and_mutation() {
        let s = schema();
        let l = Record::new(1, vec!["x".into(), "y".into(), "z".into()]);
        let r = Record::new(2, vec!["p".into(), "q".into(), "r".into()]);
        let mut pair = EntityPair::new(s, l, r).unwrap();
        assert_eq!(pair.record(Side::Left).value(0), "x");
        assert_eq!(pair.record(Side::Right).value(2), "r");
        pair.record_mut(Side::Left).set_value(0, "new".into());
        assert_eq!(pair.left().value(0), "new");
    }

    #[test]
    fn with_record_replaces_one_side() {
        let s = schema();
        let l = Record::new(1, vec!["a".into(), "b".into(), "c".into()]);
        let r = Record::new(2, vec!["d".into(), "e".into(), "f".into()]);
        let pair = EntityPair::new(Arc::clone(&s), l, r).unwrap();
        let repl = Record::new(3, vec!["x".into(), "y".into(), "z".into()]);
        let p2 = pair.with_record(Side::Right, repl).unwrap();
        assert_eq!(p2.right().id, 3);
        assert_eq!(p2.left().id, 1);
    }

    #[test]
    fn token_count_sums_both_sides() {
        let s = schema();
        let l = Record::new(1, vec!["one two".into(), "three".into(), "".into()]);
        let r = Record::new(2, vec!["four".into(), "".into(), "5".into()]);
        let pair = EntityPair::new(s, l, r).unwrap();
        assert_eq!(pair.token_count(), 5);
    }
}
