//! Labelled datasets of candidate pairs, with deterministic splits and the
//! summary statistics reported in the evaluation's dataset table.

use crate::schema::{EntityPair, Schema};
use em_rngs::rngs::StdRng;
use em_rngs::seq::SliceRandom;
use em_rngs::SeedableRng;
use std::sync::Arc;

/// Ground-truth label of a candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    Match,
    NonMatch,
}

impl Label {
    pub fn from_bool(is_match: bool) -> Self {
        if is_match {
            Label::Match
        } else {
            Label::NonMatch
        }
    }

    pub fn as_f64(self) -> f64 {
        match self {
            Label::Match => 1.0,
            Label::NonMatch => 0.0,
        }
    }

    pub fn is_match(self) -> bool {
        matches!(self, Label::Match)
    }
}

/// A labelled example.
#[derive(Debug, Clone)]
pub struct LabeledPair {
    pub pair: EntityPair,
    pub label: Label,
}

/// A named collection of labelled candidate pairs over one schema.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    schema: Arc<Schema>,
    examples: Vec<LabeledPair>,
}

/// Train/validation/test split of a dataset (by reference into clones).
#[derive(Debug, Clone)]
pub struct Split {
    pub train: Dataset,
    pub validation: Dataset,
    pub test: Dataset,
}

/// Summary statistics (dataset table row).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub name: String,
    pub pairs: usize,
    pub matches: usize,
    pub match_rate: f64,
    pub attributes: usize,
    pub avg_tokens_per_pair: f64,
}

impl Dataset {
    /// Create a dataset; every pair must share the dataset schema.
    pub fn new(
        name: impl Into<String>,
        schema: Arc<Schema>,
        examples: Vec<LabeledPair>,
    ) -> Result<Self, crate::DataError> {
        for ex in &examples {
            if ex.pair.schema() != schema.as_ref() {
                return Err(crate::DataError::ForeignSchema {
                    record_id: ex.pair.left().id,
                });
            }
        }
        Ok(Dataset {
            name: name.into(),
            schema,
            examples,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    pub fn examples(&self) -> &[LabeledPair] {
        &self.examples
    }

    pub fn len(&self) -> usize {
        self.examples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Number of positive (match) examples.
    pub fn match_count(&self) -> usize {
        self.examples.iter().filter(|e| e.label.is_match()).count()
    }

    /// Summary statistics for reporting.
    pub fn stats(&self) -> DatasetStats {
        let matches = self.match_count();
        let token_total: usize = self.examples.iter().map(|e| e.pair.token_count()).sum();
        DatasetStats {
            name: self.name.clone(),
            pairs: self.len(),
            matches,
            match_rate: if self.is_empty() {
                0.0
            } else {
                matches as f64 / self.len() as f64
            },
            attributes: self.schema.len(),
            avg_tokens_per_pair: if self.is_empty() {
                0.0
            } else {
                token_total as f64 / self.len() as f64
            },
        }
    }

    /// Deterministic stratified train/validation/test split.
    ///
    /// Fractions must be positive and sum to at most 1 (the remainder goes
    /// to test). Stratification keeps the match rate of each part close to
    /// the full dataset's.
    pub fn split(
        &self,
        train_frac: f64,
        val_frac: f64,
        seed: u64,
    ) -> Result<Split, crate::DataError> {
        if !(0.0..1.0).contains(&train_frac)
            || !(0.0..1.0).contains(&val_frac)
            || train_frac + val_frac >= 1.0
            || train_frac <= 0.0
        {
            return Err(crate::DataError::InvalidSplit {
                train: train_frac,
                validation: val_frac,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos: Vec<usize> = Vec::new();
        let mut neg: Vec<usize> = Vec::new();
        for (i, ex) in self.examples.iter().enumerate() {
            if ex.label.is_match() {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);

        let mut train_idx = Vec::new();
        let mut val_idx = Vec::new();
        let mut test_idx = Vec::new();
        for stratum in [pos, neg] {
            let n = stratum.len();
            let n_train = (n as f64 * train_frac).round() as usize;
            let n_val = (n as f64 * val_frac).round() as usize;
            for (k, idx) in stratum.into_iter().enumerate() {
                if k < n_train {
                    train_idx.push(idx);
                } else if k < n_train + n_val {
                    val_idx.push(idx);
                } else {
                    test_idx.push(idx);
                }
            }
        }

        let take = |idx: &[usize], suffix: &str| Dataset {
            name: format!("{}-{}", self.name, suffix),
            schema: Arc::clone(&self.schema),
            examples: idx.iter().map(|&i| self.examples[i].clone()).collect(),
        };
        Ok(Split {
            train: take(&train_idx, "train"),
            validation: take(&val_idx, "val"),
            test: take(&test_idx, "test"),
        })
    }

    /// Deterministically sample up to `n` examples (stratified), e.g. the
    /// "pairs to explain" subset used in the headline experiments.
    pub fn sample(&self, n: usize, seed: u64) -> Dataset {
        if n >= self.len() {
            return self.clone();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos: Vec<usize> = Vec::new();
        let mut neg: Vec<usize> = Vec::new();
        for (i, ex) in self.examples.iter().enumerate() {
            if ex.label.is_match() {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        let n_pos = ((n as f64) * (pos.len() as f64 / self.len() as f64)).round() as usize;
        let n_pos = n_pos
            .min(pos.len())
            .max(if pos.is_empty() { 0 } else { 1 })
            .min(n);
        let n_neg = n - n_pos;
        let mut chosen: Vec<usize> = pos.into_iter().take(n_pos).collect();
        chosen.extend(neg.into_iter().take(n_neg));
        chosen.sort_unstable();
        Dataset {
            name: format!("{}-sample{}", self.name, n),
            schema: Arc::clone(&self.schema),
            examples: chosen
                .into_iter()
                .map(|i| self.examples[i].clone())
                .collect(),
        }
    }

    /// Filter to only matches or only non-matches.
    pub fn filter_label(&self, label: Label) -> Dataset {
        Dataset {
            name: self.name.clone(),
            schema: Arc::clone(&self.schema),
            examples: self
                .examples
                .iter()
                .filter(|e| e.label == label)
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Record;

    fn make_dataset(n_pos: usize, n_neg: usize) -> Dataset {
        let schema = Arc::new(Schema::new(vec!["name"]));
        let mut examples = Vec::new();
        for i in 0..(n_pos + n_neg) {
            let l = Record::new(i as u64 * 2, vec![format!("item {i} alpha beta")]);
            let r = Record::new(i as u64 * 2 + 1, vec![format!("item {i} alpha")]);
            let pair = EntityPair::new(Arc::clone(&schema), l, r).unwrap();
            examples.push(LabeledPair {
                pair,
                label: Label::from_bool(i < n_pos),
            });
        }
        Dataset::new("toy", schema, examples).unwrap()
    }

    #[test]
    fn stats_report_counts_and_rates() {
        let d = make_dataset(3, 7);
        let s = d.stats();
        assert_eq!(s.pairs, 10);
        assert_eq!(s.matches, 3);
        assert!((s.match_rate - 0.3).abs() < 1e-12);
        assert_eq!(s.attributes, 1);
        assert!(s.avg_tokens_per_pair > 0.0);
    }

    #[test]
    fn split_partitions_every_example() {
        let d = make_dataset(20, 80);
        let split = d.split(0.7, 0.15, 42).unwrap();
        assert_eq!(
            split.train.len() + split.validation.len() + split.test.len(),
            100
        );
        assert!(split.train.len() >= 65 && split.train.len() <= 75);
    }

    #[test]
    fn split_is_stratified() {
        let d = make_dataset(20, 80);
        let split = d.split(0.6, 0.2, 1).unwrap();
        let rate = |ds: &Dataset| ds.match_count() as f64 / ds.len() as f64;
        assert!((rate(&split.train) - 0.2).abs() < 0.05);
        assert!((rate(&split.test) - 0.2).abs() < 0.1);
    }

    #[test]
    fn split_is_deterministic() {
        let d = make_dataset(10, 30);
        let a = d.split(0.5, 0.2, 7).unwrap();
        let b = d.split(0.5, 0.2, 7).unwrap();
        let ids = |ds: &Dataset| {
            ds.examples()
                .iter()
                .map(|e| e.pair.left().id)
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&a.train), ids(&b.train));
        assert_eq!(ids(&a.test), ids(&b.test));
    }

    #[test]
    fn split_rejects_bad_fractions() {
        let d = make_dataset(5, 5);
        assert!(d.split(0.8, 0.3, 0).is_err());
        assert!(d.split(0.0, 0.1, 0).is_err());
        assert!(d.split(-0.1, 0.1, 0).is_err());
    }

    #[test]
    fn sample_respects_size_and_stratification() {
        let d = make_dataset(25, 75);
        let s = d.sample(20, 3);
        assert_eq!(s.len(), 20);
        let matches = s.match_count();
        assert!((3..=8).contains(&matches), "matches = {matches}");
        // Sampling more than available returns everything.
        assert_eq!(d.sample(1000, 3).len(), 100);
    }

    #[test]
    fn filter_label_selects_only_that_class() {
        let d = make_dataset(4, 6);
        assert_eq!(d.filter_label(Label::Match).len(), 4);
        assert_eq!(d.filter_label(Label::NonMatch).len(), 6);
        assert!(d
            .filter_label(Label::Match)
            .examples()
            .iter()
            .all(|e| e.label.is_match()));
    }

    #[test]
    fn dataset_rejects_foreign_schema_pairs() {
        let schema_a = Arc::new(Schema::new(vec!["name"]));
        let schema_b = Arc::new(Schema::new(vec!["title"]));
        let l = Record::new(0, vec!["x".into()]);
        let r = Record::new(1, vec!["y".into()]);
        let pair = EntityPair::new(schema_b, l, r).unwrap();
        let res = Dataset::new(
            "bad",
            schema_a,
            vec![LabeledPair {
                pair,
                label: Label::Match,
            }],
        );
        assert!(matches!(res, Err(crate::DataError::ForeignSchema { .. })));
    }

    #[test]
    fn label_conversions() {
        assert_eq!(Label::from_bool(true), Label::Match);
        assert_eq!(Label::Match.as_f64(), 1.0);
        assert_eq!(Label::NonMatch.as_f64(), 0.0);
        assert!(!Label::NonMatch.is_match());
    }
}
