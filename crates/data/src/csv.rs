//! Minimal RFC-4180-style CSV reading/writing so real ER-Magellan exports
//! (`tableA.csv`, `tableB.csv`, `train.csv` with `ltable_`/`rtable_`
//! prefixed columns) can be dropped into the pipeline.

use crate::dataset::{Dataset, Label, LabeledPair};
use crate::schema::{EntityPair, Record, Schema};
use std::sync::Arc;

/// Parse CSV text into rows of fields. Supports quoted fields, embedded
/// commas/newlines inside quotes, and `""` escapes.
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, crate::DataError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(crate::DataError::CsvParse {
                            line: rows.len() + 1,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // swallow; \r\n handled by the \n branch
                }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(crate::DataError::CsvParse {
            line: rows.len() + 1,
            message: "unterminated quoted field".into(),
        });
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Escape and serialise rows into CSV text (always quotes fields containing
/// commas, quotes or newlines).
pub fn write_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        for (i, f) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if f.contains([',', '"', '\n', '\r']) {
                out.push('"');
                out.push_str(&f.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(f);
            }
        }
        out.push('\n');
    }
    out
}

/// Load a labelled pair dataset from a single "joined" CSV with the
/// DeepMatcher convention: a `label` column (0/1), `ltable_<attr>` and
/// `rtable_<attr>` columns. Extra columns (like `id`) are ignored.
pub fn dataset_from_joined_csv(name: &str, text: &str) -> Result<Dataset, crate::DataError> {
    let rows = parse_csv(text)?;
    if rows.is_empty() {
        return Err(crate::DataError::CsvParse {
            line: 0,
            message: "empty CSV".into(),
        });
    }
    let header = &rows[0];
    let label_col = header
        .iter()
        .position(|h| h.eq_ignore_ascii_case("label"))
        .ok_or_else(|| crate::DataError::CsvParse {
            line: 1,
            message: "missing 'label' column".into(),
        })?;

    // Collect attribute names present on BOTH sides, preserving order of the
    // left columns.
    let mut attrs: Vec<String> = Vec::new();
    let mut lcols: Vec<usize> = Vec::new();
    let mut rcols: Vec<usize> = Vec::new();
    for (i, h) in header.iter().enumerate() {
        if let Some(attr) = h.strip_prefix("ltable_") {
            if let Some(j) = header.iter().position(|h2| h2 == &format!("rtable_{attr}")) {
                attrs.push(attr.to_string());
                lcols.push(i);
                rcols.push(j);
            }
        }
    }
    if attrs.is_empty() {
        return Err(crate::DataError::CsvParse {
            line: 1,
            message: "no aligned ltable_/rtable_ columns found".into(),
        });
    }
    let schema = Arc::new(Schema::new(attrs));

    let mut examples = Vec::with_capacity(rows.len() - 1);
    for (line_no, row) in rows.iter().enumerate().skip(1) {
        if row.len() != header.len() {
            return Err(crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("expected {} fields, got {}", header.len(), row.len()),
            });
        }
        let label_raw = row[label_col].trim();
        let label = match label_raw {
            "1" => Label::Match,
            "0" => Label::NonMatch,
            other => {
                return Err(crate::DataError::CsvParse {
                    line: line_no + 1,
                    message: format!("label must be 0 or 1, got {other:?}"),
                })
            }
        };
        let lvals: Vec<String> = lcols.iter().map(|&c| row[c].clone()).collect();
        let rvals: Vec<String> = rcols.iter().map(|&c| row[c].clone()).collect();
        let l = Record::new(line_no as u64 * 2, lvals);
        let r = Record::new(line_no as u64 * 2 + 1, rvals);
        let pair = EntityPair::new(Arc::clone(&schema), l, r)?;
        examples.push(LabeledPair { pair, label });
    }
    Dataset::new(name, schema, examples)
}

/// Serialise a dataset back into joined-CSV form (round-trip of
/// [`dataset_from_joined_csv`]).
pub fn dataset_to_joined_csv(dataset: &Dataset) -> String {
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(dataset.len() + 1);
    let mut header = vec!["label".to_string()];
    for a in dataset.schema().names() {
        header.push(format!("ltable_{a}"));
    }
    for a in dataset.schema().names() {
        header.push(format!("rtable_{a}"));
    }
    rows.push(header);
    for ex in dataset.examples() {
        let mut row = vec![if ex.label.is_match() { "1" } else { "0" }.to_string()];
        row.extend(ex.pair.left().values().iter().cloned());
        row.extend(ex.pair.right().values().iter().cloned());
        rows.push(row);
    }
    write_csv(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_rows() {
        let rows = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parse_quoted_fields_with_commas_and_newlines() {
        let rows = parse_csv("name,desc\n\"TV, 55\",\"line1\nline2\"\n").unwrap();
        assert_eq!(rows[1][0], "TV, 55");
        assert_eq!(rows[1][1], "line1\nline2");
    }

    #[test]
    fn parse_escaped_quotes() {
        let rows = parse_csv("a\n\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rows[1][0], "he said \"hi\"");
    }

    #[test]
    fn parse_handles_missing_trailing_newline_and_crlf() {
        let rows = parse_csv("a,b\r\n1,2").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn parse_rejects_unterminated_quote() {
        assert!(matches!(
            parse_csv("a\n\"oops"),
            Err(crate::DataError::CsvParse { .. })
        ));
    }

    #[test]
    fn parse_rejects_stray_quote() {
        assert!(parse_csv("ab\"c\n").is_err());
    }

    #[test]
    fn parse_empty_input_is_empty() {
        assert!(parse_csv("").unwrap().is_empty());
    }

    #[test]
    fn write_then_parse_round_trips() {
        let rows = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with\"quote".to_string(), "multi\nline".to_string()],
        ];
        let text = write_csv(&rows);
        assert_eq!(parse_csv(&text).unwrap(), rows);
    }

    const JOINED: &str = "\
id,label,ltable_title,ltable_brand,rtable_title,rtable_brand
0,1,sony tv,sony,sony television,sony
1,0,lg monitor,lg,dell laptop,dell
";

    #[test]
    fn joined_csv_loads_dataset() {
        let d = dataset_from_joined_csv("demo", JOINED).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(
            d.schema().names().collect::<Vec<_>>(),
            vec!["title", "brand"]
        );
        assert_eq!(d.match_count(), 1);
        assert_eq!(d.examples()[0].pair.left().value(0), "sony tv");
        assert_eq!(d.examples()[1].pair.right().value(1), "dell");
    }

    #[test]
    fn joined_csv_requires_label_and_aligned_columns() {
        assert!(dataset_from_joined_csv("x", "a,b\n1,2\n").is_err());
        assert!(dataset_from_joined_csv("x", "label,ltable_a\n1,v\n").is_err());
    }

    #[test]
    fn joined_csv_rejects_bad_labels_and_ragged_rows() {
        let bad_label = "label,ltable_a,rtable_a\n2,x,y\n";
        assert!(dataset_from_joined_csv("x", bad_label).is_err());
        let ragged = "label,ltable_a,rtable_a\n1,x\n";
        assert!(dataset_from_joined_csv("x", ragged).is_err());
    }

    #[test]
    fn dataset_round_trips_through_joined_csv() {
        let d = dataset_from_joined_csv("demo", JOINED).unwrap();
        let text = dataset_to_joined_csv(&d);
        let d2 = dataset_from_joined_csv("demo2", &text).unwrap();
        assert_eq!(d2.len(), d.len());
        assert_eq!(d2.match_count(), d.match_count());
        assert_eq!(
            d2.examples()[0].pair.left().value(0),
            d.examples()[0].pair.left().value(0)
        );
    }
}

/// Load a dataset from the ER-Magellan distribution format: two record
/// tables (each with an `id` column plus attribute columns) and a pair
/// file with `ltable_id,rtable_id,label` rows referencing them.
///
/// The schema is the ordered intersection of the two tables' non-id
/// columns (they are identical in the benchmark); extra columns on either
/// side are ignored.
pub fn dataset_from_magellan(
    name: &str,
    table_a: &str,
    table_b: &str,
    pairs: &str,
) -> Result<Dataset, crate::DataError> {
    let (a_schema, a_records) = parse_record_table(table_a, 1)?;
    let (b_schema, b_records) = parse_record_table(table_b, 2)?;
    // Ordered intersection of attribute names.
    let attrs: Vec<String> = a_schema
        .iter()
        .filter(|a| b_schema.contains(a))
        .cloned()
        .collect();
    if attrs.is_empty() {
        return Err(crate::DataError::CsvParse {
            line: 1,
            message: "tables share no attribute columns".into(),
        });
    }
    let project = |schema: &[String], values: &[String]| -> Vec<String> {
        attrs
            .iter()
            .map(|a| {
                let idx = schema
                    .iter()
                    .position(|s| s == a)
                    .expect("attr from intersection");
                values[idx].clone()
            })
            .collect()
    };
    let schema = Arc::new(Schema::new(attrs.clone()));

    let rows = parse_csv(pairs)?;
    if rows.is_empty() {
        return Err(crate::DataError::CsvParse {
            line: 0,
            message: "empty pair file".into(),
        });
    }
    let header = &rows[0];
    let col = |n: &str| {
        header
            .iter()
            .position(|h| h.eq_ignore_ascii_case(n))
            .ok_or_else(|| crate::DataError::CsvParse {
                line: 1,
                message: format!("missing '{n}' column"),
            })
    };
    let (lc, rc, label_c) = (col("ltable_id")?, col("rtable_id")?, col("label")?);

    let mut examples = Vec::with_capacity(rows.len() - 1);
    for (line_no, row) in rows.iter().enumerate().skip(1) {
        if row.len() != header.len() {
            return Err(crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("expected {} fields, got {}", header.len(), row.len()),
            });
        }
        let lid: u64 = row[lc]
            .trim()
            .parse()
            .map_err(|_| crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("bad ltable_id {:?}", row[lc]),
            })?;
        let rid: u64 = row[rc]
            .trim()
            .parse()
            .map_err(|_| crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("bad rtable_id {:?}", row[rc]),
            })?;
        let label = match row[label_c].trim() {
            "1" => Label::Match,
            "0" => Label::NonMatch,
            other => {
                return Err(crate::DataError::CsvParse {
                    line: line_no + 1,
                    message: format!("label must be 0 or 1, got {other:?}"),
                })
            }
        };
        let lvals = a_records
            .get(&lid)
            .ok_or_else(|| crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("ltable_id {lid} not in table A"),
            })?;
        let rvals = b_records
            .get(&rid)
            .ok_or_else(|| crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("rtable_id {rid} not in table B"),
            })?;
        let pair = EntityPair::new(
            Arc::clone(&schema),
            Record::new(lid, project(&a_schema, lvals)),
            Record::new(rid, project(&b_schema, rvals)),
        )?;
        examples.push(LabeledPair { pair, label });
    }
    Dataset::new(name, schema, examples)
}

/// A record table loaded from an ER-Magellan `tableA.csv` / `tableB.csv`
/// export: the attribute names plus the records **in file order** (the
/// streaming pipeline relies on that order for deterministic candidate
/// enumeration, so this deliberately does not round-trip through a map).
#[derive(Debug, Clone)]
pub struct RecordTable {
    pub attributes: Vec<String>,
    pub records: Vec<Record>,
}

/// Load one record table CSV (an `id` column plus attribute columns) as
/// a [`RecordTable`]. This is the collection-level entry point the
/// streaming pipeline consumes; [`dataset_from_magellan`] remains the
/// loader for pre-labelled pair files.
pub fn record_table_from_csv(text: &str) -> Result<RecordTable, crate::DataError> {
    let rows = parse_csv(text)?;
    if rows.is_empty() {
        return Err(crate::DataError::CsvParse {
            line: 0,
            message: "empty record table".into(),
        });
    }
    let header = &rows[0];
    let id_col = header
        .iter()
        .position(|h| h.eq_ignore_ascii_case("id"))
        .ok_or_else(|| crate::DataError::CsvParse {
            line: 1,
            message: "record table missing 'id' column".into(),
        })?;
    let attributes: Vec<String> = header
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != id_col)
        .map(|(_, h)| h.clone())
        .collect();
    let mut seen = std::collections::HashSet::with_capacity(rows.len() - 1);
    let mut records = Vec::with_capacity(rows.len() - 1);
    for (line_no, row) in rows.iter().enumerate().skip(1) {
        if row.len() != header.len() {
            return Err(crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("expected {} fields, got {}", header.len(), row.len()),
            });
        }
        let id: u64 = row[id_col]
            .trim()
            .parse()
            .map_err(|_| crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("bad id {:?}", row[id_col]),
            })?;
        if !seen.insert(id) {
            return Err(crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("duplicate record id {id}"),
            });
        }
        let values: Vec<String> = row
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != id_col)
            .map(|(_, v)| v.clone())
            .collect();
        records.push(Record::new(id, values));
    }
    Ok(RecordTable {
        attributes,
        records,
    })
}

/// Parse a record table CSV: returns `(attribute names, id → values)`.
fn parse_record_table(
    text: &str,
    which: usize,
) -> Result<(Vec<String>, std::collections::HashMap<u64, Vec<String>>), crate::DataError> {
    let rows = parse_csv(text)?;
    if rows.is_empty() {
        return Err(crate::DataError::CsvParse {
            line: 0,
            message: format!("empty record table {which}"),
        });
    }
    let header = &rows[0];
    let id_col = header
        .iter()
        .position(|h| h.eq_ignore_ascii_case("id"))
        .ok_or_else(|| crate::DataError::CsvParse {
            line: 1,
            message: format!("record table {which} missing 'id' column"),
        })?;
    let attrs: Vec<String> = header
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != id_col)
        .map(|(_, h)| h.clone())
        .collect();
    let mut records = std::collections::HashMap::with_capacity(rows.len() - 1);
    for (line_no, row) in rows.iter().enumerate().skip(1) {
        if row.len() != header.len() {
            return Err(crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("expected {} fields, got {}", header.len(), row.len()),
            });
        }
        let id: u64 = row[id_col]
            .trim()
            .parse()
            .map_err(|_| crate::DataError::CsvParse {
                line: line_no + 1,
                message: format!("bad id {:?}", row[id_col]),
            })?;
        let values: Vec<String> = row
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != id_col)
            .map(|(_, v)| v.clone())
            .collect();
        records.insert(id, values);
    }
    Ok((attrs, records))
}

#[cfg(test)]
mod magellan_tests {
    use super::*;

    const TABLE_A: &str = "\
id,title,brand,price
0,sonix tv 55,sonix,499
1,veltron laptop x2,veltron,999
2,koyama blender pro,koyama,59
";
    const TABLE_B: &str = "\
id,title,brand,price
10,sonix television 55in,sonix,489
11,veltron x2 laptop,veltron,950
12,ashford kettle,ashford,39
";
    const PAIRS: &str = "\
ltable_id,rtable_id,label
0,10,1
1,11,1
0,12,0
2,11,0
";

    #[test]
    fn magellan_format_loads() {
        let d = dataset_from_magellan("demo", TABLE_A, TABLE_B, PAIRS).unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.match_count(), 2);
        assert_eq!(
            d.schema().names().collect::<Vec<_>>(),
            vec!["title", "brand", "price"]
        );
        let first = &d.examples()[0];
        assert_eq!(first.pair.left().id, 0);
        assert_eq!(first.pair.right().id, 10);
        assert_eq!(first.pair.right().value(0), "sonix television 55in");
    }

    #[test]
    fn magellan_rejects_dangling_ids() {
        let bad_pairs = "ltable_id,rtable_id,label\n99,10,1\n";
        let err = dataset_from_magellan("x", TABLE_A, TABLE_B, bad_pairs).unwrap_err();
        assert!(format!("{err}").contains("not in table A"));
    }

    #[test]
    fn magellan_rejects_missing_columns() {
        assert!(dataset_from_magellan("x", "title\nfoo\n", TABLE_B, PAIRS).is_err());
        let no_label = "ltable_id,rtable_id\n0,10\n";
        assert!(dataset_from_magellan("x", TABLE_A, TABLE_B, no_label).is_err());
        assert!(dataset_from_magellan("x", TABLE_A, TABLE_B, "").is_err());
    }

    #[test]
    fn magellan_intersects_schemas() {
        // Table B with an extra column: intersection drops it.
        let table_b_extra = "\
id,title,brand,price,shipping
10,tv,sonix,489,free
";
        let pairs = "ltable_id,rtable_id,label\n0,10,1\n";
        let d = dataset_from_magellan("x", TABLE_A, table_b_extra, pairs).unwrap();
        assert_eq!(d.schema().len(), 3);
    }

    #[test]
    fn record_table_loads_in_file_order() {
        let t = record_table_from_csv(TABLE_B).unwrap();
        assert_eq!(t.attributes, vec!["title", "brand", "price"]);
        let ids: Vec<u64> = t.records.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![10, 11, 12]);
        assert_eq!(t.records[0].value(0), "sonix television 55in");
    }

    #[test]
    fn record_table_rejects_duplicates_and_missing_id() {
        let dup = "id,title\n3,a\n3,b\n";
        assert!(record_table_from_csv(dup).is_err());
        assert!(record_table_from_csv("title\nfoo\n").is_err());
        assert!(record_table_from_csv("").is_err());
    }

    #[test]
    fn magellan_pipeline_trains() {
        let d = dataset_from_magellan("demo", TABLE_A, TABLE_B, PAIRS).unwrap();
        // Tiny but structurally valid: splits work and tokenization is sane.
        for ex in d.examples() {
            assert!(ex.pair.token_count() > 0);
        }
    }
}
