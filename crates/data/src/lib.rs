//! # em-data
//!
//! The data model of the CREW reproduction: schemas, records, candidate
//! [`EntityPair`]s, the word-unit view ([`TokenizedPair`]) that explainers
//! operate on, labelled [`Dataset`]s with deterministic stratified splits,
//! and a CSV loader for DeepMatcher-style joined files.
//!
//! ```
//! use em_data::{Schema, Record, EntityPair, TokenizedPair};
//! use std::sync::Arc;
//! let schema = Arc::new(Schema::new(vec!["title", "brand"]));
//! let pair = EntityPair::new(
//!     schema,
//!     Record::new(0, vec!["sonix tv".into(), "sonix".into()]),
//!     Record::new(1, vec!["sonix television".into(), "sonix".into()]),
//! ).unwrap();
//! let words = TokenizedPair::new(pair);
//! assert_eq!(words.len(), 6); // every word tagged with side + attribute
//! ```

pub mod blocking;
pub mod csv;
pub mod dataset;
pub mod schema;
pub mod tokens;

pub use blocking::{block, candidates_to_pairs, BlockingResult, BlockingStrategy};
pub use csv::{
    dataset_from_joined_csv, dataset_from_magellan, dataset_to_joined_csv, parse_csv,
    record_table_from_csv, write_csv, RecordTable,
};
pub use dataset::{Dataset, DatasetStats, Label, LabeledPair, Split};
pub use schema::{EntityPair, Record, Schema, Side};
pub use tokens::{MaskedPairBuffer, TokenizedPair, WordUnit};

/// Errors from dataset construction and loading.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Record value count does not match the schema.
    SchemaMismatch {
        record_id: u64,
        expected: usize,
        got: usize,
    },
    /// A pair built over a different schema was added to a dataset.
    ForeignSchema { record_id: u64 },
    /// Split fractions were invalid.
    InvalidSplit { train: f64, validation: f64 },
    /// CSV syntax or structure error.
    CsvParse { line: usize, message: String },
    /// Invalid blocking configuration.
    InvalidBlocking { message: String },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::SchemaMismatch {
                record_id,
                expected,
                got,
            } => write!(
                f,
                "record {record_id}: expected {expected} attribute values, got {got}"
            ),
            DataError::ForeignSchema { record_id } => {
                write!(
                    f,
                    "pair with left record {record_id} uses a different schema"
                )
            }
            DataError::InvalidSplit { train, validation } => write!(
                f,
                "invalid split fractions train={train} validation={validation}"
            ),
            DataError::CsvParse { line, message } => {
                write!(f, "CSV error at line {line}: {message}")
            }
            DataError::InvalidBlocking { message } => write!(f, "invalid blocking: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod proptests {
    use super::*;
    use propcheck::prelude::*;
    use std::sync::Arc;

    fn value() -> impl Strategy<Value = String> {
        "[a-z0-9 ]{0,20}"
    }

    proptest! {
        #[test]
        fn tokenized_pair_mask_roundtrip(l0 in value(), l1 in value(), r0 in value(), r1 in value()) {
            let schema = Arc::new(Schema::new(vec!["a", "b"]));
            let pair = EntityPair::new(
                schema,
                Record::new(0, vec![l0, l1]),
                Record::new(1, vec![r0, r1]),
            ).unwrap();
            let tp = TokenizedPair::new(pair);
            // Applying the full mask then retokenizing yields the same words.
            let rebuilt = tp.apply_mask(&vec![true; tp.len()]);
            let tp2 = TokenizedPair::new(rebuilt);
            prop_assert_eq!(tp.len(), tp2.len());
            for (a, b) in tp.words().iter().zip(tp2.words()) {
                prop_assert_eq!(&a.text, &b.text);
                prop_assert_eq!(a.side, b.side);
                prop_assert_eq!(a.attribute, b.attribute);
            }
        }

        #[test]
        fn csv_round_trip_any_field(fields in propcheck::collection::vec("[ -~]{0,15}", 1..5)) {
            let rows = vec![fields];
            let text = csv::write_csv(&rows);
            let parsed = csv::parse_csv(&text).unwrap();
            prop_assert_eq!(parsed, rows);
        }

        #[test]
        fn split_partitions(n_pos in 2usize..20, n_neg in 2usize..20, seed in 0u64..100) {
            let schema = Arc::new(Schema::new(vec!["v"]));
            let mut examples = Vec::new();
            for i in 0..n_pos + n_neg {
                let pair = EntityPair::new(
                    Arc::clone(&schema),
                    Record::new(i as u64, vec![format!("val {i}")]),
                    Record::new(1000 + i as u64, vec![format!("val {i}")]),
                ).unwrap();
                examples.push(LabeledPair { pair, label: Label::from_bool(i < n_pos) });
            }
            let d = Dataset::new("p", schema, examples).unwrap();
            let split = d.split(0.6, 0.2, seed).unwrap();
            prop_assert_eq!(
                split.train.len() + split.validation.len() + split.test.len(),
                n_pos + n_neg
            );
        }
    }
}
