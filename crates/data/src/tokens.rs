//! The word-unit view of a pair: every word tagged with its side, attribute
//! and position. This is the feature space all explainers operate in.

use crate::schema::{EntityPair, Side};

/// One occurrence of a word inside a pair of entity descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordUnit {
    /// Lowercased word text.
    pub text: String,
    /// Which record the word comes from.
    pub side: Side,
    /// Attribute index in the pair's schema.
    pub attribute: usize,
    /// Position of the word inside its attribute value (0-based).
    pub position: usize,
}

impl WordUnit {
    /// Compact display form `L.title:sony`.
    pub fn label(&self, schema: &crate::schema::Schema) -> String {
        format!(
            "{}.{}:{}",
            self.side.tag(),
            schema.name(self.attribute),
            self.text
        )
    }
}

/// A pair decomposed into its word units, preserving enough structure to
/// reconstruct perturbed pairs.
#[derive(Debug, Clone)]
pub struct TokenizedPair {
    pair: EntityPair,
    words: Vec<WordUnit>,
}

impl TokenizedPair {
    /// Tokenize every attribute value of both records.
    pub fn new(pair: EntityPair) -> Self {
        let mut words = Vec::new();
        for side in [Side::Left, Side::Right] {
            let record = pair.record(side);
            for attr in 0..pair.schema().len() {
                for (position, text) in em_text::tokenize(record.value(attr))
                    .into_iter()
                    .enumerate()
                {
                    words.push(WordUnit {
                        text,
                        side,
                        attribute: attr,
                        position,
                    });
                }
            }
        }
        TokenizedPair { pair, words }
    }

    /// The underlying (unperturbed) pair.
    pub fn pair(&self) -> &EntityPair {
        &self.pair
    }

    /// All word units in (side, attribute, position) order.
    pub fn words(&self) -> &[WordUnit] {
        &self.words
    }

    /// Number of word units.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Indices of words on a given side.
    pub fn side_indices(&self, side: Side) -> Vec<usize> {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, w)| w.side == side)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of words in a given (side, attribute) cell.
    pub fn cell_indices(&self, side: Side, attribute: usize) -> Vec<usize> {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, w)| w.side == side && w.attribute == attribute)
            .map(|(i, _)| i)
            .collect()
    }

    /// Rebuild an [`EntityPair`] keeping only the words whose index is
    /// `true` in `mask`. Attribute values are reconstructed by joining the
    /// surviving words with single spaces; non-masked attributes keep
    /// their token order.
    ///
    /// # Panics
    /// Panics if `mask.len() != self.len()`.
    pub fn apply_mask(&self, mask: &[bool]) -> EntityPair {
        assert_eq!(
            mask.len(),
            self.words.len(),
            "mask length must equal word count"
        );
        let schema = self.pair.schema_arc();
        let mut pair = self.pair.clone();
        for side in [Side::Left, Side::Right] {
            for attr in 0..schema.len() {
                let mut value = String::new();
                for (i, w) in self.words.iter().enumerate() {
                    if w.side == side && w.attribute == attr && mask[i] {
                        if !value.is_empty() {
                            value.push(' ');
                        }
                        value.push_str(&w.text);
                    }
                }
                pair.record_mut(side).set_value(attr, value);
            }
        }
        pair
    }

    /// Rebuild a pair keeping masked words and *appending* extra words to
    /// their (side, attribute) cells — used by injection-style perturbations
    /// (Landmark, LEMON, Mojito-COPY).
    pub fn apply_mask_with_injections(
        &self,
        mask: &[bool],
        injections: &[(Side, usize, String)],
    ) -> EntityPair {
        let mut pair = self.apply_mask(mask);
        for (side, attr, text) in injections {
            let current = pair.record(*side).value(*attr).to_string();
            let new = if current.is_empty() {
                text.clone()
            } else {
                format!("{current} {text}")
            };
            pair.record_mut(*side).set_value(*attr, new);
        }
        pair
    }

    /// Group word indices by attribute (over both sides); the EM-schema
    /// arrangement CREW exploits.
    pub fn attribute_groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.pair.schema().len()];
        for (i, w) in self.words.iter().enumerate() {
            groups[w.attribute].push(i);
        }
        groups
    }
}

/// A reusable buffer for applying many masks to one [`TokenizedPair`]
/// without reallocating per sample.
///
/// [`TokenizedPair::apply_mask`] clones the pair and rebuilds every
/// attribute string from scratch on each call; over a 256-sample
/// perturbation run that is hundreds of redundant allocations and
/// re-joins. The buffer keeps one working pair and rewrites only the
/// `(side, attribute)` cells whose kept-set actually changed:
///
/// - cells whose mask bits are all `true` and that already hold their
///   full (normalised) value are skipped entirely — SingleSide and
///   Landmark masks leave half the cells untouched every sample;
/// - other cells are rewritten in place into their existing `String`
///   capacity via [`Record::value_mut`].
///
/// The produced pair is bitwise-identical to `apply_mask`'s output (the
/// same words joined by single spaces), so the scalar and buffered
/// paths are interchangeable under the determinism contract.
#[derive(Debug)]
pub struct MaskedPairBuffer<'a> {
    tokenized: &'a TokenizedPair,
    /// Working pair, always holding the most recently applied mask.
    pair: EntityPair,
    /// `(side, attribute, word-index range)` per cell; ranges are
    /// contiguous because words are emitted in (side, attribute,
    /// position) order.
    cells: Vec<(Side, usize, std::ops::Range<usize>)>,
    /// The full normalised value of each cell (all words kept).
    full_values: Vec<String>,
    /// Whether the working pair currently holds the full value of the
    /// cell (enables the all-kept skip).
    is_full: Vec<bool>,
}

impl<'a> MaskedPairBuffer<'a> {
    pub fn new(tokenized: &'a TokenizedPair) -> Self {
        let schema = tokenized.pair().schema_arc();
        let mut cells = Vec::with_capacity(schema.len() * 2);
        let words = tokenized.words();
        for side in [Side::Left, Side::Right] {
            for attr in 0..schema.len() {
                let start = words
                    .iter()
                    .position(|w| w.side == side && w.attribute == attr)
                    .unwrap_or(words.len());
                let end = start
                    + words[start..]
                        .iter()
                        .take_while(|w| w.side == side && w.attribute == attr)
                        .count();
                cells.push((side, attr, start..end));
            }
        }
        let full_values: Vec<String> = cells
            .iter()
            .map(|(_, _, range)| {
                let mut value = String::new();
                for w in &words[range.clone()] {
                    if !value.is_empty() {
                        value.push(' ');
                    }
                    value.push_str(&w.text);
                }
                value
            })
            .collect();
        let mut pair = tokenized.pair().clone();
        for ((side, attr, _), full) in cells.iter().zip(&full_values) {
            pair.record_mut(*side).value_mut(*attr).clone_from(full);
        }
        let is_full = vec![true; cells.len()];
        MaskedPairBuffer {
            tokenized,
            pair,
            cells,
            full_values,
            is_full,
        }
    }

    /// Apply `mask` and return the rebuilt pair (borrowed from the
    /// buffer; clone it if an owned pair is needed).
    ///
    /// # Panics
    /// Panics if `mask.len() != tokenized.len()`.
    pub fn apply(&mut self, mask: &[bool]) -> &EntityPair {
        assert_eq!(
            mask.len(),
            self.tokenized.len(),
            "mask length must equal word count"
        );
        let words = self.tokenized.words();
        for (cell, (side, attr, range)) in self.cells.iter().enumerate() {
            let all_kept = mask[range.clone()].iter().all(|&b| b);
            if all_kept {
                if !self.is_full[cell] {
                    self.pair
                        .record_mut(*side)
                        .value_mut(*attr)
                        .clone_from(&self.full_values[cell]);
                    self.is_full[cell] = true;
                }
                continue;
            }
            let value = self.pair.record_mut(*side).value_mut(*attr);
            value.clear();
            for i in range.clone() {
                if mask[i] {
                    if !value.is_empty() {
                        value.push(' ');
                    }
                    value.push_str(&words[i].text);
                }
            }
            self.is_full[cell] = false;
        }
        &self.pair
    }

    /// Apply `mask`, then append injected words to their cells —
    /// the buffered counterpart of
    /// [`TokenizedPair::apply_mask_with_injections`]. Injected cells
    /// are marked dirty so the next [`Self::apply`] restores them.
    pub fn apply_with_injections(
        &mut self,
        mask: &[bool],
        injections: &[(Side, usize, String)],
    ) -> &EntityPair {
        self.apply(mask);
        for (side, attr, text) in injections {
            let value = self.pair.record_mut(*side).value_mut(*attr);
            if !value.is_empty() {
                value.push(' ');
            }
            value.push_str(text);
            let cell = self
                .cells
                .iter()
                .position(|(s, a, _)| s == side && a == attr)
                .expect("injection cell exists in schema");
            self.is_full[cell] = false;
        }
        &self.pair
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Record, Schema};
    use std::sync::Arc;

    fn pair() -> EntityPair {
        let schema = Arc::new(Schema::new(vec!["title", "brand"]));
        let l = Record::new(1, vec!["Sony Bravia TV".into(), "Sony".into()]);
        let r = Record::new(2, vec!["Bravia 55 TV".into(), "".into()]);
        EntityPair::new(schema, l, r).unwrap()
    }

    #[test]
    fn tokenization_tags_side_attribute_position() {
        let tp = TokenizedPair::new(pair());
        assert_eq!(tp.len(), 7);
        let w = &tp.words()[0];
        assert_eq!(w.text, "sony");
        assert_eq!(w.side, Side::Left);
        assert_eq!(w.attribute, 0);
        assert_eq!(w.position, 0);
        let last = tp.words().last().unwrap();
        assert_eq!(last.text, "tv");
        assert_eq!(last.side, Side::Right);
    }

    #[test]
    fn side_and_cell_indices() {
        let tp = TokenizedPair::new(pair());
        assert_eq!(tp.side_indices(Side::Left).len(), 4);
        assert_eq!(tp.side_indices(Side::Right).len(), 3);
        assert_eq!(tp.cell_indices(Side::Left, 1).len(), 1);
        assert_eq!(tp.cell_indices(Side::Right, 1).len(), 0);
    }

    #[test]
    fn full_mask_reconstructs_normalised_pair() {
        let tp = TokenizedPair::new(pair());
        let all = vec![true; tp.len()];
        let rebuilt = tp.apply_mask(&all);
        assert_eq!(rebuilt.left().value(0), "sony bravia tv");
        assert_eq!(rebuilt.left().value(1), "sony");
        assert_eq!(rebuilt.right().value(0), "bravia 55 tv");
        assert_eq!(rebuilt.right().value(1), "");
    }

    #[test]
    fn empty_mask_empties_all_values() {
        let tp = TokenizedPair::new(pair());
        let none = vec![false; tp.len()];
        let rebuilt = tp.apply_mask(&none);
        for attr in 0..2 {
            assert_eq!(rebuilt.left().value(attr), "");
            assert_eq!(rebuilt.right().value(attr), "");
        }
    }

    #[test]
    fn partial_mask_drops_exact_words() {
        let tp = TokenizedPair::new(pair());
        let mut mask = vec![true; tp.len()];
        // Drop "bravia" from the left title (index 1).
        assert_eq!(tp.words()[1].text, "bravia");
        mask[1] = false;
        let rebuilt = tp.apply_mask(&mask);
        assert_eq!(rebuilt.left().value(0), "sony tv");
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn mask_length_mismatch_panics() {
        let tp = TokenizedPair::new(pair());
        tp.apply_mask(&[true]);
    }

    #[test]
    fn injections_append_to_cells() {
        let tp = TokenizedPair::new(pair());
        let mask = vec![true; tp.len()];
        let rebuilt = tp.apply_mask_with_injections(&mask, &[(Side::Right, 1, "sony".to_string())]);
        assert_eq!(rebuilt.right().value(1), "sony");
        let rebuilt2 =
            tp.apply_mask_with_injections(&mask, &[(Side::Left, 0, "extra".to_string())]);
        assert_eq!(rebuilt2.left().value(0), "sony bravia tv extra");
    }

    #[test]
    fn attribute_groups_cover_all_words() {
        let tp = TokenizedPair::new(pair());
        let groups = tp.attribute_groups();
        assert_eq!(groups.len(), 2);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, tp.len());
        // title group holds words from both sides
        assert_eq!(groups[0].len(), 6);
        assert_eq!(groups[1].len(), 1);
    }

    #[test]
    fn word_label_renders() {
        let tp = TokenizedPair::new(pair());
        let label = tp.words()[0].label(tp.pair().schema());
        assert_eq!(label, "L.title:sony");
    }

    #[test]
    fn buffer_matches_apply_mask_over_a_mask_stream() {
        let tp = TokenizedPair::new(pair());
        let mut buffer = MaskedPairBuffer::new(&tp);
        // A stream exercising all-kept, all-dropped, and partial masks in
        // sequence, including returns to the full mask (cache restore).
        let n = tp.len();
        let mut masks: Vec<Vec<bool>> = vec![vec![true; n], vec![false; n]];
        for i in 0..n {
            let mut m = vec![true; n];
            m[i] = false;
            masks.push(m);
            masks.push(vec![true; n]);
            let mut m2 = vec![false; n];
            m2[i] = true;
            masks.push(m2);
        }
        for mask in &masks {
            assert_eq!(buffer.apply(mask), &tp.apply_mask(mask));
        }
    }

    #[test]
    fn buffer_matches_apply_mask_with_injections() {
        let tp = TokenizedPair::new(pair());
        let mut buffer = MaskedPairBuffer::new(&tp);
        let mut mask = vec![true; tp.len()];
        mask[1] = false;
        let injections = vec![
            (Side::Right, 1, "sony".to_string()),
            (Side::Left, 0, "extra".to_string()),
        ];
        for _ in 0..3 {
            assert_eq!(
                buffer.apply_with_injections(&mask, &injections),
                &tp.apply_mask_with_injections(&mask, &injections)
            );
            // Interleave a plain apply to check injected cells recover.
            assert_eq!(buffer.apply(&mask), &tp.apply_mask(&mask));
        }
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn buffer_mask_length_mismatch_panics() {
        let tp = TokenizedPair::new(pair());
        MaskedPairBuffer::new(&tp).apply(&[true]);
    }
}
