//! The word-unit view of a pair: every word tagged with its side, attribute
//! and position. This is the feature space all explainers operate in.

use crate::schema::{EntityPair, Side};

/// One occurrence of a word inside a pair of entity descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordUnit {
    /// Lowercased word text.
    pub text: String,
    /// Which record the word comes from.
    pub side: Side,
    /// Attribute index in the pair's schema.
    pub attribute: usize,
    /// Position of the word inside its attribute value (0-based).
    pub position: usize,
}

impl WordUnit {
    /// Compact display form `L.title:sony`.
    pub fn label(&self, schema: &crate::schema::Schema) -> String {
        format!(
            "{}.{}:{}",
            self.side.tag(),
            schema.name(self.attribute),
            self.text
        )
    }
}

/// A pair decomposed into its word units, preserving enough structure to
/// reconstruct perturbed pairs.
#[derive(Debug, Clone)]
pub struct TokenizedPair {
    pair: EntityPair,
    words: Vec<WordUnit>,
}

impl TokenizedPair {
    /// Tokenize every attribute value of both records.
    pub fn new(pair: EntityPair) -> Self {
        let mut words = Vec::new();
        for side in [Side::Left, Side::Right] {
            let record = pair.record(side);
            for attr in 0..pair.schema().len() {
                for (position, text) in em_text::tokenize(record.value(attr))
                    .into_iter()
                    .enumerate()
                {
                    words.push(WordUnit {
                        text,
                        side,
                        attribute: attr,
                        position,
                    });
                }
            }
        }
        TokenizedPair { pair, words }
    }

    /// The underlying (unperturbed) pair.
    pub fn pair(&self) -> &EntityPair {
        &self.pair
    }

    /// All word units in (side, attribute, position) order.
    pub fn words(&self) -> &[WordUnit] {
        &self.words
    }

    /// Number of word units.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Indices of words on a given side.
    pub fn side_indices(&self, side: Side) -> Vec<usize> {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, w)| w.side == side)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of words in a given (side, attribute) cell.
    pub fn cell_indices(&self, side: Side, attribute: usize) -> Vec<usize> {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, w)| w.side == side && w.attribute == attribute)
            .map(|(i, _)| i)
            .collect()
    }

    /// Rebuild an [`EntityPair`] keeping only the words whose index is
    /// `true` in `mask`. Attribute values are reconstructed by joining the
    /// surviving words with single spaces; non-masked attributes keep
    /// their token order.
    ///
    /// # Panics
    /// Panics if `mask.len() != self.len()`.
    pub fn apply_mask(&self, mask: &[bool]) -> EntityPair {
        assert_eq!(
            mask.len(),
            self.words.len(),
            "mask length must equal word count"
        );
        let schema = self.pair.schema_arc();
        let mut pair = self.pair.clone();
        for side in [Side::Left, Side::Right] {
            for attr in 0..schema.len() {
                let mut value = String::new();
                for (i, w) in self.words.iter().enumerate() {
                    if w.side == side && w.attribute == attr && mask[i] {
                        if !value.is_empty() {
                            value.push(' ');
                        }
                        value.push_str(&w.text);
                    }
                }
                pair.record_mut(side).set_value(attr, value);
            }
        }
        pair
    }

    /// Rebuild a pair keeping masked words and *appending* extra words to
    /// their (side, attribute) cells — used by injection-style perturbations
    /// (Landmark, LEMON, Mojito-COPY).
    pub fn apply_mask_with_injections(
        &self,
        mask: &[bool],
        injections: &[(Side, usize, String)],
    ) -> EntityPair {
        let mut pair = self.apply_mask(mask);
        for (side, attr, text) in injections {
            let current = pair.record(*side).value(*attr).to_string();
            let new = if current.is_empty() {
                text.clone()
            } else {
                format!("{current} {text}")
            };
            pair.record_mut(*side).set_value(*attr, new);
        }
        pair
    }

    /// Group word indices by attribute (over both sides); the EM-schema
    /// arrangement CREW exploits.
    pub fn attribute_groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.pair.schema().len()];
        for (i, w) in self.words.iter().enumerate() {
            groups[w.attribute].push(i);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Record, Schema};
    use std::sync::Arc;

    fn pair() -> EntityPair {
        let schema = Arc::new(Schema::new(vec!["title", "brand"]));
        let l = Record::new(1, vec!["Sony Bravia TV".into(), "Sony".into()]);
        let r = Record::new(2, vec!["Bravia 55 TV".into(), "".into()]);
        EntityPair::new(schema, l, r).unwrap()
    }

    #[test]
    fn tokenization_tags_side_attribute_position() {
        let tp = TokenizedPair::new(pair());
        assert_eq!(tp.len(), 7);
        let w = &tp.words()[0];
        assert_eq!(w.text, "sony");
        assert_eq!(w.side, Side::Left);
        assert_eq!(w.attribute, 0);
        assert_eq!(w.position, 0);
        let last = tp.words().last().unwrap();
        assert_eq!(last.text, "tv");
        assert_eq!(last.side, Side::Right);
    }

    #[test]
    fn side_and_cell_indices() {
        let tp = TokenizedPair::new(pair());
        assert_eq!(tp.side_indices(Side::Left).len(), 4);
        assert_eq!(tp.side_indices(Side::Right).len(), 3);
        assert_eq!(tp.cell_indices(Side::Left, 1).len(), 1);
        assert_eq!(tp.cell_indices(Side::Right, 1).len(), 0);
    }

    #[test]
    fn full_mask_reconstructs_normalised_pair() {
        let tp = TokenizedPair::new(pair());
        let all = vec![true; tp.len()];
        let rebuilt = tp.apply_mask(&all);
        assert_eq!(rebuilt.left().value(0), "sony bravia tv");
        assert_eq!(rebuilt.left().value(1), "sony");
        assert_eq!(rebuilt.right().value(0), "bravia 55 tv");
        assert_eq!(rebuilt.right().value(1), "");
    }

    #[test]
    fn empty_mask_empties_all_values() {
        let tp = TokenizedPair::new(pair());
        let none = vec![false; tp.len()];
        let rebuilt = tp.apply_mask(&none);
        for attr in 0..2 {
            assert_eq!(rebuilt.left().value(attr), "");
            assert_eq!(rebuilt.right().value(attr), "");
        }
    }

    #[test]
    fn partial_mask_drops_exact_words() {
        let tp = TokenizedPair::new(pair());
        let mut mask = vec![true; tp.len()];
        // Drop "bravia" from the left title (index 1).
        assert_eq!(tp.words()[1].text, "bravia");
        mask[1] = false;
        let rebuilt = tp.apply_mask(&mask);
        assert_eq!(rebuilt.left().value(0), "sony tv");
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn mask_length_mismatch_panics() {
        let tp = TokenizedPair::new(pair());
        tp.apply_mask(&[true]);
    }

    #[test]
    fn injections_append_to_cells() {
        let tp = TokenizedPair::new(pair());
        let mask = vec![true; tp.len()];
        let rebuilt = tp.apply_mask_with_injections(&mask, &[(Side::Right, 1, "sony".to_string())]);
        assert_eq!(rebuilt.right().value(1), "sony");
        let rebuilt2 =
            tp.apply_mask_with_injections(&mask, &[(Side::Left, 0, "extra".to_string())]);
        assert_eq!(rebuilt2.left().value(0), "sony bravia tv extra");
    }

    #[test]
    fn attribute_groups_cover_all_words() {
        let tp = TokenizedPair::new(pair());
        let groups = tp.attribute_groups();
        assert_eq!(groups.len(), 2);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, tp.len());
        // title group holds words from both sides
        assert_eq!(groups[0].len(), 6);
        assert_eq!(groups[1].len(), 1);
    }

    #[test]
    fn word_label_renders() {
        let tp = TokenizedPair::new(pair());
        let label = tp.words()[0].label(tp.pair().schema());
        assert_eq!(label, "L.title:sony");
    }
}
