//! Blocking: candidate-pair generation between two record collections.
//!
//! Real EM pipelines never score the full cross product; a blocking stage
//! proposes candidate pairs that share enough surface evidence. The
//! ER-Magellan datasets the CREW evaluation mirrors were produced exactly
//! this way, so the substrate belongs in the reproduction: it lets users
//! run the full match-then-explain pipeline on raw record tables.

use crate::schema::{EntityPair, Record, Schema};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Blocking strategy.
#[derive(Debug, Clone)]
pub enum BlockingStrategy {
    /// Pair records sharing the exact (lowercased) value of one attribute.
    AttributeEquality { attribute: usize },
    /// Pair records sharing at least `min_shared` tokens anywhere.
    TokenOverlap { min_shared: usize },
    /// Pair records whose token Jaccard over one attribute is at least
    /// `threshold` (evaluated only on token-sharing candidates, so it
    /// stays sub-quadratic on realistic data).
    AttributeJaccard { attribute: usize, threshold: f64 },
}

/// Result of a blocking run.
#[derive(Debug, Clone)]
pub struct BlockingResult {
    /// Candidate pairs (indices into the left and right collections).
    pub candidates: Vec<(usize, usize)>,
    /// Number of comparisons actually evaluated (for reduction-ratio
    /// reporting).
    pub comparisons: usize,
}

impl BlockingResult {
    /// Reduction ratio versus the full cross product.
    pub fn reduction_ratio(&self, left: usize, right: usize) -> f64 {
        let full = (left * right) as f64;
        if full == 0.0 {
            return 0.0;
        }
        1.0 - self.candidates.len() as f64 / full
    }
}

/// Run blocking between two record collections over a shared schema.
///
/// # Errors
/// Rejects attribute indices outside the schema and thresholds outside
/// `(0, 1]`.
pub fn block(
    schema: &Schema,
    left: &[Record],
    right: &[Record],
    strategy: &BlockingStrategy,
) -> Result<BlockingResult, crate::DataError> {
    match strategy {
        BlockingStrategy::AttributeEquality { attribute } => {
            validate_attribute(schema, *attribute)?;
            Ok(block_equality(left, right, *attribute))
        }
        BlockingStrategy::TokenOverlap { min_shared } => {
            if *min_shared == 0 {
                return Err(crate::DataError::InvalidBlocking {
                    message: "min_shared must be at least 1".into(),
                });
            }
            Ok(block_token_overlap(left, right, *min_shared))
        }
        BlockingStrategy::AttributeJaccard {
            attribute,
            threshold,
        } => {
            validate_attribute(schema, *attribute)?;
            if !(*threshold > 0.0 && *threshold <= 1.0) {
                return Err(crate::DataError::InvalidBlocking {
                    message: format!("jaccard threshold must be in (0,1], got {threshold}"),
                });
            }
            Ok(block_attribute_jaccard(left, right, *attribute, *threshold))
        }
    }
}

fn validate_attribute(schema: &Schema, attribute: usize) -> Result<(), crate::DataError> {
    if attribute >= schema.len() {
        return Err(crate::DataError::InvalidBlocking {
            message: format!(
                "attribute index {attribute} outside schema of {} attributes",
                schema.len()
            ),
        });
    }
    Ok(())
}

fn block_equality(left: &[Record], right: &[Record], attribute: usize) -> BlockingResult {
    let mut by_value: HashMap<String, Vec<usize>> = HashMap::new();
    for (j, r) in right.iter().enumerate() {
        let key = r.value(attribute).to_lowercase();
        if !key.is_empty() {
            by_value.entry(key).or_default().push(j);
        }
    }
    let mut candidates = Vec::new();
    let mut comparisons = 0usize;
    for (i, l) in left.iter().enumerate() {
        let key = l.value(attribute).to_lowercase();
        if key.is_empty() {
            continue;
        }
        if let Some(js) = by_value.get(&key) {
            for &j in js {
                comparisons += 1;
                candidates.push((i, j));
            }
        }
    }
    BlockingResult {
        candidates,
        comparisons,
    }
}

fn token_index(records: &[Record]) -> HashMap<String, Vec<usize>> {
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for (j, r) in records.iter().enumerate() {
        let mut seen = HashSet::new();
        for tok in em_text::tokenize(&r.full_text()) {
            if seen.insert(tok.clone()) {
                index.entry(tok).or_default().push(j);
            }
        }
    }
    index
}

fn block_token_overlap(left: &[Record], right: &[Record], min_shared: usize) -> BlockingResult {
    let index = token_index(right);
    let mut candidates = Vec::new();
    let mut comparisons = 0usize;
    let mut shared: HashMap<usize, usize> = HashMap::new();
    for (i, l) in left.iter().enumerate() {
        shared.clear();
        let tokens: HashSet<String> = em_text::tokenize(&l.full_text()).into_iter().collect();
        for tok in &tokens {
            if let Some(js) = index.get(tok) {
                for &j in js {
                    *shared.entry(j).or_insert(0) += 1;
                }
            }
        }
        comparisons += shared.len();
        let mut hits: Vec<usize> = shared
            .iter()
            .filter(|&(_, &c)| c >= min_shared)
            .map(|(&j, _)| j)
            .collect();
        hits.sort_unstable();
        for j in hits {
            candidates.push((i, j));
        }
    }
    BlockingResult {
        candidates,
        comparisons,
    }
}

fn block_attribute_jaccard(
    left: &[Record],
    right: &[Record],
    attribute: usize,
    threshold: f64,
) -> BlockingResult {
    // Invert only the chosen attribute, then verify Jaccard on the
    // token-sharing candidates.
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    let right_tokens: Vec<Vec<String>> = right
        .iter()
        .map(|r| em_text::tokenize(r.value(attribute)))
        .collect();
    for (j, toks) in right_tokens.iter().enumerate() {
        let mut seen = HashSet::new();
        for t in toks {
            if seen.insert(t.clone()) {
                index.entry(t.clone()).or_default().push(j);
            }
        }
    }
    let mut candidates = Vec::new();
    let mut comparisons = 0usize;
    for (i, l) in left.iter().enumerate() {
        let ltoks = em_text::tokenize(l.value(attribute));
        let mut seen: HashSet<usize> = HashSet::new();
        for t in &ltoks {
            if let Some(js) = index.get(t) {
                seen.extend(js.iter().copied());
            }
        }
        let mut hits: Vec<usize> = seen.into_iter().collect();
        hits.sort_unstable();
        for j in hits {
            comparisons += 1;
            if em_text::jaccard(&ltoks, &right_tokens[j]) >= threshold {
                candidates.push((i, j));
            }
        }
    }
    BlockingResult {
        candidates,
        comparisons,
    }
}

/// Materialise candidate pairs into [`EntityPair`]s.
pub fn candidates_to_pairs(
    schema: &Arc<Schema>,
    left: &[Record],
    right: &[Record],
    candidates: &[(usize, usize)],
) -> Result<Vec<EntityPair>, crate::DataError> {
    candidates
        .iter()
        .map(|&(i, j)| EntityPair::new(Arc::clone(schema), left[i].clone(), right[j].clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec!["name", "brand"])
    }

    fn rec(id: u64, name: &str, brand: &str) -> Record {
        Record::new(id, vec![name.to_string(), brand.to_string()])
    }

    fn tables() -> (Vec<Record>, Vec<Record>) {
        let left = vec![
            rec(0, "alpha tv 55", "sonix"),
            rec(1, "beta speaker", "brixton"),
            rec(2, "gamma laptop", "veltron"),
        ];
        let right = vec![
            rec(10, "alpha television 55", "sonix"),
            rec(11, "delta blender", "koyama"),
            rec(12, "beta bt speaker", "brixton"),
            rec(13, "epsilon phone", "sonix"),
        ];
        (left, right)
    }

    #[test]
    fn equality_blocking_groups_by_brand() {
        let (l, r) = tables();
        let res = block(
            &schema(),
            &l,
            &r,
            &BlockingStrategy::AttributeEquality { attribute: 1 },
        )
        .unwrap();
        assert!(res.candidates.contains(&(0, 0)));
        assert!(res.candidates.contains(&(0, 3)));
        assert!(res.candidates.contains(&(1, 2)));
        assert!(!res.candidates.iter().any(|&(i, _)| i == 2)); // veltron unmatched
        assert!(res.reduction_ratio(3, 4) > 0.5);
    }

    #[test]
    fn token_overlap_blocking_finds_shared_words() {
        let (l, r) = tables();
        let res = block(
            &schema(),
            &l,
            &r,
            &BlockingStrategy::TokenOverlap { min_shared: 2 },
        )
        .unwrap();
        // "alpha ... 55 sonix" shares alpha+55+sonix with right 0.
        assert!(res.candidates.contains(&(0, 0)));
        // "beta speaker brixton" shares beta+speaker+brixton with right 2.
        assert!(res.candidates.contains(&(1, 2)));
        // laptop record shares nothing twice.
        assert!(!res.candidates.iter().any(|&(i, _)| i == 2));
    }

    #[test]
    fn jaccard_blocking_thresholds() {
        let (l, r) = tables();
        let strict = block(
            &schema(),
            &l,
            &r,
            &BlockingStrategy::AttributeJaccard {
                attribute: 0,
                threshold: 0.9,
            },
        )
        .unwrap();
        let lax = block(
            &schema(),
            &l,
            &r,
            &BlockingStrategy::AttributeJaccard {
                attribute: 0,
                threshold: 0.3,
            },
        )
        .unwrap();
        assert!(lax.candidates.len() >= strict.candidates.len());
        assert!(lax.candidates.contains(&(0, 0))); // {alpha,tv,55} vs {alpha,television,55} = 1/2
        assert!(!strict.candidates.contains(&(0, 0)));
    }

    #[test]
    fn invalid_strategies_are_rejected() {
        let (l, r) = tables();
        assert!(block(
            &schema(),
            &l,
            &r,
            &BlockingStrategy::AttributeEquality { attribute: 9 }
        )
        .is_err());
        assert!(block(
            &schema(),
            &l,
            &r,
            &BlockingStrategy::TokenOverlap { min_shared: 0 }
        )
        .is_err());
        assert!(block(
            &schema(),
            &l,
            &r,
            &BlockingStrategy::AttributeJaccard {
                attribute: 0,
                threshold: 0.0
            }
        )
        .is_err());
        assert!(block(
            &schema(),
            &l,
            &r,
            &BlockingStrategy::AttributeJaccard {
                attribute: 0,
                threshold: 1.5
            }
        )
        .is_err());
    }

    #[test]
    fn empty_values_never_block() {
        let s = schema();
        let l = vec![rec(0, "x", "")];
        let r = vec![rec(1, "y", "")];
        let res = block(
            &s,
            &l,
            &r,
            &BlockingStrategy::AttributeEquality { attribute: 1 },
        )
        .unwrap();
        assert!(res.candidates.is_empty());
    }

    #[test]
    fn candidates_materialise_into_pairs() {
        let (l, r) = tables();
        let s = Arc::new(schema());
        let res = block(
            &s,
            &l,
            &r,
            &BlockingStrategy::AttributeEquality { attribute: 1 },
        )
        .unwrap();
        let pairs = candidates_to_pairs(&s, &l, &r, &res.candidates).unwrap();
        assert_eq!(pairs.len(), res.candidates.len());
        for p in &pairs {
            assert_eq!(
                p.left().value(1).to_lowercase(),
                p.right().value(1).to_lowercase()
            );
        }
    }

    #[test]
    fn blocking_is_deterministic() {
        let (l, r) = tables();
        let s = schema();
        let a = block(
            &s,
            &l,
            &r,
            &BlockingStrategy::TokenOverlap { min_shared: 1 },
        )
        .unwrap();
        let b = block(
            &s,
            &l,
            &r,
            &BlockingStrategy::TokenOverlap { min_shared: 1 },
        )
        .unwrap();
        assert_eq!(a.candidates, b.candidates);
    }
}
