//! Stability/agreement metrics: how consistent are explanations across
//! seeds, and how much do different explainers agree?

use crew_core::WordExplanation;

/// Jaccard similarity of the top-k word sets of two explanations.
///
/// # Errors
/// The explanations must cover the same number of words.
pub fn topk_jaccard(
    a: &WordExplanation,
    b: &WordExplanation,
    k: usize,
) -> Result<f64, crate::MetricError> {
    if a.weights.len() != b.weights.len() {
        return Err(crate::MetricError::ExplanationMismatch {
            a: a.weights.len(),
            b: b.weights.len(),
        });
    }
    if k == 0 {
        return Err(crate::MetricError::InvalidK(k));
    }
    let ta: std::collections::HashSet<usize> = a.ranked_indices().into_iter().take(k).collect();
    let tb: std::collections::HashSet<usize> = b.ranked_indices().into_iter().take(k).collect();
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    Ok(if union == 0.0 { 1.0 } else { inter / union })
}

/// Spearman rank correlation of two explanations' weight vectors.
pub fn weight_rank_correlation(
    a: &WordExplanation,
    b: &WordExplanation,
) -> Result<f64, crate::MetricError> {
    if a.weights.len() != b.weights.len() {
        return Err(crate::MetricError::ExplanationMismatch {
            a: a.weights.len(),
            b: b.weights.len(),
        });
    }
    Ok(em_linalg::stats::spearman(&a.weights, &b.weights))
}

/// Mean pairwise top-k Jaccard over a set of explanations of the same pair
/// (e.g. across seeds) — the stability score of the stability figure.
pub fn mean_pairwise_stability(
    explanations: &[WordExplanation],
    k: usize,
) -> Result<f64, crate::MetricError> {
    if explanations.len() < 2 {
        return Err(crate::MetricError::NeedAtLeastTwo(explanations.len()));
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..explanations.len() {
        for j in i + 1..explanations.len() {
            sum += topk_jaccard(&explanations[i], &explanations[j], k)?;
            count += 1;
        }
    }
    Ok(sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{EntityPair, Record, Schema, TokenizedPair};
    use std::sync::Arc;

    fn expl(weights: Vec<f64>) -> WordExplanation {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let text = (0..weights.len())
            .map(|i| format!("w{i}"))
            .collect::<Vec<_>>()
            .join(" ");
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec![text]),
            Record::new(1, vec!["".into()]),
        )
        .unwrap();
        let tp = TokenizedPair::new(pair);
        WordExplanation {
            explainer: "test".into(),
            words: tp.words().to_vec(),
            weights,
            base_score: 0.5,
            intercept: 0.0,
            surrogate_r2: 1.0,
        }
    }

    #[test]
    fn identical_explanations_have_full_agreement() {
        let a = expl(vec![0.5, 0.3, 0.1, -0.2]);
        let b = expl(vec![0.5, 0.3, 0.1, -0.2]);
        assert_eq!(topk_jaccard(&a, &b, 2).unwrap(), 1.0);
        assert!((weight_rank_correlation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_topk_scores_zero() {
        let a = expl(vec![0.9, 0.8, 0.0, 0.0]);
        let b = expl(vec![0.0, 0.0, 0.9, 0.8]);
        assert_eq!(topk_jaccard(&a, &b, 2).unwrap(), 0.0);
    }

    #[test]
    fn partial_overlap_in_between() {
        let a = expl(vec![0.9, 0.8, 0.0, 0.0]);
        let b = expl(vec![0.9, 0.0, 0.8, 0.0]);
        // top2(a) = {0,1}, top2(b) = {0,2} → 1/3.
        assert!((topk_jaccard(&a, &b, 2).unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn anticorrelated_weights_detected() {
        let a = expl(vec![0.1, 0.2, 0.3, 0.4]);
        let b = expl(vec![0.4, 0.3, 0.2, 0.1]);
        assert!((weight_rank_correlation(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_pairwise_over_three() {
        let a = expl(vec![0.9, 0.8, 0.0]);
        let b = expl(vec![0.9, 0.8, 0.0]);
        let c = expl(vec![0.0, 0.8, 0.9]);
        // pairs: (a,b)=1, (a,c): top2 {0,1} vs {2,1} = 1/3, (b,c)=1/3.
        let s = mean_pairwise_stability(&[a, b, c], 2).unwrap();
        assert!((s - (1.0 + 1.0 / 3.0 + 1.0 / 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let a = expl(vec![0.1, 0.2]);
        let b = expl(vec![0.1, 0.2, 0.3]);
        assert!(topk_jaccard(&a, &b, 2).is_err());
        assert!(topk_jaccard(&a, &a, 0).is_err());
        assert!(mean_pairwise_stability(&[a], 2).is_err());
    }
}

/// Adjusted Rand Index between the cluster partitions of two CREW
/// explanations of the same pair — measures whether the *structure* (not
/// just the ranking) is stable across seeds.
pub fn cluster_structure_ari(
    a: &crew_core::ClusterExplanation,
    b: &crew_core::ClusterExplanation,
) -> Result<f64, crate::MetricError> {
    let n = a.word_level.words.len();
    if b.word_level.words.len() != n {
        return Err(crate::MetricError::ExplanationMismatch {
            a: n,
            b: b.word_level.words.len(),
        });
    }
    let labels = |ce: &crew_core::ClusterExplanation| -> Vec<usize> {
        let mut l = vec![0usize; n];
        for (c, cluster) in ce.clusters.iter().enumerate() {
            for &i in &cluster.member_indices {
                l[i] = c;
            }
        }
        l
    };
    em_cluster::adjusted_rand_index(&labels(a), &labels(b)).map_err(|_| {
        crate::MetricError::ExplanationMismatch {
            a: n,
            b: b.word_level.words.len(),
        }
    })
}

#[cfg(test)]
mod structure_tests {
    use super::*;
    use crew_core::{ClusterExplanation, WordCluster, WordExplanation};
    use em_data::{EntityPair, Record, Schema, TokenizedPair};
    use std::sync::Arc;

    fn base_explanation(partition: &[Vec<usize>]) -> ClusterExplanation {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = EntityPair::new(
            Arc::clone(&schema),
            Record::new(0, vec!["a b c d".into()]),
            Record::new(1, vec!["e f".into()]),
        )
        .unwrap();
        let tp = TokenizedPair::new(pair);
        let word_level = WordExplanation {
            explainer: "crew".into(),
            words: tp.words().to_vec(),
            weights: vec![0.0; tp.len()],
            base_score: 0.5,
            intercept: 0.0,
            surrogate_r2: 1.0,
        };
        ClusterExplanation {
            word_level,
            clusters: partition
                .iter()
                .map(|m| WordCluster {
                    member_indices: m.clone(),
                    weight: 0.1,
                    coherence: 1.0,
                })
                .collect(),
            selected_k: partition.len(),
            group_r2: 1.0,
            silhouette: 0.0,
        }
    }

    #[test]
    fn identical_structures_score_one() {
        let a = base_explanation(&[vec![0, 1, 2], vec![3, 4, 5]]);
        let b = base_explanation(&[vec![3, 4, 5], vec![0, 1, 2]]);
        assert_eq!(cluster_structure_ari(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn different_structures_score_lower() {
        let a = base_explanation(&[vec![0, 1, 2], vec![3, 4, 5]]);
        let b = base_explanation(&[vec![0, 3], vec![1, 4], vec![2, 5]]);
        let ari = cluster_structure_ari(&a, &b).unwrap();
        assert!(ari < 0.5, "got {ari}");
    }
}
