//! # em-metrics
//!
//! Evaluation metrics for EM explanations, in three groups:
//!
//! - **fidelity** (to the model): deletion curves, AOPC, sufficiency,
//!   comprehensiveness, decision-flip — all computed by querying the real
//!   matcher on unit-deletion counterfactuals;
//! - **interpretability** (for the user): unit count, semantic coherence,
//!   attribute purity, compression — the proxies standing in for the
//!   paper's user-facing comprehensibility claims;
//! - **stability/agreement**: top-k Jaccard and rank correlation across
//!   seeds or across explainers.
//!
//! ```
//! use crew_core::ExplanationUnit;
//! let units = vec![
//!     ExplanationUnit { member_indices: vec![0], weight: 0.9 },
//!     ExplanationUnit { member_indices: vec![1], weight: -0.4 },
//! ];
//! let ranked = em_metrics::ranked_units(&units);
//! assert_eq!(ranked[0].weight, 0.9);
//! ```

pub mod fidelity;
pub mod interpretability;
pub mod stability;

pub use fidelity::{
    aopc_deletion, aopc_units, class_score, comprehensiveness, decision_flip, deletion_curve,
    deletion_order, ranked_units, relevance_ranked_units, standard_fractions, sufficiency,
    unit_deletion_curve,
};
pub use interpretability::{interpretability, InterpretabilityReport};
pub use stability::{
    cluster_structure_ari, mean_pairwise_stability, topk_jaccard, weight_rank_correlation,
};

/// Errors from metric computation.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// The pair has no words.
    EmptyPair,
    /// A fraction was outside [0, 1].
    InvalidFraction(f64),
    /// The AOPC fraction grid was empty.
    EmptyFractionGrid,
    /// A unit had no members.
    EmptyUnit,
    /// A unit referenced a word outside the pair.
    UnitIndexOutOfRange { index: usize, n: usize },
    /// Two explanations cover different word counts.
    ExplanationMismatch { a: usize, b: usize },
    /// k must be positive.
    InvalidK(usize),
    /// Stability needs at least two explanations.
    NeedAtLeastTwo(usize),
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricError::EmptyPair => write!(f, "pair has no words"),
            MetricError::InvalidFraction(v) => write!(f, "fraction must be in [0,1], got {v}"),
            MetricError::EmptyFractionGrid => write!(f, "fraction grid is empty"),
            MetricError::EmptyUnit => write!(f, "explanation unit has no members"),
            MetricError::UnitIndexOutOfRange { index, n } => {
                write!(f, "unit references word {index} but pair has {n} words")
            }
            MetricError::ExplanationMismatch { a, b } => {
                write!(f, "explanations cover {a} vs {b} words")
            }
            MetricError::InvalidK(k) => write!(f, "k must be positive, got {k}"),
            MetricError::NeedAtLeastTwo(n) => {
                write!(f, "stability needs at least two explanations, got {n}")
            }
        }
    }
}

impl std::error::Error for MetricError {}
