//! # em-metrics
//!
//! Evaluation metrics for EM explanations, in three groups:
//!
//! - **fidelity** (to the model): deletion curves, AOPC, sufficiency,
//!   comprehensiveness, decision-flip — all computed by querying the real
//!   matcher on unit-deletion counterfactuals;
//! - **interpretability** (for the user): unit count, semantic coherence,
//!   attribute purity, compression — the proxies standing in for the
//!   paper's user-facing comprehensibility claims;
//! - **stability/agreement**: top-k Jaccard and rank correlation across
//!   seeds or across explainers.
//!
//! ```
//! use crew_core::ExplanationUnit;
//! let units = vec![
//!     ExplanationUnit { member_indices: vec![0], weight: 0.9 },
//!     ExplanationUnit { member_indices: vec![1], weight: -0.4 },
//! ];
//! let ranked = em_metrics::ranked_units(&units);
//! assert_eq!(ranked[0].weight, 0.9);
//! ```

pub mod fidelity;
pub mod interpretability;
pub mod stability;

pub use fidelity::{
    aopc_deletion, aopc_deletion_with_base, aopc_units, aopc_units_with_base, base_probability,
    class_score, comprehensiveness, comprehensiveness_with_base, decision_flip,
    decision_flip_with_base, deletion_curve, deletion_curve_with_base, deletion_order,
    fidelity_probes_with_base, ranked_units, relevance_ranked_units, standard_fractions,
    sufficiency, sufficiency_with_base, unit_deletion_curve, unit_deletion_curve_with_base,
    FidelityProbes,
};
pub use interpretability::{interpretability, InterpretabilityReport};
pub use stability::{
    cluster_structure_ari, mean_pairwise_stability, topk_jaccard, weight_rank_correlation,
};

/// Errors from metric computation.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// The pair has no words.
    EmptyPair,
    /// A fraction was outside [0, 1].
    InvalidFraction(f64),
    /// The AOPC fraction grid was empty.
    EmptyFractionGrid,
    /// A unit had no members.
    EmptyUnit,
    /// A unit referenced a word outside the pair.
    UnitIndexOutOfRange { index: usize, n: usize },
    /// Two explanations cover different word counts.
    ExplanationMismatch { a: usize, b: usize },
    /// k must be positive.
    InvalidK(usize),
    /// Stability needs at least two explanations.
    NeedAtLeastTwo(usize),
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricError::EmptyPair => write!(f, "pair has no words"),
            MetricError::InvalidFraction(v) => write!(f, "fraction must be in [0,1], got {v}"),
            MetricError::EmptyFractionGrid => write!(f, "fraction grid is empty"),
            MetricError::EmptyUnit => write!(f, "explanation unit has no members"),
            MetricError::UnitIndexOutOfRange { index, n } => {
                write!(f, "unit references word {index} but pair has {n} words")
            }
            MetricError::ExplanationMismatch { a, b } => {
                write!(f, "explanations cover {a} vs {b} words")
            }
            MetricError::InvalidK(k) => write!(f, "k must be positive, got {k}"),
            MetricError::NeedAtLeastTwo(n) => {
                write!(f, "stability needs at least two explanations, got {n}")
            }
        }
    }
}

impl std::error::Error for MetricError {}

#[cfg(test)]
mod proptests {
    use super::*;
    use crew_core::{ExplanationUnit, WordExplanation};
    use em_data::{EntityPair, Record, Schema, TokenizedPair};
    use propcheck::prelude::*;
    use std::sync::Arc;

    fn expl(weights: Vec<f64>) -> WordExplanation {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let text = (0..weights.len())
            .map(|i| format!("w{i}"))
            .collect::<Vec<_>>()
            .join(" ");
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec![text]),
            Record::new(1, vec!["".into()]),
        )
        .unwrap();
        let tp = TokenizedPair::new(pair);
        WordExplanation {
            explainer: "prop".into(),
            words: tp.words().to_vec(),
            weights,
            base_score: 0.5,
            intercept: 0.0,
            surrogate_r2: 1.0,
        }
    }

    /// Two weight vectors of the same (random) length, generated as a
    /// vector of pairs so no case is rejected for mismatched lengths.
    fn weight_pairs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        propcheck::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..10)
            .prop_map(|v| v.into_iter().unzip())
    }

    proptest! {
        #[test]
        fn topk_jaccard_bounded_symmetric_reflexive(
            ws in weight_pairs(),
            k in 1usize..6,
        ) {
            let (wa, wb) = ws;
            let a = expl(wa);
            let b = expl(wb);
            prop_assert!((topk_jaccard(&a, &a, k).unwrap() - 1.0).abs() < 1e-12);
            let ab = topk_jaccard(&a, &b, k).unwrap();
            let ba = topk_jaccard(&b, &a, k).unwrap();
            prop_assert!((0.0..=1.0).contains(&ab));
            prop_assert!((ab - ba).abs() < 1e-12);
        }

        #[test]
        fn rank_correlation_bounded_and_symmetric(ws in weight_pairs()) {
            let (wa, wb) = ws;
            let a = expl(wa);
            let b = expl(wb);
            let ab = weight_rank_correlation(&a, &b).unwrap();
            let ba = weight_rank_correlation(&b, &a).unwrap();
            prop_assert!((-1.0..=1.0).contains(&ab));
            prop_assert!((ab - ba).abs() < 1e-12);
        }

        #[test]
        fn mean_pairwise_stability_bounded(ws in weight_pairs(), k in 1usize..5) {
            let (wa, wb) = ws;
            let s = mean_pairwise_stability(&[expl(wa), expl(wb)], k).unwrap();
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn ranked_units_is_a_sorted_permutation(
            ws in propcheck::collection::vec(-1.0f64..1.0, 1..12),
        ) {
            let units: Vec<ExplanationUnit> = ws
                .iter()
                .enumerate()
                .map(|(i, &w)| ExplanationUnit { member_indices: vec![i], weight: w })
                .collect();
            let ranked = ranked_units(&units);
            prop_assert_eq!(ranked.len(), units.len());
            for pair in ranked.windows(2) {
                prop_assert!(pair[0].weight.abs() >= pair[1].weight.abs());
            }
            let mut idx: Vec<usize> = ranked.iter().map(|u| u.member_indices[0]).collect();
            idx.sort_unstable();
            prop_assert_eq!(idx, (0..units.len()).collect::<Vec<_>>());
        }

        #[test]
        fn deletion_order_is_a_permutation(
            ws in propcheck::collection::vec(-1.0f64..1.0, 1..12),
            toward in 0u32..2,
        ) {
            let units: Vec<ExplanationUnit> = ws
                .iter()
                .enumerate()
                .map(|(i, &w)| ExplanationUnit { member_indices: vec![i], weight: w })
                .collect();
            let mut order = deletion_order(&units, toward == 1);
            order.sort_unstable();
            prop_assert_eq!(order, (0..units.len()).collect::<Vec<_>>());
        }

        #[test]
        fn class_score_is_complementary(p in 0.0f64..1.0) {
            let m = class_score(p, true);
            let n = class_score(p, false);
            prop_assert!((0.0..=1.0).contains(&m));
            prop_assert!((0.0..=1.0).contains(&n));
            prop_assert!((m + n - 1.0).abs() < 1e-12);
        }
    }
}
