//! Fidelity metrics: do the explanation's important units really drive the
//! model? All metrics query the actual matcher on unit-deletion
//! counterfactuals, following the standard MoRF (Most-Relevant-First)
//! protocol: units are ranked by their relevance *toward the predicted
//! class*, and drops are measured in the predicted class's score — so
//! explanations of non-matches (negative evidence) are scored correctly.

use crew_core::ExplanationUnit;
use em_data::{EntityPair, TokenizedPair};
use em_matchers::Matcher;

/// Probability of the unperturbed pair — the base score every fidelity
/// metric compares against. Each metric re-derives this when called through
/// its plain form; an evaluation loop that computes several metrics for the
/// same `(matcher, pair)` should call this once and use the `*_with_base`
/// variants to avoid repeated identical model queries.
pub fn base_probability(matcher: &dyn Matcher, tokenized: &TokenizedPair) -> f64 {
    matcher.predict_proba(&tokenized.apply_mask(&vec![true; tokenized.len()]))
}

/// Rank units by |weight| descending (ties by first member index) — the
/// display order.
pub fn ranked_units(units: &[ExplanationUnit]) -> Vec<&ExplanationUnit> {
    let mut v: Vec<&ExplanationUnit> = units.iter().collect();
    v.sort_by(|a, b| {
        b.weight
            .abs()
            .partial_cmp(&a.weight.abs())
            .unwrap()
            .then(a.member_indices.cmp(&b.member_indices))
    });
    v
}

/// Rank units by signed relevance toward a class: for `toward_match` the
/// most positive weights come first; for non-match the most negative.
pub fn relevance_ranked_units(
    units: &[ExplanationUnit],
    toward_match: bool,
) -> Vec<&ExplanationUnit> {
    let mut v: Vec<&ExplanationUnit> = units.iter().collect();
    v.sort_by(|a, b| {
        let ra = if toward_match { a.weight } else { -a.weight };
        let rb = if toward_match { b.weight } else { -b.weight };
        rb.partial_cmp(&ra)
            .unwrap()
            .then(a.member_indices.cmp(&b.member_indices))
    });
    v
}

/// Score of the predicted class: `p` for match, `1 − p` for non-match.
#[inline]
pub fn class_score(probability: f64, toward_match: bool) -> f64 {
    if toward_match {
        probability
    } else {
        1.0 - probability
    }
}

/// Flatten relevance-ranked units into a word-deletion order.
pub fn deletion_order(units: &[ExplanationUnit], toward_match: bool) -> Vec<usize> {
    let mut order = Vec::new();
    for u in relevance_ranked_units(units, toward_match) {
        for &i in &u.member_indices {
            if !order.contains(&i) {
                order.push(i);
            }
        }
    }
    order
}

/// MoRF deletion curve: the predicted class's score after removing the top
/// `f` fraction of words (most relevant first), for each fraction.
/// Fraction 0.0 gives the base class score. Returns `(fraction, score)`.
pub fn deletion_curve(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    fractions: &[f64],
) -> Result<Vec<(f64, f64)>, crate::MetricError> {
    if tokenized.len() == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let base = base_probability(matcher, tokenized);
    deletion_curve_with_base(matcher, tokenized, units, fractions, base)
}

/// [`deletion_curve`] with a precomputed base probability. All deletion
/// counterfactuals go through one `predict_proba_batch` call.
pub fn deletion_curve_with_base(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    fractions: &[f64],
    base: f64,
) -> Result<Vec<(f64, f64)>, crate::MetricError> {
    let n = tokenized.len();
    if n == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let toward_match = base >= matcher.threshold();
    let order = deletion_order(units, toward_match);
    let mut probes: Vec<EntityPair> = Vec::with_capacity(fractions.len());
    for &f in fractions {
        if !(0.0..=1.0).contains(&f) {
            return Err(crate::MetricError::InvalidFraction(f));
        }
        let k = ((n as f64) * f).round() as usize;
        let mut mask = vec![true; n];
        for &i in order.iter().take(k) {
            mask[i] = false;
        }
        probes.push(tokenized.apply_mask(&mask));
    }
    let probs = matcher.predict_proba_batch(&probes);
    Ok(fractions
        .iter()
        .zip(probs)
        .map(|(&f, prob)| (f, class_score(prob, toward_match)))
        .collect())
}

/// AOPC (area over the MoRF curve) for deletion: the mean class-score drop
/// over the fraction grid. Higher means the explanation identifies the
/// evidence the model truly relies on — for matches *and* non-matches.
pub fn aopc_deletion(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    fractions: &[f64],
) -> Result<f64, crate::MetricError> {
    if tokenized.len() == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let base = base_probability(matcher, tokenized);
    aopc_deletion_with_base(matcher, tokenized, units, fractions, base)
}

/// [`aopc_deletion`] with a precomputed base probability.
pub fn aopc_deletion_with_base(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    fractions: &[f64],
    base: f64,
) -> Result<f64, crate::MetricError> {
    if fractions.is_empty() {
        return Err(crate::MetricError::EmptyFractionGrid);
    }
    if tokenized.len() == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let toward_match = base >= matcher.threshold();
    let base_cs = class_score(base, toward_match);
    let curve = deletion_curve_with_base(matcher, tokenized, units, fractions, base)?;
    Ok(curve.iter().map(|&(_, cs)| base_cs - cs).sum::<f64>() / curve.len() as f64)
}

/// Sufficiency: the predicted class's score when keeping ONLY the top
/// fraction of relevance-ranked explanation words (higher = the
/// explanation alone carries the decision).
pub fn sufficiency(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    fraction: f64,
) -> Result<f64, crate::MetricError> {
    if tokenized.len() == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let base = base_probability(matcher, tokenized);
    sufficiency_with_base(matcher, tokenized, units, fraction, base)
}

/// [`sufficiency`] with a precomputed base probability.
pub fn sufficiency_with_base(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    fraction: f64,
    base: f64,
) -> Result<f64, crate::MetricError> {
    let n = tokenized.len();
    if n == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    if !(0.0..=1.0).contains(&fraction) {
        return Err(crate::MetricError::InvalidFraction(fraction));
    }
    let toward_match = base >= matcher.threshold();
    let order = deletion_order(units, toward_match);
    let k = ((n as f64) * fraction).round().max(1.0) as usize;
    let mut mask = vec![false; n];
    for &i in order.iter().take(k) {
        mask[i] = true;
    }
    if mask.iter().all(|&b| !b) {
        mask[0] = true;
    }
    let prob = matcher.predict_proba(&tokenized.apply_mask(&mask));
    Ok(class_score(prob, toward_match))
}

/// Comprehensiveness at one fraction: base class score minus the class
/// score after deleting the top-f relevant words.
pub fn comprehensiveness(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    fraction: f64,
) -> Result<f64, crate::MetricError> {
    if tokenized.len() == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let base = base_probability(matcher, tokenized);
    comprehensiveness_with_base(matcher, tokenized, units, fraction, base)
}

/// [`comprehensiveness`] with a precomputed base probability.
pub fn comprehensiveness_with_base(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    fraction: f64,
    base: f64,
) -> Result<f64, crate::MetricError> {
    if tokenized.len() == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let toward_match = base >= matcher.threshold();
    let curve = deletion_curve_with_base(matcher, tokenized, units, &[fraction], base)?;
    Ok(class_score(base, toward_match) - curve[0].1)
}

/// Does deleting the single most-relevant unit flip the hard decision?
pub fn decision_flip(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
) -> Result<bool, crate::MetricError> {
    if tokenized.len() == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let base = base_probability(matcher, tokenized);
    decision_flip_with_base(matcher, tokenized, units, base)
}

/// [`decision_flip`] with a precomputed base probability.
pub fn decision_flip_with_base(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    base: f64,
) -> Result<bool, crate::MetricError> {
    let n = tokenized.len();
    if n == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let full = vec![true; n];
    let before = base >= matcher.threshold();
    let ranked = relevance_ranked_units(units, before);
    let Some(top) = ranked.first() else {
        return Ok(false);
    };
    let mut mask = full;
    for &i in &top.member_indices {
        if i < n {
            mask[i] = false;
        }
    }
    let after = matcher.predict_proba(&tokenized.apply_mask(&mask)) >= matcher.threshold();
    Ok(before != after)
}

/// Standard fraction grid used by the evaluation (10%..50% in 10% steps).
pub fn standard_fractions() -> Vec<f64> {
    vec![0.1, 0.2, 0.3, 0.4, 0.5]
}

/// Unit-level MoRF curve: the predicted class's score after removing the
/// top `u` relevance-ranked units, for `u = 0..=max_units`. This compares
/// explanations at *equal reading effort* — a CREW unit is a whole cluster,
/// a LIME unit a single word — which is the comprehensibility-fidelity
/// trade-off the cluster representation targets.
pub fn unit_deletion_curve(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    max_units: usize,
) -> Result<Vec<f64>, crate::MetricError> {
    if tokenized.len() == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let base = base_probability(matcher, tokenized);
    unit_deletion_curve_with_base(matcher, tokenized, units, max_units, base)
}

/// [`unit_deletion_curve`] with a precomputed base probability. The
/// `max_units` deletion counterfactuals go through one
/// `predict_proba_batch` call.
pub fn unit_deletion_curve_with_base(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    max_units: usize,
    base: f64,
) -> Result<Vec<f64>, crate::MetricError> {
    let n = tokenized.len();
    if n == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let toward_match = base >= matcher.threshold();
    let ranked = relevance_ranked_units(units, toward_match);
    let mut mask = vec![true; n];
    let mut probes: Vec<EntityPair> = Vec::with_capacity(max_units);
    for u in 0..max_units {
        if let Some(unit) = ranked.get(u) {
            for &i in &unit.member_indices {
                if i < n {
                    mask[i] = false;
                }
            }
        }
        probes.push(tokenized.apply_mask(&mask));
    }
    let mut out = Vec::with_capacity(max_units + 1);
    out.push(class_score(base, toward_match));
    for prob in matcher.predict_proba_batch(&probes) {
        out.push(class_score(prob, toward_match));
    }
    Ok(out)
}

/// Mean class-score drop over the first `max_units` unit deletions —
/// unit-level AOPC.
pub fn aopc_units(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    max_units: usize,
) -> Result<f64, crate::MetricError> {
    if tokenized.len() == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    let base = base_probability(matcher, tokenized);
    aopc_units_with_base(matcher, tokenized, units, max_units, base)
}

/// [`aopc_units`] with a precomputed base probability.
pub fn aopc_units_with_base(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    max_units: usize,
    base: f64,
) -> Result<f64, crate::MetricError> {
    if max_units == 0 {
        return Err(crate::MetricError::InvalidK(0));
    }
    let curve = unit_deletion_curve_with_base(matcher, tokenized, units, max_units, base)?;
    let base_cs = curve[0];
    Ok(curve[1..].iter().map(|cs| base_cs - cs).sum::<f64>() / max_units as f64)
}

/// The four headline fidelity metrics of one explained pair, as computed
/// by [`fidelity_probes_with_base`] in a single batched model query.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityProbes {
    /// [`aopc_deletion_with_base`] over the fraction grid.
    pub aopc_deletion: f64,
    /// [`aopc_units_with_base`] over the first `max_units` units.
    pub aopc_units: f64,
    /// [`decision_flip_with_base`] of the top-ranked unit.
    pub decision_flip: bool,
    /// [`sufficiency_with_base`] at the sufficiency fraction.
    pub sufficiency: f64,
}

/// All four headline fidelity metrics through **one**
/// `predict_proba_batch` call.
///
/// The individual `*_with_base` forms issue one batch (or scalar) model
/// query each, so an evaluation loop scoring a pair pays four dispatches
/// — which is where `store/headline` spent most of its self-time. This
/// entry point builds every probe mask up front — the deletion-fraction
/// masks, the cumulative unit-deletion masks, the top-unit flip mask
/// (when a unit exists) and the sufficiency mask — and queries them in a
/// single batch.
///
/// Values are identical to the individual forms: each probe's
/// probability depends only on its own masked pair (batch ≡ scalar is
/// pinned by the matcher test suites, at any batch composition), and the
/// per-metric aggregations here are verbatim copies. Validation order
/// also matches a sequential aopc → units → flip → sufficiency call
/// chain, so callers see the same first error.
pub fn fidelity_probes_with_base(
    matcher: &dyn Matcher,
    tokenized: &TokenizedPair,
    units: &[ExplanationUnit],
    fractions: &[f64],
    max_units: usize,
    suff_fraction: f64,
    base: f64,
) -> Result<FidelityProbes, crate::MetricError> {
    let n = tokenized.len();
    if fractions.is_empty() {
        return Err(crate::MetricError::EmptyFractionGrid);
    }
    if n == 0 {
        return Err(crate::MetricError::EmptyPair);
    }
    if max_units == 0 {
        return Err(crate::MetricError::InvalidK(0));
    }
    if !(0.0..=1.0).contains(&suff_fraction) {
        return Err(crate::MetricError::InvalidFraction(suff_fraction));
    }
    let toward_match = base >= matcher.threshold();
    let base_cs = class_score(base, toward_match);
    let order = deletion_order(units, toward_match);
    let ranked = relevance_ranked_units(units, toward_match);

    let mut probes: Vec<EntityPair> = Vec::with_capacity(fractions.len() + max_units + 2);
    // Deletion-curve probes, one per fraction (same masks as
    // `deletion_curve_with_base`).
    for &f in fractions {
        if !(0.0..=1.0).contains(&f) {
            return Err(crate::MetricError::InvalidFraction(f));
        }
        let k = ((n as f64) * f).round() as usize;
        let mut mask = vec![true; n];
        for &i in order.iter().take(k) {
            mask[i] = false;
        }
        probes.push(tokenized.apply_mask(&mask));
    }
    // Cumulative unit-deletion probes (same masks as
    // `unit_deletion_curve_with_base`).
    {
        let mut mask = vec![true; n];
        for u in 0..max_units {
            if let Some(unit) = ranked.get(u) {
                for &i in &unit.member_indices {
                    if i < n {
                        mask[i] = false;
                    }
                }
            }
            probes.push(tokenized.apply_mask(&mask));
        }
    }
    // Top-unit flip probe — absent when there are no units, in which
    // case the flip answer is `false` without a query.
    let has_flip_probe = if let Some(top) = ranked.first() {
        let mut mask = vec![true; n];
        for &i in &top.member_indices {
            if i < n {
                mask[i] = false;
            }
        }
        probes.push(tokenized.apply_mask(&mask));
        true
    } else {
        false
    };
    // Sufficiency probe (keep-only mask of `sufficiency_with_base`).
    {
        let k = ((n as f64) * suff_fraction).round().max(1.0) as usize;
        let mut mask = vec![false; n];
        for &i in order.iter().take(k) {
            mask[i] = true;
        }
        if mask.iter().all(|&b| !b) {
            mask[0] = true;
        }
        probes.push(tokenized.apply_mask(&mask));
    }

    let probs = matcher.predict_proba_batch(&probes);
    let (del, rest) = probs.split_at(fractions.len());
    let (unit_probs, rest) = rest.split_at(max_units);
    let aopc_deletion = del
        .iter()
        .map(|&p| base_cs - class_score(p, toward_match))
        .sum::<f64>()
        / fractions.len() as f64;
    let aopc_units = unit_probs
        .iter()
        .map(|&p| base_cs - class_score(p, toward_match))
        .sum::<f64>()
        / max_units as f64;
    let mut tail = rest.iter();
    let decision_flip = if has_flip_probe {
        let after = *tail.next().expect("flip probe present") >= matcher.threshold();
        toward_match != after
    } else {
        false
    };
    let sufficiency = class_score(
        *tail.next().expect("sufficiency probe present"),
        toward_match,
    );
    Ok(FidelityProbes {
        aopc_deletion,
        aopc_units,
        decision_flip,
        sufficiency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{EntityPair, Record, Schema};
    use std::sync::Arc;

    /// Score = fraction of the pair's original words still present.
    struct FractionMatcher {
        total: usize,
    }
    impl Matcher for FractionMatcher {
        fn name(&self) -> &str {
            "fraction"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            let count = em_text::token_count(&pair.left().full_text())
                + em_text::token_count(&pair.right().full_text());
            count as f64 / self.total as f64
        }
    }

    /// Predicts match iff the token "a" is present (p 0.9/0.1).
    struct OnlyA;
    impl Matcher for OnlyA {
        fn name(&self) -> &str {
            "only-a"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            if em_text::tokenize(&pair.left().full_text()).contains(&"a".to_string()) {
                0.9
            } else {
                0.1
            }
        }
    }

    /// Predicts NON-match iff "bad" is present: p = 0.2 with "bad", 0.8
    /// without — used to check the non-match direction of the metrics.
    struct BadToken;
    impl Matcher for BadToken {
        fn name(&self) -> &str {
            "bad-token"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            if em_text::tokenize(&pair.left().full_text()).contains(&"bad".to_string()) {
                0.2
            } else {
                0.8
            }
        }
    }

    fn tokenized() -> TokenizedPair {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["a b c d e".into()]),
            Record::new(1, vec!["f g h i j".into()]),
        )
        .unwrap();
        TokenizedPair::new(pair)
    }

    fn bad_tokenized() -> TokenizedPair {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["bad x y".into()]),
            Record::new(1, vec!["z w".into()]),
        )
        .unwrap();
        TokenizedPair::new(pair)
    }

    fn unit(indices: &[usize], weight: f64) -> ExplanationUnit {
        ExplanationUnit {
            member_indices: indices.to_vec(),
            weight,
        }
    }

    #[test]
    fn ranked_units_order_by_abs_weight() {
        let units = vec![unit(&[0], 0.1), unit(&[1], -0.9), unit(&[2], 0.5)];
        let ranked = ranked_units(&units);
        assert_eq!(ranked[0].member_indices, vec![1]);
        assert_eq!(ranked[1].member_indices, vec![2]);
    }

    #[test]
    fn relevance_ranking_flips_with_class() {
        let units = vec![unit(&[0], 0.1), unit(&[1], -0.9), unit(&[2], 0.5)];
        let for_match = relevance_ranked_units(&units, true);
        assert_eq!(for_match[0].member_indices, vec![2]);
        let for_non = relevance_ranked_units(&units, false);
        assert_eq!(for_non[0].member_indices, vec![1]);
    }

    #[test]
    fn deletion_order_expands_units_without_duplicates() {
        let units = vec![unit(&[0, 2], 0.9), unit(&[2, 3], 0.5)];
        assert_eq!(deletion_order(&units, true), vec![0, 2, 3]);
    }

    #[test]
    fn deletion_curve_monotone_for_fraction_matcher() {
        let tp = tokenized();
        let m = FractionMatcher { total: 10 };
        let units: Vec<ExplanationUnit> =
            (0..10).map(|i| unit(&[i], 1.0 - i as f64 * 0.05)).collect();
        let curve = deletion_curve(&m, &tp, &units, &[0.0, 0.2, 0.5, 1.0]).unwrap();
        assert_eq!(curve[0].1, 1.0);
        assert_eq!(curve[1].1, 0.8);
        assert_eq!(curve[2].1, 0.5);
        assert_eq!(curve[3].1, 0.0);
    }

    #[test]
    fn aopc_matches_hand_computation() {
        let tp = tokenized();
        let m = FractionMatcher { total: 10 };
        let units: Vec<ExplanationUnit> = (0..10).map(|i| unit(&[i], 1.0)).collect();
        let aopc = aopc_deletion(&m, &tp, &units, &[0.1, 0.2, 0.3]).unwrap();
        assert!((aopc - 0.2).abs() < 1e-9);
    }

    #[test]
    fn aopc_higher_for_correct_explanation() {
        let tp = tokenized();
        let correct = vec![unit(&[0], 1.0), unit(&[1], 0.01)];
        let wrong = vec![unit(&[5], 1.0), unit(&[6], 0.9)];
        let good = aopc_deletion(&OnlyA, &tp, &correct, &[0.1, 0.2]).unwrap();
        let bad = aopc_deletion(&OnlyA, &tp, &wrong, &[0.1, 0.2]).unwrap();
        assert!(good > bad, "good {good} bad {bad}");
        assert!(good > 0.5);
        assert!(bad.abs() < 1e-9);
    }

    #[test]
    fn aopc_rewards_negative_evidence_on_non_matches() {
        // BadToken predicts non-match (0.2 < 0.5). A correct explanation
        // gives "bad" a strongly negative weight; deleting it flips the
        // model toward match, which MUST count as positive AOPC.
        let tp = bad_tokenized();
        let correct = vec![unit(&[0], -0.8), unit(&[1], 0.05)];
        let aopc = aopc_deletion(&BadToken, &tp, &correct, &[0.2, 0.4]).unwrap();
        assert!(aopc > 0.2, "non-match AOPC should be positive, got {aopc}");
        // A wrong explanation (mass on filler words) scores ~zero.
        let wrong = vec![unit(&[3], -0.9), unit(&[4], -0.8)];
        let zero = aopc_deletion(&BadToken, &tp, &wrong, &[0.2, 0.4]).unwrap();
        assert!(zero.abs() < 1e-9, "wrong explanation scored {zero}");
    }

    #[test]
    fn sufficiency_of_the_right_words_is_high() {
        let tp = tokenized();
        let correct = vec![unit(&[0], 1.0)];
        let wrong = vec![unit(&[9], 1.0)];
        assert_eq!(sufficiency(&OnlyA, &tp, &correct, 0.1).unwrap(), 0.9);
        assert_eq!(sufficiency(&OnlyA, &tp, &wrong, 0.1).unwrap(), 0.1);
    }

    #[test]
    fn sufficiency_works_for_non_matches() {
        // Keeping only "bad" (the non-match evidence) preserves the
        // non-match class score 0.8.
        let tp = bad_tokenized();
        let correct = vec![unit(&[0], -0.9)];
        let s = sufficiency(&BadToken, &tp, &correct, 0.2).unwrap();
        assert_eq!(s, 0.8);
    }

    #[test]
    fn decision_flip_detects_critical_units() {
        let tp = tokenized();
        assert!(decision_flip(&OnlyA, &tp, &[unit(&[0], 1.0)]).unwrap());
        assert!(!decision_flip(&OnlyA, &tp, &[unit(&[5], 1.0)]).unwrap());
        assert!(!decision_flip(&OnlyA, &tp, &[]).unwrap());
        // Non-match side: deleting "bad" flips BadToken to match.
        let btp = bad_tokenized();
        assert!(decision_flip(&BadToken, &btp, &[unit(&[0], -0.9)]).unwrap());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let tp = tokenized();
        let m = FractionMatcher { total: 10 };
        let units = vec![unit(&[0], 1.0)];
        assert!(deletion_curve(&m, &tp, &units, &[1.5]).is_err());
        assert!(deletion_curve(&m, &tp, &units, &[-0.1]).is_err());
        assert!(aopc_deletion(&m, &tp, &units, &[]).is_err());
        assert!(sufficiency(&m, &tp, &units, 2.0).is_err());
        let schema = Arc::new(Schema::new(vec!["t"]));
        let empty = TokenizedPair::new(
            EntityPair::new(
                schema,
                Record::new(0, vec!["".into()]),
                Record::new(1, vec!["".into()]),
            )
            .unwrap(),
        );
        assert!(deletion_curve(&m, &empty, &units, &[0.1]).is_err());
    }

    #[test]
    fn unit_curve_removes_whole_units() {
        let tp = tokenized();
        let m = FractionMatcher { total: 10 };
        let units = vec![
            unit(&[0, 1, 2], 0.9),
            unit(&[3, 4, 5], 0.5),
            unit(&[6, 7, 8, 9], 0.1),
        ];
        let curve = unit_deletion_curve(&m, &tp, &units, 3).unwrap();
        assert_eq!(curve, vec![1.0, 0.7, 0.4, 0.0]);
        let aopc = aopc_units(&m, &tp, &units, 3).unwrap();
        assert!((aopc - (0.3 + 0.6 + 1.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unit_curve_handles_fewer_units_than_requested() {
        let tp = tokenized();
        let m = FractionMatcher { total: 10 };
        let units = vec![unit(&[0], 1.0)];
        let curve = unit_deletion_curve(&m, &tp, &units, 3).unwrap();
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[1], curve[2]);
        assert!(aopc_units(&m, &tp, &units, 0).is_err());
    }

    #[test]
    fn comprehensiveness_equals_base_minus_curve() {
        let tp = tokenized();
        let m = FractionMatcher { total: 10 };
        let units: Vec<ExplanationUnit> = (0..10).map(|i| unit(&[i], 1.0)).collect();
        let c = comprehensiveness(&m, &tp, &units, 0.3).unwrap();
        assert!((c - 0.3).abs() < 1e-9);
    }

    #[test]
    fn class_score_directions() {
        assert_eq!(class_score(0.8, true), 0.8);
        assert!((class_score(0.8, false) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn with_base_variants_match_plain_forms() {
        let tp = tokenized();
        let m = FractionMatcher { total: 10 };
        let units: Vec<ExplanationUnit> =
            (0..10).map(|i| unit(&[i], 1.0 - i as f64 * 0.05)).collect();
        let base = base_probability(&m, &tp);
        let grid = [0.0, 0.3, 0.6];
        assert_eq!(
            deletion_curve(&m, &tp, &units, &grid).unwrap(),
            deletion_curve_with_base(&m, &tp, &units, &grid, base).unwrap()
        );
        assert_eq!(
            aopc_deletion(&m, &tp, &units, &grid).unwrap(),
            aopc_deletion_with_base(&m, &tp, &units, &grid, base).unwrap()
        );
        assert_eq!(
            sufficiency(&m, &tp, &units, 0.2).unwrap(),
            sufficiency_with_base(&m, &tp, &units, 0.2, base).unwrap()
        );
        assert_eq!(
            comprehensiveness(&m, &tp, &units, 0.3).unwrap(),
            comprehensiveness_with_base(&m, &tp, &units, 0.3, base).unwrap()
        );
        assert_eq!(
            decision_flip(&m, &tp, &units).unwrap(),
            decision_flip_with_base(&m, &tp, &units, base).unwrap()
        );
        assert_eq!(
            unit_deletion_curve(&m, &tp, &units, 3).unwrap(),
            unit_deletion_curve_with_base(&m, &tp, &units, 3, base).unwrap()
        );
        assert_eq!(
            aopc_units(&m, &tp, &units, 3).unwrap(),
            aopc_units_with_base(&m, &tp, &units, 3, base).unwrap()
        );
    }

    #[test]
    fn combined_probes_match_individual_forms_bitwise() {
        let grid = [0.1, 0.2, 0.3];
        for (m, tp) in [
            (&FractionMatcher { total: 10 } as &dyn Matcher, tokenized()),
            (&OnlyA as &dyn Matcher, tokenized()),
            (&BadToken as &dyn Matcher, bad_tokenized()),
        ] {
            let units = vec![unit(&[0, 1], 0.9), unit(&[2], -0.4), unit(&[3], 0.2)];
            let base = base_probability(m, &tp);
            let combined = fidelity_probes_with_base(m, &tp, &units, &grid, 3, 0.3, base).unwrap();
            let aopc = aopc_deletion_with_base(m, &tp, &units, &grid, base).unwrap();
            let aopc_u = aopc_units_with_base(m, &tp, &units, 3, base).unwrap();
            let flip = decision_flip_with_base(m, &tp, &units, base).unwrap();
            let suff = sufficiency_with_base(m, &tp, &units, 0.3, base).unwrap();
            assert_eq!(combined.aopc_deletion.to_bits(), aopc.to_bits());
            assert_eq!(combined.aopc_units.to_bits(), aopc_u.to_bits());
            assert_eq!(combined.decision_flip, flip);
            assert_eq!(combined.sufficiency.to_bits(), suff.to_bits());
        }
    }

    #[test]
    fn combined_probes_with_no_units_report_no_flip() {
        let tp = tokenized();
        let m = FractionMatcher { total: 10 };
        let base = base_probability(&m, &tp);
        let combined = fidelity_probes_with_base(&m, &tp, &[], &[0.2, 0.4], 2, 0.3, base).unwrap();
        assert!(!combined.decision_flip);
        assert_eq!(
            combined.sufficiency,
            sufficiency_with_base(&m, &tp, &[], 0.3, base).unwrap()
        );
    }

    #[test]
    fn combined_probes_validate_like_the_individual_forms() {
        let tp = tokenized();
        let m = FractionMatcher { total: 10 };
        let units = vec![unit(&[0], 1.0)];
        let base = base_probability(&m, &tp);
        assert!(fidelity_probes_with_base(&m, &tp, &units, &[], 3, 0.3, base).is_err());
        assert!(fidelity_probes_with_base(&m, &tp, &units, &[1.5], 3, 0.3, base).is_err());
        assert!(fidelity_probes_with_base(&m, &tp, &units, &[0.1], 0, 0.3, base).is_err());
        assert!(fidelity_probes_with_base(&m, &tp, &units, &[0.1], 3, 2.0, base).is_err());
    }

    #[test]
    fn combined_probes_use_one_batch_query() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct BatchCounting {
            batches: AtomicUsize,
            queries: AtomicUsize,
        }
        impl Matcher for BatchCounting {
            fn name(&self) -> &str {
                "batch-counting"
            }
            fn predict_proba(&self, _pair: &EntityPair) -> f64 {
                self.queries.fetch_add(1, Ordering::SeqCst);
                0.7
            }
            fn predict_proba_batch(&self, pairs: &[EntityPair]) -> Vec<f64> {
                self.batches.fetch_add(1, Ordering::SeqCst);
                self.queries.fetch_add(pairs.len(), Ordering::SeqCst);
                vec![0.7; pairs.len()]
            }
        }
        let tp = tokenized();
        let units = vec![unit(&[0], 1.0), unit(&[1], 0.5)];
        let m = BatchCounting {
            batches: AtomicUsize::new(0),
            queries: AtomicUsize::new(0),
        };
        let base = base_probability(&m, &tp);
        assert_eq!(m.queries.load(Ordering::SeqCst), 1);
        fidelity_probes_with_base(&m, &tp, &units, &[0.1, 0.2, 0.3], 3, 0.3, base).unwrap();
        assert_eq!(m.batches.load(Ordering::SeqCst), 1, "one batched dispatch");
        // 3 fraction probes + 3 unit probes + flip + sufficiency.
        assert_eq!(m.queries.load(Ordering::SeqCst), 1 + 8);
    }

    #[test]
    fn with_base_forms_skip_the_base_query() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct CountingMatcher {
            calls: AtomicUsize,
        }
        impl Matcher for CountingMatcher {
            fn name(&self) -> &str {
                "counting"
            }
            fn predict_proba(&self, _pair: &EntityPair) -> f64 {
                self.calls.fetch_add(1, Ordering::SeqCst);
                0.7
            }
        }
        let tp = tokenized();
        let units = vec![unit(&[0], 1.0)];
        let m = CountingMatcher {
            calls: AtomicUsize::new(0),
        };
        let base = base_probability(&m, &tp);
        assert_eq!(m.calls.load(Ordering::SeqCst), 1);
        deletion_curve_with_base(&m, &tp, &units, &[0.1, 0.2, 0.3], base).unwrap();
        assert_eq!(
            m.calls.load(Ordering::SeqCst),
            4,
            "3 probes, no base re-query"
        );
        sufficiency_with_base(&m, &tp, &units, 0.2, base).unwrap();
        assert_eq!(m.calls.load(Ordering::SeqCst), 5);
        decision_flip_with_base(&m, &tp, &units, base).unwrap();
        assert_eq!(m.calls.load(Ordering::SeqCst), 6);
        unit_deletion_curve_with_base(&m, &tp, &units, 2, base).unwrap();
        assert_eq!(m.calls.load(Ordering::SeqCst), 8);
    }
}
