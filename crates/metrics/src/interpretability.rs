//! Interpretability proxies: the paper's claim is that CREW explanations
//! are easier for users to digest. Without rerunning the user study we
//! measure the standard proxies — explanation size, semantic coherence of
//! units, attribute purity and compression.

use crew_core::ExplanationUnit;
use em_data::WordUnit;
use em_embed::WordEmbeddings;

/// Interpretability summary of one explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpretabilityReport {
    /// Number of units the reader must inspect.
    pub unit_count: usize,
    /// Words per unit on average.
    pub mean_unit_size: f64,
    /// Mean pairwise embedding similarity inside multi-word units
    /// (singletons count as 1.0): are the grouped words actually related?
    pub semantic_coherence: f64,
    /// Fraction of units whose words all share one attribute.
    pub attribute_purity: f64,
    /// Words covered per unit: `covered_words / unit_count` (≥ 1;
    /// higher = more compression of the evidence).
    pub compression: f64,
}

/// Compute the interpretability report for a unit list.
pub fn interpretability(
    units: &[ExplanationUnit],
    words: &[WordUnit],
    embeddings: &WordEmbeddings,
) -> Result<InterpretabilityReport, crate::MetricError> {
    if units.is_empty() {
        return Ok(InterpretabilityReport {
            unit_count: 0,
            mean_unit_size: 0.0,
            semantic_coherence: 0.0,
            attribute_purity: 0.0,
            compression: 0.0,
        });
    }
    let mut covered = std::collections::HashSet::new();
    let mut total_size = 0usize;
    let mut coherence_sum = 0.0;
    let mut pure = 0usize;
    for u in units {
        if u.member_indices.is_empty() {
            return Err(crate::MetricError::EmptyUnit);
        }
        for &i in &u.member_indices {
            if i >= words.len() {
                return Err(crate::MetricError::UnitIndexOutOfRange {
                    index: i,
                    n: words.len(),
                });
            }
            covered.insert(i);
        }
        total_size += u.member_indices.len();
        coherence_sum += crew_core::semantic_coherence(words, &u.member_indices, embeddings);
        let first_attr = words[u.member_indices[0]].attribute;
        if u.member_indices
            .iter()
            .all(|&i| words[i].attribute == first_attr)
        {
            pure += 1;
        }
    }
    let k = units.len();
    Ok(InterpretabilityReport {
        unit_count: k,
        mean_unit_size: total_size as f64 / k as f64,
        semantic_coherence: coherence_sum / k as f64,
        attribute_purity: pure as f64 / k as f64,
        compression: covered.len() as f64 / k as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{EntityPair, Record, Schema, TokenizedPair};
    use em_embed::EmbeddingOptions;
    use std::sync::Arc;

    fn words() -> Vec<WordUnit> {
        let schema = Arc::new(Schema::new(vec!["title", "brand"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["sonix tv black".into(), "sonix".into()]),
            Record::new(1, vec!["sonix tv".into(), "sonix".into()]),
        )
        .unwrap();
        TokenizedPair::new(pair).words().to_vec()
    }

    fn embeddings() -> WordEmbeddings {
        let corpus: Vec<Vec<String>> = ["sonix tv black", "sonix tv white"]
            .iter()
            .map(|s| em_text::tokenize(s))
            .collect();
        WordEmbeddings::train(
            corpus.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 8,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn unit(indices: &[usize], weight: f64) -> ExplanationUnit {
        ExplanationUnit {
            member_indices: indices.to_vec(),
            weight,
        }
    }

    #[test]
    fn counts_and_sizes() {
        // words: 0 sonix,1 tv,2 black (L.title), 3 sonix (L.brand),
        //        4 sonix,5 tv (R.title), 6 sonix (R.brand)
        let units = vec![unit(&[0, 4], 0.5), unit(&[1, 5], 0.3), unit(&[2], -0.1)];
        let r = interpretability(&units, &words(), &embeddings()).unwrap();
        assert_eq!(r.unit_count, 3);
        assert!((r.mean_unit_size - 5.0 / 3.0).abs() < 1e-9);
        assert!((r.compression - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn purity_detects_attribute_mixing() {
        let pure_units = vec![unit(&[0, 4], 0.5), unit(&[3, 6], 0.2)];
        let r = interpretability(&pure_units, &words(), &embeddings()).unwrap();
        assert_eq!(r.attribute_purity, 1.0);
        // Mixing title word 0 with brand word 3 halves purity.
        let mixed = vec![unit(&[0, 3], 0.5), unit(&[1, 5], 0.2)];
        let r2 = interpretability(&mixed, &words(), &embeddings()).unwrap();
        assert_eq!(r2.attribute_purity, 0.5);
    }

    #[test]
    fn coherent_units_score_higher() {
        let same_word = vec![unit(&[0, 4], 0.5)]; // sonix + sonix
        let different = vec![unit(&[1, 2], 0.5)]; // tv + black
        let a = interpretability(&same_word, &words(), &embeddings()).unwrap();
        let b = interpretability(&different, &words(), &embeddings()).unwrap();
        assert!(a.semantic_coherence >= b.semantic_coherence);
        assert_eq!(a.semantic_coherence, 1.0);
    }

    #[test]
    fn empty_units_list_is_neutral() {
        let r = interpretability(&[], &words(), &embeddings()).unwrap();
        assert_eq!(r.unit_count, 0);
        assert_eq!(r.compression, 0.0);
    }

    #[test]
    fn invalid_units_rejected() {
        let bad = vec![unit(&[], 0.1)];
        assert!(interpretability(&bad, &words(), &embeddings()).is_err());
        let oob = vec![unit(&[99], 0.1)];
        assert!(matches!(
            interpretability(&oob, &words(), &embeddings()),
            Err(crate::MetricError::UnitIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn singleton_units_give_compression_one() {
        let units = vec![unit(&[0], 0.4), unit(&[1], 0.2)];
        let r = interpretability(&units, &words(), &embeddings()).unwrap();
        assert_eq!(r.compression, 1.0);
        assert_eq!(r.mean_unit_size, 1.0);
        assert_eq!(r.semantic_coherence, 1.0);
    }
}
