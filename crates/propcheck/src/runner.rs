//! Case execution: deterministic seeding, panic capture, stream-level
//! shrinking, and persisted regression streams.

use crate::source::ChoiceSource;
use crate::strategy::Strategy;
use em_rngs::splitmix64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*` failed or the body panicked.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required (default 64; env
    /// `PROPCHECK_CASES` overrides).
    pub cases: u32,
    /// Abort if this many cases are rejected before `cases` pass.
    pub max_rejects: u32,
    /// Maximum number of candidate replays during shrinking.
    pub shrink_budget: u32,
    /// Persist shrunk counterexamples to `propcheck-regressions/` (also
    /// disabled by env `PROPCHECK_NO_PERSIST=1`).
    pub persist: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config::with_cases(64)
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            max_rejects: cases * 8 + 100,
            shrink_budget: 1024,
            persist: true,
        }
    }
}

enum CaseOutcome {
    Pass,
    Reject,
    Fail {
        message: String,
        value_debug: String,
    },
}

fn run_case<S, F>(strategy: &S, f: &F, source: &mut ChoiceSource) -> CaseOutcome
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    // Generation is inside the unwind guard too: a panicking prop_map
    // closure is a failing case to shrink, not a harness abort.
    match catch_unwind(AssertUnwindSafe(|| {
        let value = strategy.generate(source);
        let value_debug = format!("{value:?}");
        (f(value), value_debug)
    })) {
        Ok((Ok(()), _)) => CaseOutcome::Pass,
        Ok((Err(TestCaseError::Reject), _)) => CaseOutcome::Reject,
        Ok((Err(TestCaseError::Fail(message)), value_debug)) => CaseOutcome::Fail {
            message,
            value_debug,
        },
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "test body panicked".to_string());
            CaseOutcome::Fail {
                message: format!("panic: {message}"),
                value_debug: "<unavailable: panicked during generation or run>".to_string(),
            }
        }
    }
}

/// Execute a property. Called by the [`crate::proptest!`] macro; panics
/// (failing the enclosing `#[test]`) on the first shrunk counterexample.
pub fn run<S, F>(config: Config, test_name: &str, manifest_dir: &str, strategy: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPCHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let base_seed = std::env::var("PROPCHECK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fnv1a(test_name));
    let regressions = RegressionFile::for_test(manifest_dir, test_name);

    // Replay persisted failures before generating anything new.
    for stream in regressions.load() {
        let mut source = ChoiceSource::replay(stream);
        if let CaseOutcome::Fail {
            message,
            value_debug,
        } = run_case(strategy, &f, &mut source)
        {
            panic!(
                "[propcheck] {test_name}: persisted regression still fails\n\
                 minimal input: {value_debug}\n{message}\n(file: {})",
                regressions.path.display()
            );
        }
    }

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < cases {
        let mut seed_state = base_seed ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = splitmix64(&mut seed_state);
        case_index += 1;
        let mut source = ChoiceSource::random(seed);
        match run_case(strategy, &f, &mut source) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject => {
                rejected += 1;
                if rejected > config.max_rejects {
                    panic!(
                        "[propcheck] {test_name}: {rejected} cases rejected by prop_assume! \
                         before {cases} passed — generator and assumptions disagree"
                    );
                }
            }
            CaseOutcome::Fail { message, .. } => {
                let recorded = source.recorded().to_vec();
                let (stream, value_debug, message) =
                    shrink(&config, strategy, &f, recorded, message);
                let persisted = if config.persist {
                    regressions.persist(&stream)
                } else {
                    String::new()
                };
                panic!(
                    "[propcheck] {test_name} failed (seed {seed}, case {case_index})\n\
                     minimal input: {value_debug}\n{message}{persisted}"
                );
            }
        }
    }
}

/// Stream-level shrinking: delete draw blocks, zero blocks, then reduce
/// individual draws, keeping any candidate that still fails. Returns the
/// best stream with its regenerated value rendering and failure message.
fn shrink<S, F>(
    config: &Config,
    strategy: &S,
    f: &F,
    initial: Vec<u64>,
    initial_message: String,
) -> (Vec<u64>, String, String)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut best = initial;
    let mut best_message = initial_message;
    let mut best_debug = None; // lazily re-rendered at the end
    let mut budget = config.shrink_budget;

    // Returns Some((trimmed_stream, message)) if the candidate still fails.
    let mut attempt = |candidate: &[u64], budget: &mut u32| -> Option<(Vec<u64>, String)> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let mut source = ChoiceSource::replay(candidate.to_vec());
        match run_case(strategy, f, &mut source) {
            // Keep only the draws generation actually consumed, so the
            // persisted stream carries no dead tail.
            CaseOutcome::Fail {
                message,
                value_debug,
            } => {
                best_debug = Some(value_debug);
                Some((source.recorded().to_vec(), message))
            }
            _ => None,
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: delete blocks of draws (shortens collections/strings).
        for block in [32usize, 8, 4, 2, 1] {
            let mut start = 0;
            while start < best.len() {
                let end = (start + block).min(best.len());
                let candidate: Vec<u64> =
                    best[..start].iter().chain(&best[end..]).copied().collect();
                match attempt(&candidate, &mut budget) {
                    Some((stream, message)) => {
                        best = stream;
                        best_message = message;
                        improved = true;
                        // Do not advance: the next block slid into `start`.
                    }
                    None => start += block,
                }
            }
        }

        // Pass 2: zero blocks (drives values to range minimums).
        for block in [8usize, 4, 1] {
            let mut start = 0;
            while start < best.len() {
                let end = (start + block).min(best.len());
                if best[start..end].iter().all(|&v| v == 0) {
                    start += block;
                    continue;
                }
                let mut candidate = best.clone();
                candidate[start..end].fill(0);
                match attempt(&candidate, &mut budget) {
                    Some((stream, message)) => {
                        best = stream;
                        best_message = message;
                        improved = true;
                    }
                    None => {}
                }
                start += block;
            }
        }

        // Pass 3: halve individual draws, falling back to a single
        // decrement when halving overshoots past the failure boundary.
        let mut i = 0;
        while i < best.len() {
            while best[i] > 0 && budget > 0 {
                let halved = best[i] / 2;
                let mut candidate = best.clone();
                candidate[i] = halved;
                if let Some((stream, message)) = attempt(&candidate, &mut budget) {
                    best = stream;
                    best_message = message;
                    improved = true;
                } else if best[i] > halved + 1 {
                    let mut candidate = best.clone();
                    candidate[i] = best[i] - 1;
                    match attempt(&candidate, &mut budget) {
                        Some((stream, message)) => {
                            best = stream;
                            best_message = message;
                            improved = true;
                        }
                        None => break,
                    }
                } else {
                    break;
                }
                if i >= best.len() {
                    // A successful attempt trimmed the stream below i.
                    break;
                }
            }
            i += 1;
        }

        if !improved || budget == 0 {
            break;
        }
    }

    // Re-render the minimal value if no shrink attempt succeeded.
    let debug = best_debug.unwrap_or_else(|| {
        let mut source = ChoiceSource::replay(best.clone());
        format!("{:?}", strategy.generate(&mut source))
    });
    (best, debug, best_message)
}

/// Persisted regression streams for one property, one file per test under
/// `<crate>/propcheck-regressions/`.
struct RegressionFile {
    path: PathBuf,
}

impl RegressionFile {
    fn for_test(manifest_dir: &str, test_name: &str) -> Self {
        let file: String = test_name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '_' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        RegressionFile {
            path: PathBuf::from(manifest_dir)
                .join("propcheck-regressions")
                .join(format!("{file}.txt")),
        }
    }

    fn load(&self) -> Vec<Vec<u64>> {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("cc ")?;
                rest.split(',')
                    .map(|v| v.trim().parse::<u64>().ok())
                    .collect()
            })
            .collect()
    }

    /// Append the stream (deduplicated); returns a note for the panic
    /// message. Set `PROPCHECK_NO_PERSIST=1` to disable.
    fn persist(&self, stream: &[u64]) -> String {
        if std::env::var_os("PROPCHECK_NO_PERSIST").is_some() {
            return String::new();
        }
        let line = format!(
            "cc {}",
            stream
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let existing = std::fs::read_to_string(&self.path).unwrap_or_default();
        if existing.lines().any(|l| l.trim() == line) {
            return format!(
                "\n(regression already persisted in {})",
                self.path.display()
            );
        }
        let header = if existing.is_empty() {
            "# propcheck regression streams: shrunk choice streams of past\n\
             # failures, replayed before new cases on every run. Check in.\n"
        } else {
            ""
        };
        if let Some(dir) = self.path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&self.path, format!("{existing}{header}{line}\n")) {
            Ok(()) => format!("\n(regression persisted to {})", self.path.display()),
            Err(e) => format!("\n(could not persist regression: {e})"),
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_to_completion() {
        run(
            Config::with_cases(64),
            "runner::always_passes",
            env!("CARGO_MANIFEST_DIR"),
            &(0u64..100),
            |n| {
                assert!(n < 100);
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_panics_with_minimal_case() {
        let result = catch_unwind(|| {
            run(
                Config {
                    persist: false,
                    ..Config::with_cases(64)
                },
                "runner::fails_above_ten",
                env!("CARGO_MANIFEST_DIR"),
                &(0u64..1000),
                |n| {
                    if n > 10 {
                        Err(TestCaseError::fail(format!("{n} too big")))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let message = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(()) => panic!("property should have failed"),
        };
        // The unique minimal failing case is 11.
        assert!(message.contains("minimal input: 11"), "got: {message}");
    }

    #[test]
    fn shrinking_reduces_vectors_to_the_boundary() {
        let strategy = (crate::collection::vec(0u64..1000, 0..20),);
        let result = catch_unwind(|| {
            run(
                Config {
                    persist: false,
                    ..Config::with_cases(200)
                },
                "runner::sum_overflows",
                env!("CARGO_MANIFEST_DIR"),
                &strategy,
                |(v,)| {
                    if v.iter().sum::<u64>() >= 1000 {
                        Err(TestCaseError::fail("sum too big".into()))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let message = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(()) => panic!("property should have failed"),
        };
        // A minimal-ish counterexample is a short vector with sum just
        // over the boundary — shrinking must get below 3 elements.
        let open = message.find('[').expect("vector in message");
        let close = message.find(']').unwrap();
        let elements: Vec<&str> = message[open + 1..close]
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .collect();
        assert!(elements.len() <= 2, "poorly shrunk: {message}");
    }

    #[test]
    fn rejects_are_not_counted_as_passes() {
        let counter = std::cell::Cell::new(0u32);
        run(
            Config::with_cases(32),
            "runner::rejects_half",
            env!("CARGO_MANIFEST_DIR"),
            &(0u64..100),
            |n| {
                if n % 2 == 0 {
                    Err(TestCaseError::reject())
                } else {
                    counter.set(counter.get() + 1);
                    Ok(())
                }
            },
        );
        assert_eq!(counter.get(), 32);
    }

    #[test]
    fn panics_in_the_body_are_failures_not_aborts() {
        let result = catch_unwind(|| {
            run(
                Config {
                    persist: false,
                    ..Config::with_cases(16)
                },
                "runner::body_panics",
                env!("CARGO_MANIFEST_DIR"),
                &(0u64..10),
                |n| {
                    assert!(n >= 100, "boom {n}");
                    Ok(())
                },
            );
        });
        let message = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(message.contains("panic: boom"), "got: {message}");
    }

    #[test]
    fn regression_file_round_trips() {
        let dir = std::env::temp_dir().join("propcheck-test-regressions");
        let _ = std::fs::remove_dir_all(&dir);
        let file = RegressionFile::for_test(dir.to_str().unwrap(), "mod::case");
        assert!(file.load().is_empty());
        file.persist(&[1, 2, 3]);
        file.persist(&[1, 2, 3]); // duplicate ignored
        file.persist(&[9]);
        assert_eq!(file.load(), vec![vec![1, 2, 3], vec![9]]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
