//! The choice stream: the single source of randomness for strategies,
//! recording every draw so failing cases can be replayed and shrunk.

use em_rngs::rngs::StdRng;
use em_rngs::{RngCore, SeedableRng};

/// A recorded source of `u64` choices. In random mode draws come from a
/// seeded [`StdRng`]; in replay mode they come from a stored stream
/// (zero once exhausted, which biases replay toward minimal values).
pub struct ChoiceSource {
    rng: Option<StdRng>,
    replay: Vec<u64>,
    pos: usize,
    recorded: Vec<u64>,
}

impl ChoiceSource {
    pub fn random(seed: u64) -> Self {
        ChoiceSource {
            rng: Some(StdRng::seed_from_u64(seed)),
            replay: Vec::new(),
            pos: 0,
            recorded: Vec::new(),
        }
    }

    pub fn replay(stream: Vec<u64>) -> Self {
        ChoiceSource {
            rng: None,
            replay: stream,
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// The draws made so far (the replayable description of this case).
    pub fn recorded(&self) -> &[u64] {
        &self.recorded
    }

    pub fn next_u64(&mut self) -> u64 {
        let v = match &mut self.rng {
            Some(rng) => rng.next_u64(),
            None => self.replay.get(self.pos).copied().unwrap_or(0),
        };
        self.pos += 1;
        self.recorded.push(v);
        v
    }

    /// Uniform-ish draw in `[0, n)`, mapping draw 0 to 0 so stream
    /// shrinking moves values toward the low end of their range. The
    /// modulo bias is irrelevant for test-case generation and, unlike
    /// rejection sampling, keeps replayed streams aligned.
    pub fn below(&mut self, n: u64) -> u64 {
        if n <= 1 {
            // Still consume a draw so stream positions stay stable.
            self.next_u64();
            return 0;
        }
        self.next_u64() % n
    }

    /// Draw in `[0, 1)`; draw 0 maps to 0.0 (shrinks toward the bottom).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaying_the_record_reproduces_draws() {
        let mut a = ChoiceSource::random(7);
        let draws: Vec<u64> = (0..10).map(|_| a.below(100)).collect();
        let mut b = ChoiceSource::replay(a.recorded().to_vec());
        let replayed: Vec<u64> = (0..10).map(|_| b.below(100)).collect();
        assert_eq!(draws, replayed);
    }

    #[test]
    fn exhausted_replay_yields_zero() {
        let mut s = ChoiceSource::replay(vec![42]);
        assert_eq!(s.next_u64(), 42);
        assert_eq!(s.next_u64(), 0);
        assert_eq!(s.below(1000), 0);
    }

    #[test]
    fn below_handles_degenerate_spans() {
        let mut s = ChoiceSource::random(1);
        assert_eq!(s.below(0), 0);
        assert_eq!(s.below(1), 0);
        for _ in 0..100 {
            assert!(s.below(7) < 7);
        }
    }
}
