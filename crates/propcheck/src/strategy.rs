//! The [`Strategy`] trait and the built-in strategies: regex-lite string
//! patterns (`&str`), numeric ranges, tuples, and `prop_map`.

use crate::pattern::Pattern;
use crate::source::ChoiceSource;
use std::fmt::Debug;

/// A generator of test values, driven entirely by a [`ChoiceSource`] so
/// cases can be replayed and shrunk at the stream level.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, source: &mut ChoiceSource) -> Self::Value;

    /// Transform generated values (shrinking passes through for free,
    /// because shrinking operates on the underlying choice stream).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, source: &mut ChoiceSource) -> Self::Value {
        (**self).generate(source)
    }
}

/// `&str` regex-lite patterns, e.g. `"[a-z0-9]{0,12}"` or `".{0,40}"`.
impl Strategy for str {
    type Value = String;
    fn generate(&self, source: &mut ChoiceSource) -> String {
        Pattern::parse(self).generate(source)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, source: &mut ChoiceSource) -> $t {
                assert!(self.start < self.end, "empty strategy range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + source.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, source: &mut ChoiceSource) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range {lo}..={hi}");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + source.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, source: &mut ChoiceSource) -> $t {
                assert!(self.start < self.end, "empty strategy range {:?}", self);
                let v = self.start + source.unit_f64() as $t * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    T: Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, source: &mut ChoiceSource) -> T {
        (self.f)(self.inner.generate(source))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, source: &mut ChoiceSource) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(source),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F2)
);

/// A strategy that always yields clones of one value.
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut ChoiceSource) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen<S: Strategy>(s: &S, seed: u64) -> S::Value {
        s.generate(&mut ChoiceSource::random(seed))
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        for seed in 0..50 {
            let s: String = gen(&"[a-c]{1,3}", seed);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn int_and_float_ranges_stay_in_bounds() {
        for seed in 0..50 {
            let a = gen(&(3usize..12), seed);
            assert!((3..12).contains(&a));
            let b = gen(&(0u64..1000), seed);
            assert!(b < 1000);
            let c = gen(&(-1.0f64..1.0), seed);
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn replay_of_zero_stream_is_minimal() {
        let mut s = ChoiceSource::replay(Vec::new());
        assert_eq!((3usize..12).generate(&mut s), 3);
        assert_eq!((-1.0f64..1.0).generate(&mut s), -1.0);
        assert_eq!("[a-z]{0,5}".generate(&mut s), "");
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = ("[a-b]{1,2}".prop_map(|s| s.len()), 1usize..4);
        for seed in 0..20 {
            let (len, n) = gen(&strat, seed);
            assert!((1..=2).contains(&len));
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let strat = ("[a-z0-9]{0,12}", 0.0f64..1.0);
        assert_eq!(gen(&strat, 9).0, gen(&strat, 9).0);
        assert_eq!(gen(&strat, 9).1, gen(&strat, 9).1);
    }
}
