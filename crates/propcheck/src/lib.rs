//! # propcheck
//!
//! A minimal in-tree property-testing harness for the hermetic CREW
//! build, API-compatible with the subset of `proptest` the workspace
//! uses: the [`proptest!`] macro, `&str` regex-lite string strategies,
//! numeric range strategies, [`collection::vec`], tuples, `prop_map`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! ## How it works
//!
//! Generation is driven by a recorded **choice stream** ([`source::ChoiceSource`]):
//! every random decision a strategy makes is one `u64` drawn from the
//! stream. A failing case is therefore fully described by its stream,
//! which enables two things:
//!
//! 1. **Shrinking** (Hypothesis-style): the runner mutates the recorded
//!    stream — deleting draws, zeroing blocks, and reducing individual
//!    values — and replays generation. Because every strategy maps
//!    smaller draws to "smaller" values (shorter strings, smaller
//!    numbers, shorter vectors), stream-level shrinking shrinks values
//!    through any combinator, including `prop_map`.
//! 2. **Persisted regressions**: the shrunk stream of a failure is
//!    appended to `propcheck-regressions/<test>.txt` in the failing
//!    crate and replayed before new cases on every subsequent run.
//!
//! Case seeds derive deterministically from the test name (override
//! with `PROPCHECK_SEED`), so CI is hermetic; `PROPCHECK_CASES`
//! overrides the per-property case count (default 64).

pub mod collection;
pub mod pattern;
pub mod runner;
pub mod source;
pub mod strategy;

pub use runner::{Config, TestCaseError};
pub use strategy::Strategy;

/// Name-compatible alias for the `proptest` config type.
pub type ProptestConfig = Config;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Config, ProptestConfig,
        Strategy,
    };
}

/// Fails the current property with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fails the current property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left != right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Discards the current case (not counted as a run) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal `#[test]` that runs the body over generated
/// inputs, shrinking and persisting failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::Config = $cfg;
            let strategy = ($($strat,)+);
            $crate::runner::run(
                config,
                concat!(module_path!(), "::", stringify!($name)),
                env!("CARGO_MANIFEST_DIR"),
                &strategy,
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}
