//! Regex-lite string patterns: the subset of regex syntax `proptest`
//! string strategies were used with in this workspace — sequences of
//! character classes (`[a-z0-9 .,()-]`), the any-char dot, and literal
//! characters, each with an optional `{m}`, `{m,n}`, `?`, `*` or `+`
//! quantifier. Unsupported syntax panics at test definition time.

use crate::source::ChoiceSource;

/// Alphabet for `.`: printable ASCII plus a handful of multi-byte and
/// no-lowercase-mapping code points so Unicode edge cases stay covered.
const ANY_EXTRA: [char; 8] = ['é', 'ß', 'Ω', 'æ', 'ñ', '中', '𝘼', '€'];

/// Unbounded quantifiers (`*`, `+`) cap their repetition here.
const UNBOUNDED_MAX: usize = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// Explicit set of candidate characters.
    Class(Vec<char>),
    /// `.` — anything except a newline.
    Any,
}

#[derive(Debug, Clone)]
struct Rep {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A parsed pattern: a sequence of repeated atoms.
#[derive(Debug, Clone)]
pub struct Pattern {
    reps: Vec<Rep>,
}

impl Pattern {
    pub fn parse(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut reps = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                        + i;
                    let class = parse_class(&chars[i + 1..close], pattern);
                    i = close + 1;
                    Atom::Class(class)
                }
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '(' | ')' | '|' | '^' | '$' => {
                    panic!(
                        "unsupported regex syntax {:?} in pattern {pattern:?}",
                        chars[i]
                    )
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 1;
                    Atom::Class(vec![c])
                }
                c => {
                    i += 1;
                    Atom::Class(vec![c])
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern);
            reps.push(Rep { atom, min, max });
        }
        Pattern { reps }
    }

    pub fn generate(&self, source: &mut ChoiceSource) -> String {
        let mut out = String::new();
        for rep in &self.reps {
            let count = rep.min + source.below((rep.max - rep.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(match &rep.atom {
                    Atom::Class(chars) => chars[source.below(chars.len() as u64) as usize],
                    Atom::Any => {
                        let ascii_len = 0x7Fusize - 0x20; // ' '..='~'
                        let idx = source.below((ascii_len + ANY_EXTRA.len()) as u64) as usize;
                        if idx < ascii_len {
                            (0x20u8 + idx as u8) as char
                        } else {
                            ANY_EXTRA[idx - ascii_len]
                        }
                    }
                });
            }
        }
        out
    }
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    assert!(
        body[0] != '^',
        "negated classes unsupported in pattern {pattern:?}"
    );
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // `a-z` forms a range when '-' sits between two chars; a '-' that
        // is first or last in the class is a literal.
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pattern:?}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    out
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let parse = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier {body:?} in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let (lo, hi) = (parse(lo), parse(hi));
                    assert!(
                        lo <= hi,
                        "inverted quantifier {body:?} in pattern {pattern:?}"
                    );
                    (lo, hi)
                }
                None => {
                    let n = parse(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_MAX)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_MAX)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &str, seed: u64) -> String {
        Pattern::parse(pattern).generate(&mut ChoiceSource::random(seed))
    }

    #[test]
    fn class_with_ranges_literals_and_trailing_dash() {
        for seed in 0..100 {
            let s = sample("[ a-zA-Z0-9,.-]{0,40}", seed);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, ' ' | ',' | '.' | '-')));
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn space_to_tilde_range() {
        for seed in 0..100 {
            let s = sample("[ -~]{0,15}", seed);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn dot_covers_unicode_and_never_newline() {
        let mut saw_multibyte = false;
        for seed in 0..500 {
            let s = sample(".{0,40}", seed);
            assert!(!s.contains('\n'));
            saw_multibyte |= s.chars().any(|c| c.len_utf8() > 1);
        }
        assert!(
            saw_multibyte,
            "dot alphabet never produced a multi-byte char"
        );
    }

    #[test]
    fn exact_and_shorthand_quantifiers() {
        for seed in 0..30 {
            assert_eq!(sample("[ab]{3}", seed).chars().count(), 3);
            assert!(sample("a?", seed).chars().count() <= 1);
            let plus = sample("[xy]+", seed);
            assert!((1..=UNBOUNDED_MAX).contains(&plus.chars().count()));
            assert!(sample("[xy]*", seed).chars().count() <= UNBOUNDED_MAX);
        }
    }

    #[test]
    fn literal_sequences_and_escapes() {
        assert_eq!(sample("abc", 1), "abc");
        assert_eq!(sample(r"a\.b", 1), "a.b");
    }

    #[test]
    fn length_range_is_reachable_at_both_ends() {
        let (mut saw_min, mut saw_max) = (false, false);
        for seed in 0..200 {
            let n = sample("[a-c]{1,3}", seed).chars().count();
            assert!((1..=3).contains(&n));
            saw_min |= n == 1;
            saw_max |= n == 3;
        }
        assert!(saw_min && saw_max);
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn groups_are_rejected() {
        Pattern::parse("(ab)+");
    }
}
