//! Collection strategies, mirroring `proptest::collection`.

use crate::source::ChoiceSource;
use crate::strategy::Strategy;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Element count for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// `Vec` strategy: draws a length from `size`, then each element.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, source: &mut ChoiceSource) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + source.below(span) as usize;
        (0..len).map(|_| self.element.generate(source)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_and_elements_respect_strategies() {
        for seed in 0..100 {
            let mut src = ChoiceSource::random(seed);
            let v = vec("[a-c]{1,3}", 0..8).generate(&mut src);
            assert!(v.len() < 8);
            for s in &v {
                assert!((1..=3).contains(&s.chars().count()));
            }
        }
    }

    #[test]
    fn vec_of_floats_with_inclusive_size() {
        for seed in 0..50 {
            let mut src = ChoiceSource::random(seed);
            let v = vec(-100.0f64..100.0, 2..=20).generate(&mut src);
            assert!((2..=20).contains(&v.len()));
            assert!(v.iter().all(|x| (-100.0..100.0).contains(x)));
        }
    }

    #[test]
    fn zero_replay_gives_minimal_vec() {
        let mut src = ChoiceSource::replay(Vec::new());
        let v = vec(0u64..100, 1..5).generate(&mut src);
        assert_eq!(v, std::vec![0]);
    }
}
