//! Two-collection generation for the streaming pipeline: instead of a
//! pre-blocked labelled pair list (see [`crate::generate`]), emit two raw
//! record collections the way a production deduplication job receives
//! them — a "left" source of clean listings and a "right" source holding
//! corrupted duplicates of some of them plus records of its own — along
//! with the ground-truth duplicate id pairs for recall accounting.
//!
//! Every generated duplicate is guaranteed to share at least
//! [`MIN_SHARED_TOKENS`] tokens (each at least [`MIN_TOKEN_LEN`] long)
//! with its original: corruption draws are retried until the overlap
//! survives, falling back to a light profile and finally to a verbatim
//! copy. Token/n-gram blocking over such collections therefore provably
//! reaches recall 1.0 — the property `stream_blocking.rs` asserts.

use crate::corrupt::CorruptionProfile;
use crate::family::Family;
use crate::generator::corrupt_entity;
use em_data::{Record, Schema};
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// Duplicates keep at least this many tokens in common with their
/// original (see the module docs).
pub const MIN_SHARED_TOKENS: usize = 2;
/// Tokens shorter than this do not count toward the shared-token
/// guarantee (blocking schemes commonly drop one-character tokens).
pub const MIN_TOKEN_LEN: usize = 2;

/// Configuration of one two-collection workload.
#[derive(Debug, Clone, Copy)]
pub struct CollectionsConfig {
    /// Base entities; the left collection holds one clean record each.
    pub entities: usize,
    /// Fraction of left entities that also appear (corrupted) on the
    /// right — the true duplicates the pipeline must find.
    pub duplicate_rate: f64,
    /// Right-only records with no left counterpart (sampled fresh), the
    /// non-match bulk a real feed would carry.
    pub extra_right: usize,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
}

impl Default for CollectionsConfig {
    fn default() -> Self {
        CollectionsConfig {
            entities: 400,
            duplicate_rate: 0.4,
            extra_right: 120,
            seed: 7,
        }
    }
}

/// Two record collections plus the ground-truth duplicate pairs.
#[derive(Debug, Clone)]
pub struct RecordCollections {
    pub schema: Arc<Schema>,
    pub left: Vec<Record>,
    pub right: Vec<Record>,
    /// `(left id, right id)` of every true duplicate, in left-id order.
    pub true_matches: Vec<(u64, u64)>,
}

/// Tokens of an entity's joined values that count toward the
/// shared-token guarantee.
fn salient_tokens(values: &[String]) -> HashSet<String> {
    let mut out = HashSet::new();
    for v in values {
        for t in em_text::tokenize(v) {
            if t.len() >= MIN_TOKEN_LEN {
                out.insert(t);
            }
        }
    }
    out
}

/// Corrupt `values` while preserving token overlap with the original
/// (retrying, then degrading the profile, then copying verbatim).
fn corrupt_preserving_overlap(
    values: &[String],
    profile: &CorruptionProfile,
    rng: &mut StdRng,
) -> Vec<String> {
    let original = salient_tokens(values);
    for attempt in 0..8 {
        let light;
        let profile = if attempt < 5 {
            profile
        } else {
            light = CorruptionProfile::mild();
            &light
        };
        let candidate = corrupt_entity(values, profile, rng);
        let shared = salient_tokens(&candidate).intersection(&original).count();
        if shared >= MIN_SHARED_TOKENS.min(original.len()) {
            return candidate;
        }
    }
    values.to_vec()
}

/// Generate the two collections of `(family, config)`. Deterministic for
/// a given config; right-record ids start at `config.entities` so ids
/// are unique across both collections.
pub fn record_collections(
    family: Family,
    config: CollectionsConfig,
) -> Result<RecordCollections, crate::SynthError> {
    if config.entities < 2 {
        return Err(crate::SynthError::TooFewEntities(config.entities));
    }
    if !(0.0..=1.0).contains(&config.duplicate_rate) {
        return Err(crate::SynthError::InvalidRate(
            "duplicate_rate",
            config.duplicate_rate,
        ));
    }

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x636f_6c6c ^ family_salt_of(family));
    let schema = Arc::new(family.schema());
    let profile = family.profile();

    let entities: Vec<Vec<String>> = (0..config.entities)
        .map(|_| family.sample_entity(&mut rng))
        .collect();

    let left: Vec<Record> = entities
        .iter()
        .enumerate()
        .map(|(i, vals)| Record::new(i as u64, vals.clone()))
        .collect();

    let mut right = Vec::new();
    let mut true_matches = Vec::new();
    let mut next_right_id = config.entities as u64;
    for (i, vals) in entities.iter().enumerate() {
        if rng.gen_range(0.0..1.0) < config.duplicate_rate {
            let dup = corrupt_preserving_overlap(vals, &profile, &mut rng);
            right.push(Record::new(next_right_id, dup));
            true_matches.push((i as u64, next_right_id));
            next_right_id += 1;
        }
    }
    for _ in 0..config.extra_right {
        let vals = family.sample_entity(&mut rng);
        right.push(Record::new(next_right_id, vals));
        next_right_id += 1;
    }

    Ok(RecordCollections {
        schema,
        left,
        right,
        true_matches,
    })
}

fn family_salt_of(family: Family) -> u64 {
    // Distinct from the generator salt so a collections workload never
    // replays the labelled-dataset entity stream of the same seed.
    match family {
        Family::Products => 0x5f70_726f,
        Family::Citations => 0x5f63_6974,
        Family::Restaurants => 0x5f72_6573,
        Family::Songs => 0x5f73_6f6e,
        Family::Beers => 0x5f62_6565,
        Family::Electronics => 0x5f65_6c65,
        Family::Scholar => 0x5f73_6368,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CollectionsConfig {
        CollectionsConfig {
            entities: 60,
            duplicate_rate: 0.5,
            extra_right: 20,
            seed: 11,
        }
    }

    #[test]
    fn collections_have_expected_shape() {
        let c = record_collections(Family::Products, small()).unwrap();
        assert_eq!(c.left.len(), 60);
        assert!(!c.true_matches.is_empty());
        assert_eq!(c.right.len(), c.true_matches.len() + 20);
        // Ids are unique across both collections.
        let mut ids: Vec<u64> = c.left.iter().chain(&c.right).map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), c.left.len() + c.right.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = record_collections(Family::Restaurants, small()).unwrap();
        let b = record_collections(Family::Restaurants, small()).unwrap();
        assert_eq!(a.true_matches, b.true_matches);
        for (x, y) in a.right.iter().zip(&b.right) {
            assert_eq!(x.values(), y.values());
        }
    }

    #[test]
    fn every_duplicate_shares_tokens_with_its_original() {
        for family in [Family::Products, Family::Songs, Family::Citations] {
            let c = record_collections(family, small()).unwrap();
            for &(li, ri) in &c.true_matches {
                let left = &c.left[li as usize];
                let right = c.right.iter().find(|r| r.id == ri).unwrap();
                let shared = salient_tokens(left.values())
                    .intersection(&salient_tokens(right.values()))
                    .count();
                assert!(
                    shared >= 1,
                    "{family:?} duplicate ({li},{ri}) shares no tokens"
                );
            }
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(record_collections(
            Family::Beers,
            CollectionsConfig {
                entities: 1,
                ..small()
            }
        )
        .is_err());
        assert!(record_collections(
            Family::Beers,
            CollectionsConfig {
                duplicate_rate: 1.5,
                ..small()
            }
        )
        .is_err());
    }
}
