//! Dataset generation: base entities → labelled candidate pairs with
//! corrupted match variants and (hard) negative pairs, mirroring how the
//! ER-Magellan benchmark candidate sets were produced by blocking.

use crate::corrupt::{corrupt_value, CorruptionProfile};
use crate::family::Family;
use em_data::{Dataset, EntityPair, Label, LabeledPair, Record};
use em_rngs::rngs::StdRng;
use em_rngs::seq::SliceRandom;
use em_rngs::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Number of base entities in the simulated "clean world".
    pub entities: usize,
    /// Total labelled candidate pairs to emit.
    pub pairs: usize,
    /// Fraction of pairs that are matches (class imbalance knob).
    pub match_rate: f64,
    /// Among non-matches, the fraction sharing the family blocking key —
    /// these are the confusable negatives blocking would let through.
    pub hard_negative_rate: f64,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            entities: 400,
            pairs: 1200,
            match_rate: 0.18,
            hard_negative_rate: 0.6,
            seed: 7,
        }
    }
}

/// Generate a labelled dataset for a family.
pub fn generate(family: Family, config: GeneratorConfig) -> Result<Dataset, crate::SynthError> {
    if config.entities < 2 {
        return Err(crate::SynthError::TooFewEntities(config.entities));
    }
    if config.pairs == 0 {
        return Err(crate::SynthError::NoPairs);
    }
    if !(0.0..=1.0).contains(&config.match_rate) {
        return Err(crate::SynthError::InvalidRate(
            "match_rate",
            config.match_rate,
        ));
    }
    if !(0.0..=1.0).contains(&config.hard_negative_rate) {
        return Err(crate::SynthError::InvalidRate(
            "hard_negative_rate",
            config.hard_negative_rate,
        ));
    }

    let mut rng = StdRng::seed_from_u64(config.seed ^ family_salt(family));
    let schema = Arc::new(family.schema());
    let profile = family.profile();

    // Base entities. The "left" source keeps them clean; the "right" source
    // sees corrupted variants.
    let entities: Vec<Vec<String>> = (0..config.entities)
        .map(|_| family.sample_entity(&mut rng))
        .collect();

    // Group entity indices by blocking key for hard negatives.
    let block_attr = family.blocking_attribute();
    let mut blocks: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, e) in entities.iter().enumerate() {
        blocks.entry(e[block_attr].as_str()).or_default().push(i);
    }
    // Keys in deterministic order for reproducible sampling.
    let mut block_keys: Vec<&str> = blocks.keys().copied().collect();
    block_keys.sort_unstable();
    let multi_blocks: Vec<&Vec<usize>> = block_keys
        .iter()
        .filter_map(|k| {
            let v = &blocks[k];
            (v.len() >= 2).then_some(v)
        })
        .collect();

    let n_matches = (config.pairs as f64 * config.match_rate).round() as usize;
    let n_nonmatches = config.pairs - n_matches;
    let n_hard = (n_nonmatches as f64 * config.hard_negative_rate).round() as usize;

    let mut examples = Vec::with_capacity(config.pairs);
    let mut next_id: u64 = 0;
    let mut fresh_id = || {
        let id = next_id;
        next_id += 1;
        id
    };

    // Matches: same entity, right side corrupted.
    for _ in 0..n_matches {
        let idx = rng.gen_range(0..entities.len());
        let left_vals = entities[idx].clone();
        let right_vals = corrupt_entity(&entities[idx], &profile, &mut rng);
        let pair = EntityPair::new(
            Arc::clone(&schema),
            Record::new(fresh_id(), left_vals),
            Record::new(fresh_id(), right_vals),
        )?;
        examples.push(LabeledPair {
            pair,
            label: Label::Match,
        });
    }

    // Hard negatives: two distinct entities from the same block.
    let mut hard_made = 0usize;
    if !multi_blocks.is_empty() {
        while hard_made < n_hard {
            let block = multi_blocks[rng.gen_range(0..multi_blocks.len())];
            let a = block[rng.gen_range(0..block.len())];
            let b = block[rng.gen_range(0..block.len())];
            if a == b {
                continue;
            }
            let pair = EntityPair::new(
                Arc::clone(&schema),
                Record::new(fresh_id(), entities[a].clone()),
                Record::new(fresh_id(), corrupt_entity(&entities[b], &profile, &mut rng)),
            )?;
            examples.push(LabeledPair {
                pair,
                label: Label::NonMatch,
            });
            hard_made += 1;
        }
    }

    // Random negatives for the remainder.
    while examples.len() < config.pairs {
        let a = rng.gen_range(0..entities.len());
        let b = rng.gen_range(0..entities.len());
        if a == b {
            continue;
        }
        let pair = EntityPair::new(
            Arc::clone(&schema),
            Record::new(fresh_id(), entities[a].clone()),
            Record::new(fresh_id(), corrupt_entity(&entities[b], &profile, &mut rng)),
        )?;
        examples.push(LabeledPair {
            pair,
            label: Label::NonMatch,
        });
    }

    // Shuffle so label order carries no signal, then done.
    examples.shuffle(&mut rng);
    Ok(Dataset::new(family.dataset_name(), schema, examples)?)
}

pub(crate) fn corrupt_entity(
    values: &[String],
    profile: &CorruptionProfile,
    rng: &mut StdRng,
) -> Vec<String> {
    values
        .iter()
        .map(|v| corrupt_value(v, profile, rng))
        .collect()
}

fn family_salt(family: Family) -> u64 {
    match family {
        Family::Products => 0x70726f64,
        Family::Citations => 0x63697465,
        Family::Restaurants => 0x72657374,
        Family::Songs => 0x736f6e67,
        Family::Beers => 0x62656572,
        Family::Electronics => 0x656c6563,
        Family::Scholar => 0x7363686f,
    }
}

/// The extended suite: the five core families plus electronics and
/// scholar, all derived from one seed.
pub fn extended_benchmark(seed: u64) -> Result<Vec<Dataset>, crate::SynthError> {
    let mut suite = standard_benchmark(seed)?;
    for (fam, match_rate) in [(Family::Electronics, 0.10), (Family::Scholar, 0.16)] {
        suite.push(generate(
            fam,
            GeneratorConfig {
                match_rate,
                seed,
                ..GeneratorConfig::default()
            },
        )?);
    }
    Ok(suite)
}

/// The fixed benchmark suite used by every experiment: one dataset per
/// core family with family-specific class imbalance, all derived from one
/// seed.
pub fn standard_benchmark(seed: u64) -> Result<Vec<Dataset>, crate::SynthError> {
    let spec = [
        (Family::Products, 0.12),
        (Family::Citations, 0.18),
        (Family::Restaurants, 0.22),
        (Family::Songs, 0.15),
        (Family::Beers, 0.20),
    ];
    spec.iter()
        .map(|&(fam, match_rate)| {
            generate(
                fam,
                GeneratorConfig {
                    match_rate,
                    seed,
                    ..GeneratorConfig::default()
                },
            )
        })
        .collect()
}

/// A single synthetic products pair whose two records total roughly
/// `target_tokens` tokens — the scaling workload for the runtime figure.
pub fn scaling_pair(target_tokens: usize, seed: u64) -> EntityPair {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Arc::new(Family::Products.schema());
    let base = Family::Products.sample_entity(&mut rng);
    let mut left = base.clone();
    let mut right = corrupt_entity(&base, &CorruptionProfile::moderate(), &mut rng);
    // Pad both descriptions with filler tokens until the total is reached.
    let filler: Vec<&str> = crate::pools::PRODUCT_ADJECTIVES
        .iter()
        .chain(crate::pools::COLORS)
        .copied()
        .collect();
    loop {
        let pair = EntityPair::new(
            Arc::clone(&schema),
            Record::new(0, left.clone()),
            Record::new(1, right.clone()),
        )
        .expect("schema-aligned by construction");
        if pair.token_count() >= target_tokens {
            return pair;
        }
        let w = filler[rng.gen_range(0..filler.len())];
        left[2].push(' ');
        left[2].push_str(w);
        let w2 = filler[rng.gen_range(0..filler.len())];
        right[2].push(' ');
        right[2].push_str(w2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            entities: 50,
            pairs: 120,
            match_rate: 0.25,
            hard_negative_rate: 0.5,
            seed,
        }
    }

    #[test]
    fn generates_requested_size_and_rate() {
        let d = generate(Family::Products, small_config(1)).unwrap();
        assert_eq!(d.len(), 120);
        let rate = d.match_count() as f64 / d.len() as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Family::Songs, small_config(9)).unwrap();
        let b = generate(Family::Songs, small_config(9)).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.examples().iter().zip(b.examples()) {
            assert_eq!(x.label.is_match(), y.label.is_match());
            assert_eq!(x.pair.left().values(), y.pair.left().values());
            assert_eq!(x.pair.right().values(), y.pair.right().values());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(Family::Beers, small_config(1)).unwrap();
        let b = generate(Family::Beers, small_config(2)).unwrap();
        let same = a
            .examples()
            .iter()
            .zip(b.examples())
            .filter(|(x, y)| x.pair.left().values() == y.pair.left().values())
            .count();
        assert!(same < a.len(), "seeds produced identical datasets");
    }

    #[test]
    fn matches_have_higher_overlap_than_nonmatches() {
        let d = generate(Family::Citations, small_config(3)).unwrap();
        let mut match_sim = Vec::new();
        let mut non_sim = Vec::new();
        for ex in d.examples() {
            let l = em_text::tokenize(&ex.pair.left().full_text());
            let r = em_text::tokenize(&ex.pair.right().full_text());
            let j = em_text::jaccard(&l, &r);
            if ex.label.is_match() {
                match_sim.push(j);
            } else {
                non_sim.push(j);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            avg(&match_sim) > avg(&non_sim) + 0.2,
            "match overlap {} vs non {}",
            avg(&match_sim),
            avg(&non_sim)
        );
    }

    #[test]
    fn hard_negatives_share_blocking_key() {
        let cfg = GeneratorConfig {
            entities: 40,
            pairs: 100,
            match_rate: 0.0,
            hard_negative_rate: 1.0,
            seed: 4,
        };
        let d = generate(Family::Products, cfg).unwrap();
        // With match_rate 0 and hard rate 1, most negatives share the brand
        // (corruption can null or typo the brand on the right side).
        let brand_attr = Family::Products.blocking_attribute();
        let share = d
            .examples()
            .iter()
            .filter(|e| {
                let l = e.pair.left().value(brand_attr);
                let r = e.pair.right().value(brand_attr);
                !l.is_empty() && l == r
            })
            .count();
        assert!(share > d.len() / 2, "only {share}/{} share key", d.len());
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(generate(
            Family::Beers,
            GeneratorConfig {
                entities: 1,
                ..small_config(0)
            }
        )
        .is_err());
        assert!(generate(
            Family::Beers,
            GeneratorConfig {
                pairs: 0,
                ..small_config(0)
            }
        )
        .is_err());
        assert!(generate(
            Family::Beers,
            GeneratorConfig {
                match_rate: 1.5,
                ..small_config(0)
            }
        )
        .is_err());
        assert!(generate(
            Family::Beers,
            GeneratorConfig {
                hard_negative_rate: -0.1,
                ..small_config(0)
            }
        )
        .is_err());
    }

    #[test]
    fn standard_benchmark_produces_all_families() {
        let suite = standard_benchmark(7).unwrap();
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.iter().map(|d| d.name()).collect();
        assert!(names.contains(&"synth-products"));
        assert!(names.contains(&"synth-beers"));
        for d in &suite {
            assert_eq!(d.len(), 1200);
            assert!(d.match_count() > 0);
        }
    }

    #[test]
    fn extended_benchmark_adds_two_families() {
        let suite = extended_benchmark(7).unwrap();
        assert_eq!(suite.len(), 7);
        let names: Vec<&str> = suite.iter().map(|d| d.name()).collect();
        assert!(names.contains(&"synth-electronics"));
        assert!(names.contains(&"synth-scholar"));
        // Electronics has the 5-attribute schema.
        let elec = suite
            .iter()
            .find(|d| d.name() == "synth-electronics")
            .unwrap();
        assert_eq!(elec.schema().len(), 5);
    }

    #[test]
    fn scaling_pair_hits_token_target() {
        for target in [20, 60, 120] {
            let p = scaling_pair(target, 3);
            assert!(p.token_count() >= target);
            assert!(p.token_count() < target + 30);
        }
    }

    #[test]
    fn scaling_pair_is_deterministic() {
        let a = scaling_pair(50, 11);
        let b = scaling_pair(50, 11);
        assert_eq!(a.left().values(), b.left().values());
        assert_eq!(a.right().values(), b.right().values());
    }
}
