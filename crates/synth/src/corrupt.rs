//! Seeded corruption operators that turn a clean entity description into a
//! "same entity, different source" variant — the phenomena real
//! ER-Magellan datasets exhibit: typos, abbreviations, dropped/reordered
//! tokens, rewritten units, missing attributes.

use em_rngs::rngs::StdRng;
use em_rngs::Rng;

/// Intensity knobs for the corruption pipeline (all probabilities in [0,1]).
#[derive(Debug, Clone, Copy)]
pub struct CorruptionProfile {
    /// Per-token probability of a character-level typo.
    pub typo: f64,
    /// Per-token probability of abbreviating (keep a prefix + '.')-style.
    pub abbreviate: f64,
    /// Per-token probability of dropping the token entirely.
    pub drop_token: f64,
    /// Probability of shuffling adjacent token pairs once per value.
    pub swap_adjacent: f64,
    /// Per-attribute probability of nulling the whole value.
    pub null_attribute: f64,
    /// Per-numeric-token probability of small numeric jitter (e.g. price).
    pub numeric_jitter: f64,
}

impl CorruptionProfile {
    /// Mild corruption: near-duplicates (DBLP-ACM-like).
    pub fn mild() -> Self {
        CorruptionProfile {
            typo: 0.03,
            abbreviate: 0.05,
            drop_token: 0.05,
            swap_adjacent: 0.05,
            null_attribute: 0.02,
            numeric_jitter: 0.05,
        }
    }

    /// Moderate corruption (Amazon-Google-like).
    pub fn moderate() -> Self {
        CorruptionProfile {
            typo: 0.06,
            abbreviate: 0.10,
            drop_token: 0.12,
            swap_adjacent: 0.10,
            null_attribute: 0.06,
            numeric_jitter: 0.15,
        }
    }

    /// Heavy corruption: dirty sources (Abt-Buy-like textual noise).
    pub fn heavy() -> Self {
        CorruptionProfile {
            typo: 0.10,
            abbreviate: 0.15,
            drop_token: 0.20,
            swap_adjacent: 0.15,
            null_attribute: 0.12,
            numeric_jitter: 0.25,
        }
    }
}

/// Apply a character-level typo: substitution, deletion, insertion or
/// transposition, chosen uniformly. ASCII-oriented (the generators only
/// emit ASCII); non-ASCII tokens are returned unchanged.
pub fn typo(word: &str, rng: &mut StdRng) -> String {
    if word.is_empty() || !word.is_ascii() {
        return word.to_string();
    }
    let mut chars: Vec<u8> = word.as_bytes().to_vec();
    let pos = rng.gen_range(0..chars.len());
    match rng.gen_range(0..4u8) {
        0 => {
            // substitution with a nearby lowercase letter
            chars[pos] = b'a' + rng.gen_range(0..26u8);
        }
        1 => {
            if chars.len() > 1 {
                chars.remove(pos);
            }
        }
        2 => {
            chars.insert(pos, b'a' + rng.gen_range(0..26u8));
        }
        _ => {
            if pos + 1 < chars.len() {
                chars.swap(pos, pos + 1);
            } else if chars.len() > 1 {
                chars.swap(pos, pos - 1);
            }
        }
    }
    String::from_utf8(chars).unwrap_or_else(|_| word.to_string())
}

/// Abbreviate a word: keep the first 1-4 characters. Words of length ≤ 3
/// are returned unchanged.
pub fn abbreviate(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() <= 3 {
        return word.to_string();
    }
    let keep = rng.gen_range(1..=4.min(chars.len() - 1));
    chars[..keep].iter().collect()
}

/// Jitter a numeric token by up to ±15% (keeps integer-ness).
pub fn jitter_number(word: &str, rng: &mut StdRng) -> String {
    if let Ok(n) = word.parse::<f64>() {
        let factor = 1.0 + rng.gen_range(-0.15f64..0.15);
        let jittered = n * factor;
        if word.contains('.') {
            format!("{jittered:.2}")
        } else {
            format!("{}", jittered.round() as i64)
        }
    } else {
        word.to_string()
    }
}

/// Corrupt one attribute value according to the profile. Deterministic for
/// a given RNG state.
pub fn corrupt_value(value: &str, profile: &CorruptionProfile, rng: &mut StdRng) -> String {
    if value.is_empty() {
        return String::new();
    }
    if rng.gen_bool(profile.null_attribute.clamp(0.0, 1.0)) {
        return String::new();
    }
    let mut tokens: Vec<String> = value.split_whitespace().map(|s| s.to_string()).collect();
    // Token-level operators.
    let mut out: Vec<String> = Vec::with_capacity(tokens.len());
    for tok in tokens.drain(..) {
        if rng.gen_bool(profile.drop_token.clamp(0.0, 1.0)) && out.len() + 1 < 64 {
            continue;
        }
        let tok = if tok.chars().all(|c| c.is_ascii_digit() || c == '.')
            && rng.gen_bool(profile.numeric_jitter.clamp(0.0, 1.0))
        {
            jitter_number(&tok, rng)
        } else if rng.gen_bool(profile.abbreviate.clamp(0.0, 1.0)) {
            abbreviate(&tok, rng)
        } else if rng.gen_bool(profile.typo.clamp(0.0, 1.0)) {
            typo(&tok, rng)
        } else {
            tok
        };
        out.push(tok);
    }
    // Keep at least one token so a "match" pair retains some evidence.
    if out.is_empty() {
        if let Some(first) = value.split_whitespace().next() {
            out.push(first.to_string());
        }
    }
    if out.len() >= 2 && rng.gen_bool(profile.swap_adjacent.clamp(0.0, 1.0)) {
        let i = rng.gen_range(0..out.len() - 1);
        out.swap(i, i + 1);
    }
    out.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_rngs::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn typo_changes_but_stays_close() {
        let mut r = rng(1);
        for _ in 0..50 {
            let t = typo("panasonic", &mut r);
            assert!(em_text::levenshtein("panasonic", &t) <= 2);
        }
    }

    #[test]
    fn typo_edge_cases() {
        let mut r = rng(2);
        assert_eq!(typo("", &mut r), "");
        // Single char: never empties to zero-length via deletion guard.
        for _ in 0..20 {
            let t = typo("a", &mut r);
            assert!(!t.is_empty());
        }
        // Non-ASCII passes through.
        assert_eq!(typo("café", &mut r), "café");
    }

    #[test]
    fn abbreviate_shortens_long_words_only() {
        let mut r = rng(3);
        assert_eq!(abbreviate("tv", &mut r), "tv");
        assert_eq!(abbreviate("abc", &mut r), "abc");
        for _ in 0..20 {
            let a = abbreviate("international", &mut r);
            assert!(a.len() < "international".len());
            assert!("international".starts_with(&a));
        }
    }

    #[test]
    fn jitter_number_stays_within_15_percent() {
        let mut r = rng(4);
        for _ in 0..50 {
            let j: f64 = jitter_number("100", &mut r).parse().unwrap();
            assert!((84.0..=116.0).contains(&j), "jittered to {j}");
        }
        assert_eq!(jitter_number("abc", &mut r), "abc");
    }

    #[test]
    fn jitter_preserves_decimal_format() {
        let mut r = rng(5);
        let j = jitter_number("99.99", &mut r);
        assert!(j.contains('.'));
        assert!(j.parse::<f64>().is_ok());
    }

    #[test]
    fn corrupt_value_is_deterministic_per_seed() {
        let p = CorruptionProfile::moderate();
        let v = "sony bravia 55 inch oled tv";
        let a = corrupt_value(v, &p, &mut rng(42));
        let b = corrupt_value(v, &p, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_value_never_empties_nonempty_input_unless_nulled() {
        let p = CorruptionProfile {
            typo: 0.5,
            abbreviate: 0.5,
            drop_token: 0.95,
            swap_adjacent: 0.5,
            null_attribute: 0.0,
            numeric_jitter: 0.5,
        };
        let mut r = rng(6);
        for _ in 0..50 {
            let c = corrupt_value("alpha beta gamma", &p, &mut r);
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn null_attribute_probability_one_always_nulls() {
        let p = CorruptionProfile {
            null_attribute: 1.0,
            ..CorruptionProfile::mild()
        };
        let mut r = rng(7);
        assert_eq!(corrupt_value("anything here", &p, &mut r), "");
    }

    #[test]
    fn empty_value_stays_empty() {
        let p = CorruptionProfile::heavy();
        let mut r = rng(8);
        assert_eq!(corrupt_value("", &p, &mut r), "");
    }

    #[test]
    fn mild_profile_preserves_most_tokens() {
        let p = CorruptionProfile::mild();
        let mut r = rng(9);
        let original = "the quick brown fox jumps over the lazy dog again and again";
        let mut kept = 0usize;
        let mut total = 0usize;
        for _ in 0..30 {
            let c = corrupt_value(original, &p, &mut r);
            let orig_tokens: Vec<&str> = original.split_whitespace().collect();
            let new_tokens: Vec<&str> = c.split_whitespace().collect();
            total += orig_tokens.len();
            kept += orig_tokens
                .iter()
                .filter(|t| new_tokens.contains(t))
                .count();
        }
        assert!(
            kept as f64 / total as f64 > 0.75,
            "mild should keep >75% tokens"
        );
    }

    #[test]
    fn heavy_profile_corrupts_more_than_mild() {
        let original = "alpha beta gamma delta epsilon zeta eta theta";
        let sim = |p: &CorruptionProfile, seed: u64| {
            let mut r = rng(seed);
            let mut total = 0.0;
            for _ in 0..40 {
                let c = corrupt_value(original, p, &mut r);
                total += em_text::jaccard(&em_text::tokenize(original), &em_text::tokenize(&c));
            }
            total / 40.0
        };
        assert!(sim(&CorruptionProfile::mild(), 1) > sim(&CorruptionProfile::heavy(), 1));
    }
}
