//! Static word pools backing the five synthetic dataset families. The
//! pools are invented-but-plausible tokens (no scraped data) sized so that
//! per-dataset vocabularies land in the few-hundred-word range real
//! ER-Magellan datasets have.

pub const BRANDS: &[&str] = &[
    "sonix",
    "panatech",
    "grundwald",
    "veltron",
    "koyama",
    "ashford",
    "lumetra",
    "brixton",
    "danvers",
    "quorra",
    "zelmont",
    "harwick",
    "nordvik",
    "calyxo",
    "tremona",
    "ostrel",
    "fenwick",
    "maruyama",
    "delacroix",
    "vantor",
];

pub const PRODUCT_TYPES: &[&str] = &[
    "television",
    "headphones",
    "laptop",
    "camera",
    "speaker",
    "monitor",
    "printer",
    "router",
    "keyboard",
    "microwave",
    "blender",
    "vacuum",
    "projector",
    "soundbar",
    "tablet",
    "drone",
];

pub const PRODUCT_ADJECTIVES: &[&str] = &[
    "wireless",
    "portable",
    "compact",
    "digital",
    "smart",
    "ultra",
    "premium",
    "professional",
    "gaming",
    "bluetooth",
    "rechargeable",
    "waterproof",
    "foldable",
    "ergonomic",
];

pub const COLORS: &[&str] = &[
    "black", "white", "silver", "graphite", "navy", "red", "titanium", "green",
];

pub const UNITS: &[&str] = &["inch", "cm", "gb", "tb", "watt", "hz", "mah", "mp"];

pub const FIRST_NAMES: &[&str] = &[
    "alba", "boris", "carla", "dmitri", "elena", "farid", "greta", "hiro", "ines", "jonas",
    "katya", "luca", "mira", "nadia", "otto", "priya", "quentin", "rosa", "stefan", "tomoko",
];

pub const LAST_NAMES: &[&str] = &[
    "moretti",
    "vasquez",
    "lindqvist",
    "okafor",
    "petrov",
    "tanaka",
    "berger",
    "silva",
    "novak",
    "eriksen",
    "delgado",
    "hoffmann",
    "kovacs",
    "yamada",
    "duarte",
    "weiss",
    "marchetti",
    "solberg",
    "ivanova",
    "fontaine",
];

pub const PAPER_TOPIC_WORDS: &[&str] = &[
    "scalable",
    "distributed",
    "adaptive",
    "efficient",
    "incremental",
    "probabilistic",
    "declarative",
    "approximate",
    "parallel",
    "streaming",
    "semantic",
    "relational",
];

pub const PAPER_OBJECT_WORDS: &[&str] = &[
    "query",
    "index",
    "join",
    "transaction",
    "schema",
    "matching",
    "clustering",
    "integration",
    "provenance",
    "caching",
    "sampling",
    "optimization",
    "learning",
    "retrieval",
];

pub const PAPER_SUFFIX_WORDS: &[&str] = &[
    "databases",
    "systems",
    "networks",
    "warehouses",
    "graphs",
    "streams",
    "pipelines",
    "architectures",
];

pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "edbt", "cikm", "kdd", "wsdm", "sigir",
];

pub const CUISINES: &[&str] = &[
    "italian",
    "japanese",
    "mexican",
    "thai",
    "french",
    "indian",
    "korean",
    "lebanese",
    "spanish",
    "vietnamese",
];

pub const CITIES: &[&str] = &[
    "rivermouth",
    "eastvale",
    "cedarburg",
    "lakewood",
    "marlowe",
    "ashport",
    "northgate",
    "willowbrook",
    "ferndale",
    "oakhurst",
];

pub const STREET_WORDS: &[&str] = &[
    "main", "oak", "maple", "harbor", "sunset", "park", "mill", "grove", "bridge", "station",
];

pub const RESTAURANT_WORDS: &[&str] = &[
    "golden", "garden", "villa", "corner", "royal", "little", "blue", "olive", "lotus", "ember",
    "harvest", "copper", "jade", "rustic",
];

pub const RESTAURANT_NOUNS: &[&str] = &[
    "kitchen",
    "bistro",
    "grill",
    "table",
    "house",
    "cafe",
    "tavern",
    "trattoria",
    "cantina",
    "brasserie",
];

pub const ARTIST_WORDS: &[&str] = &[
    "midnight",
    "velvet",
    "electric",
    "crimson",
    "golden",
    "silent",
    "wandering",
    "neon",
    "hollow",
    "paper",
];

pub const ARTIST_NOUNS: &[&str] = &[
    "foxes", "harbors", "engines", "sparrows", "mirrors", "tides", "lanterns", "arrows", "rivers",
    "echoes",
];

pub const SONG_WORDS: &[&str] = &[
    "dreaming",
    "falling",
    "running",
    "burning",
    "waiting",
    "breathing",
    "shining",
    "drifting",
    "holding",
    "fading",
    "rising",
    "turning",
];

pub const SONG_OBJECTS: &[&str] = &[
    "lights", "hearts", "roads", "stars", "shadows", "oceans", "fires", "storms", "wires", "wings",
];

pub const GENRES: &[&str] = &[
    "indie",
    "electronic",
    "folk",
    "jazz",
    "ambient",
    "rock",
    "soul",
    "house",
];

pub const BREWERIES: &[&str] = &[
    "stonepine",
    "copperkettle",
    "wildmere",
    "foghollow",
    "ironbark",
    "driftwood",
    "halcyon",
    "thornfield",
    "blackpeak",
    "summerline",
];

pub const BEER_STYLES: &[&str] = &[
    "ipa",
    "stout",
    "porter",
    "pilsner",
    "saison",
    "lager",
    "witbier",
    "amber ale",
    "pale ale",
    "barleywine",
];

pub const BEER_ADJECTIVES: &[&str] = &[
    "hazy",
    "imperial",
    "session",
    "barrel aged",
    "double",
    "dry hopped",
    "nitro",
    "sour",
];

pub const PRODUCT_CATEGORIES: &[&str] = &[
    "electronics",
    "audio",
    "computers",
    "appliances",
    "photography",
    "networking",
    "accessories",
    "office",
];

pub const JOURNALS: &[&str] = &[
    "tods",
    "tkde",
    "vldbj",
    "sigmod record",
    "information systems",
    "data engineering bulletin",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        let pools: &[&[&str]] = &[
            BRANDS,
            PRODUCT_TYPES,
            PRODUCT_ADJECTIVES,
            COLORS,
            UNITS,
            FIRST_NAMES,
            LAST_NAMES,
            PAPER_TOPIC_WORDS,
            PAPER_OBJECT_WORDS,
            PAPER_SUFFIX_WORDS,
            VENUES,
            CUISINES,
            CITIES,
            STREET_WORDS,
            RESTAURANT_WORDS,
            RESTAURANT_NOUNS,
            ARTIST_WORDS,
            ARTIST_NOUNS,
            SONG_WORDS,
            SONG_OBJECTS,
            GENRES,
            BREWERIES,
            BEER_STYLES,
            BEER_ADJECTIVES,
            PRODUCT_CATEGORIES,
            JOURNALS,
        ];
        for pool in pools {
            assert!(!pool.is_empty());
            for w in *pool {
                assert!(!w.is_empty());
                assert_eq!(&w.to_lowercase(), w, "pool word must be lowercase: {w}");
            }
        }
    }

    #[test]
    fn pools_have_no_duplicates() {
        for pool in [BRANDS, PRODUCT_TYPES, LAST_NAMES, BREWERIES] {
            let mut seen = std::collections::HashSet::new();
            for w in pool {
                assert!(seen.insert(w), "duplicate pool word {w}");
            }
        }
    }
}
