//! The dataset families, mirroring the ER-Magellan benchmark shapes:
//! products (Abt-Buy-like), citations (DBLP-ACM-like), restaurants
//! (Fodors-Zagats-like), songs (iTunes-Amazon-like), beers (Beer-like),
//! plus two extended families — electronics (Walmart-Amazon-like, 5
//! attributes) and scholar (DBLP-Scholar-like, heavy noise and missing
//! values). Each family defines a schema, a clean-entity sampler, a
//! corruption profile and a blocking key used for hard-negative mining.

use crate::corrupt::CorruptionProfile;
use crate::pools::*;
use em_data::Schema;
use em_rngs::rngs::StdRng;
use em_rngs::Rng;

/// The benchmark family a synthetic dataset mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Consumer products with verbose titles and noisy descriptions.
    Products,
    /// Bibliographic records: clean, high token overlap for matches.
    Citations,
    /// Restaurants: short attributes, address/city dominate.
    Restaurants,
    /// Songs: title/artist/album/genre with medium noise.
    Songs,
    /// Beers: very short names, brewery dominates.
    Beers,
    /// Electronics with a 5-attribute schema (Walmart-Amazon-like):
    /// model numbers are the decisive evidence.
    Electronics,
    /// Scholarly citations with heavy noise (DBLP-Scholar-like): venue and
    /// year frequently missing or abbreviated.
    Scholar,
}

impl Family {
    /// The five core families mirrored from the ER-Magellan benchmark.
    pub fn all() -> [Family; 5] {
        [
            Family::Products,
            Family::Citations,
            Family::Restaurants,
            Family::Songs,
            Family::Beers,
        ]
    }

    /// All seven families including the extended ones.
    pub fn all_extended() -> [Family; 7] {
        [
            Family::Products,
            Family::Citations,
            Family::Restaurants,
            Family::Songs,
            Family::Beers,
            Family::Electronics,
            Family::Scholar,
        ]
    }

    /// The class imbalance the standard benchmark assigns this family
    /// (fraction of labelled pairs that are matches, mirroring the
    /// ER-Magellan spread). Single source of truth: both the evaluation
    /// context and the experiment configurations consume this table, so
    /// the datasets of the whole suite shift together or not at all.
    pub fn standard_match_rate(self) -> f64 {
        match self {
            Family::Products => 0.12,
            Family::Citations => 0.18,
            Family::Restaurants => 0.22,
            Family::Songs => 0.15,
            Family::Beers => 0.20,
            Family::Electronics => 0.10,
            Family::Scholar => 0.16,
        }
    }

    /// Stable dataset name ("synth-products" etc.).
    pub fn dataset_name(self) -> &'static str {
        match self {
            Family::Products => "synth-products",
            Family::Citations => "synth-citations",
            Family::Restaurants => "synth-restaurants",
            Family::Songs => "synth-songs",
            Family::Beers => "synth-beers",
            Family::Electronics => "synth-electronics",
            Family::Scholar => "synth-scholar",
        }
    }

    /// Attribute schema of the family.
    pub fn schema(self) -> Schema {
        match self {
            Family::Products => Schema::new(vec!["title", "brand", "description", "price"]),
            Family::Citations => Schema::new(vec!["title", "authors", "venue", "year"]),
            Family::Restaurants => Schema::new(vec!["name", "address", "city", "cuisine"]),
            Family::Songs => Schema::new(vec!["title", "artist", "album", "genre"]),
            Family::Beers => Schema::new(vec!["name", "brewery", "style", "abv"]),
            Family::Electronics => {
                Schema::new(vec!["title", "category", "brand", "modelno", "price"])
            }
            Family::Scholar => Schema::new(vec!["title", "authors", "venue", "year"]),
        }
    }

    /// Corruption intensity characteristic of the family.
    pub fn profile(self) -> CorruptionProfile {
        match self {
            Family::Products => CorruptionProfile::heavy(),
            Family::Citations => CorruptionProfile::mild(),
            Family::Restaurants => CorruptionProfile::mild(),
            Family::Songs => CorruptionProfile::moderate(),
            Family::Beers => CorruptionProfile::moderate(),
            Family::Electronics => CorruptionProfile::moderate(),
            Family::Scholar => CorruptionProfile::heavy(),
        }
    }

    /// Index of the attribute used as blocking key for hard negatives
    /// (entities sharing this value are confusable non-matches).
    pub fn blocking_attribute(self) -> usize {
        match self {
            Family::Products => 1,    // brand
            Family::Citations => 2,   // venue
            Family::Restaurants => 2, // city
            Family::Songs => 1,       // artist
            Family::Beers => 1,       // brewery
            Family::Electronics => 2, // brand
            Family::Scholar => 2,     // venue
        }
    }

    /// Sample a clean entity (attribute values aligned with [`Family::schema`]).
    pub fn sample_entity(self, rng: &mut StdRng) -> Vec<String> {
        match self {
            Family::Products => sample_product(rng),
            Family::Citations => sample_citation(rng),
            Family::Restaurants => sample_restaurant(rng),
            Family::Songs => sample_song(rng),
            Family::Beers => sample_beer(rng),
            Family::Electronics => sample_electronics(rng),
            Family::Scholar => sample_scholar(rng),
        }
    }
}

fn pick<'a>(rng: &mut StdRng, pool: &'a [&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn sample_product(rng: &mut StdRng) -> Vec<String> {
    let brand = pick(rng, BRANDS);
    let ptype = pick(rng, PRODUCT_TYPES);
    let adj = pick(rng, PRODUCT_ADJECTIVES);
    let model = format!(
        "{}{}{}",
        char::from(b'a' + rng.gen_range(0..26u8)),
        char::from(b'a' + rng.gen_range(0..26u8)),
        rng.gen_range(100..9999)
    );
    let size = rng.gen_range(7..85);
    let unit = pick(rng, UNITS);
    let color = pick(rng, COLORS);
    let title = format!("{brand} {model} {adj} {ptype} {size} {unit}");
    let mut description = format!("{adj} {ptype} by {brand} in {color}");
    if rng.gen_bool(0.6) {
        description.push_str(&format!(
            " with {} {}",
            rng.gen_range(2..64),
            pick(rng, UNITS)
        ));
    }
    if rng.gen_bool(0.4) {
        description.push_str(&format!(" {} edition", pick(rng, PRODUCT_ADJECTIVES)));
    }
    let price = format!("{}.{:02}", rng.gen_range(19..1999), rng.gen_range(0..100));
    vec![title, brand.to_string(), description, price]
}

fn sample_citation(rng: &mut StdRng) -> Vec<String> {
    let topic = pick(rng, PAPER_TOPIC_WORDS);
    let obj = pick(rng, PAPER_OBJECT_WORDS);
    let obj2 = pick(rng, PAPER_OBJECT_WORDS);
    let suffix = pick(rng, PAPER_SUFFIX_WORDS);
    let title = if rng.gen_bool(0.5) {
        format!("{topic} {obj} processing for {suffix}")
    } else {
        format!("towards {topic} {obj} {obj2} in {suffix}")
    };
    let n_authors = rng.gen_range(1..=4);
    let mut authors = Vec::with_capacity(n_authors);
    for _ in 0..n_authors {
        authors.push(format!(
            "{} {}",
            pick(rng, FIRST_NAMES),
            pick(rng, LAST_NAMES)
        ));
    }
    let venue = pick(rng, VENUES).to_string();
    let year = rng.gen_range(1995i32..2024).to_string();
    vec![title, authors.join(" , "), venue, year]
}

fn sample_restaurant(rng: &mut StdRng) -> Vec<String> {
    let name = format!(
        "{} {} {}",
        pick(rng, RESTAURANT_WORDS),
        pick(rng, RESTAURANT_WORDS),
        pick(rng, RESTAURANT_NOUNS)
    );
    let address = format!(
        "{} {} street",
        rng.gen_range(1..999),
        pick(rng, STREET_WORDS)
    );
    let city = pick(rng, CITIES).to_string();
    let cuisine = pick(rng, CUISINES).to_string();
    vec![name, address, city, cuisine]
}

fn sample_song(rng: &mut StdRng) -> Vec<String> {
    let title = format!("{} {}", pick(rng, SONG_WORDS), pick(rng, SONG_OBJECTS));
    let artist = format!("{} {}", pick(rng, ARTIST_WORDS), pick(rng, ARTIST_NOUNS));
    let album = format!(
        "{} {} {}",
        pick(rng, ARTIST_WORDS),
        pick(rng, SONG_OBJECTS),
        if rng.gen_bool(0.3) { "deluxe" } else { "lp" }
    );
    let genre = pick(rng, GENRES).to_string();
    vec![title, artist, album, genre]
}

fn sample_beer(rng: &mut StdRng) -> Vec<String> {
    let name = format!("{} {}", pick(rng, RESTAURANT_WORDS), pick(rng, BEER_STYLES));
    let brewery = format!("{} brewing", pick(rng, BREWERIES));
    let style = if rng.gen_bool(0.5) {
        format!("{} {}", pick(rng, BEER_ADJECTIVES), pick(rng, BEER_STYLES))
    } else {
        pick(rng, BEER_STYLES).to_string()
    };
    let abv = format!("{:.1}", rng.gen_range(3.5..12.5));
    vec![name, brewery, style, abv]
}

fn sample_electronics(rng: &mut StdRng) -> Vec<String> {
    let brand = pick(rng, BRANDS);
    let ptype = pick(rng, PRODUCT_TYPES);
    let category = pick(rng, PRODUCT_CATEGORIES);
    let model = format!(
        "{}{}-{}",
        pick(rng, BRANDS)
            .chars()
            .next()
            .unwrap()
            .to_uppercase()
            .next()
            .unwrap()
            .to_lowercase(),
        char::from(b'a' + rng.gen_range(0..26u8)),
        rng.gen_range(100..99999)
    );
    let title = format!(
        "{brand} {model} {} {ptype} {}",
        pick(rng, PRODUCT_ADJECTIVES),
        pick(rng, COLORS)
    );
    let price = format!("{}.{:02}", rng.gen_range(9..2499), rng.gen_range(0..100));
    vec![title, category.to_string(), brand.to_string(), model, price]
}

fn sample_scholar(rng: &mut StdRng) -> Vec<String> {
    let topic = pick(rng, PAPER_TOPIC_WORDS);
    let obj = pick(rng, PAPER_OBJECT_WORDS);
    let suffix = pick(rng, PAPER_SUFFIX_WORDS);
    let title = if rng.gen_bool(0.4) {
        format!("on the {topic} {obj} problem for {suffix}")
    } else {
        format!("{topic} {obj} in large scale {suffix}")
    };
    let n_authors = rng.gen_range(1..=5);
    let mut authors = Vec::with_capacity(n_authors);
    for _ in 0..n_authors {
        // Scholar-style initials half the time.
        let first = pick(rng, FIRST_NAMES);
        let last = pick(rng, LAST_NAMES);
        if rng.gen_bool(0.5) {
            authors.push(format!("{} {last}", &first[..1]));
        } else {
            authors.push(format!("{first} {last}"));
        }
    }
    // Venue may be a conference or a journal; sometimes missing entirely.
    let venue = if rng.gen_bool(0.15) {
        String::new()
    } else if rng.gen_bool(0.5) {
        pick(rng, VENUES).to_string()
    } else {
        pick(rng, JOURNALS).to_string()
    };
    let year = if rng.gen_bool(0.1) {
        String::new()
    } else {
        rng.gen_range(1990i32..2024).to_string()
    };
    vec![title, authors.join(" , "), venue, year]
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_rngs::SeedableRng;

    #[test]
    fn every_family_samples_schema_aligned_entities() {
        let mut rng = StdRng::seed_from_u64(0);
        for fam in Family::all_extended() {
            let schema = fam.schema();
            for _ in 0..20 {
                let e = fam.sample_entity(&mut rng);
                assert_eq!(e.len(), schema.len(), "family {fam:?}");
                // Every entity has at least one non-empty value.
                assert!(e.iter().any(|v| !v.is_empty()));
            }
        }
    }

    #[test]
    fn blocking_attribute_is_in_schema_range() {
        for fam in Family::all_extended() {
            assert!(fam.blocking_attribute() < fam.schema().len());
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for fam in Family::all_extended() {
            assert_eq!(fam.sample_entity(&mut a), fam.sample_entity(&mut b));
        }
    }

    #[test]
    fn dataset_names_are_distinct() {
        let names: std::collections::HashSet<_> = Family::all_extended()
            .iter()
            .map(|f| f.dataset_name())
            .collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn products_have_numeric_price() {
        let mut rng = StdRng::seed_from_u64(5);
        let e = Family::Products.sample_entity(&mut rng);
        assert!(e[3].parse::<f64>().is_ok(), "price {:?}", e[3]);
    }

    #[test]
    fn electronics_has_five_attributes_and_model_numbers() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let e = Family::Electronics.sample_entity(&mut rng);
            assert_eq!(e.len(), 5);
            assert!(e[3].contains('-'), "model {:?}", e[3]);
            assert!(e[4].parse::<f64>().is_ok());
            // Title embeds the model number (decisive evidence).
            assert!(e[0].contains(&e[3]));
        }
    }

    #[test]
    fn scholar_tolerates_missing_venue_and_year() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut missing_venue = 0;
        let mut missing_year = 0;
        for _ in 0..200 {
            let e = Family::Scholar.sample_entity(&mut rng);
            assert_eq!(e.len(), 4);
            if e[2].is_empty() {
                missing_venue += 1;
            }
            if e[3].is_empty() {
                missing_year += 1;
            }
        }
        assert!(missing_venue > 5, "venue should sometimes be missing");
        assert!(missing_year > 2, "year should sometimes be missing");
    }

    #[test]
    fn citations_year_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let e = Family::Citations.sample_entity(&mut rng);
            let y: i32 = e[3].parse().unwrap();
            assert!((1995..2024).contains(&y));
        }
    }
}
