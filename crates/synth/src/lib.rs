//! # em-synth
//!
//! Seeded synthetic benchmark generators mirroring the five ER-Magellan
//! dataset families the CREW evaluation uses (products, citations,
//! restaurants, songs, beers). Matching pairs are produced by applying a
//! family-specific corruption profile (typos, abbreviations, token drops,
//! numeric jitter, attribute nulls) to a clean entity; non-matching pairs
//! mix hard negatives (sharing the family blocking key: brand, venue, city,
//! artist, brewery) with random negatives.
//!
//! Everything is deterministic for a given seed, so the experiment tables
//! regenerate bit-identically. Real ER-Magellan CSV exports can be used
//! instead via `em_data::dataset_from_joined_csv`.
//!
//! ```
//! use em_synth::{generate, Family, GeneratorConfig};
//! let config = GeneratorConfig { entities: 30, pairs: 60, ..Default::default() };
//! let dataset = generate(Family::Restaurants, config).unwrap();
//! assert_eq!(dataset.len(), 60);
//! // Deterministic: same seed, same data.
//! assert_eq!(generate(Family::Restaurants, config).unwrap().stats(), dataset.stats());
//! ```

pub mod collections;
pub mod corrupt;
pub mod family;
pub mod generator;
pub mod pools;

pub use collections::{record_collections, CollectionsConfig, RecordCollections};
pub use corrupt::{abbreviate, corrupt_value, jitter_number, typo, CorruptionProfile};
pub use family::Family;
pub use generator::{
    extended_benchmark, generate, scaling_pair, standard_benchmark, GeneratorConfig,
};

/// Errors from dataset generation.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// Need at least two entities to form non-matching pairs.
    TooFewEntities(usize),
    /// Requested zero pairs.
    NoPairs,
    /// A rate parameter was outside [0,1].
    InvalidRate(&'static str, f64),
    /// Propagated data-model error (should not happen by construction).
    Data(em_data::DataError),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::TooFewEntities(n) => write!(f, "need at least 2 entities, got {n}"),
            SynthError::NoPairs => write!(f, "requested zero pairs"),
            SynthError::InvalidRate(name, v) => write!(f, "{name} must be in [0,1], got {v}"),
            SynthError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<em_data::DataError> for SynthError {
    fn from(e: em_data::DataError) -> Self {
        SynthError::Data(e)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use propcheck::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn any_valid_config_generates(seed in 0u64..500, rate in 0.05f64..0.5) {
            let cfg = GeneratorConfig {
                entities: 30,
                pairs: 60,
                match_rate: rate,
                hard_negative_rate: 0.5,
                seed,
            };
            let d = generate(Family::Restaurants, cfg).unwrap();
            prop_assert_eq!(d.len(), 60);
            let got_rate = d.match_count() as f64 / 60.0;
            prop_assert!((got_rate - rate).abs() < 0.05);
        }

        #[test]
        fn corruption_output_tokenizes(seed in 0u64..500) {
            use em_rngs::SeedableRng;
            let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
            let c = corrupt_value(
                "alpha beta 42 gamma delta",
                &CorruptionProfile::heavy(),
                &mut rng,
            );
            // Corrupted values never contain control characters and always
            // re-tokenize cleanly.
            prop_assert!(c.chars().all(|ch| !ch.is_control()));
            let _ = em_text::tokenize(&c);
        }
    }
}
