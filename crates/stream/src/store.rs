//! Content-keyed explanation stores for the streaming pipeline.
//!
//! Unlike the evaluation substrate's stores (keyed by `(context,
//! matcher, explainer, pair, budget, options)` — see `em-eval`), a
//! stream run fixes the matcher and the CREW options once, so the only
//! varying key component is the **pair content fingerprint**
//! ([`em_eval::pair_content_fingerprint`]): a hash of both records'
//! attribute values with the record ids deliberately excluded. Raw
//! feeds are full of exact-duplicate listings under different ids;
//! keying on content makes every such near-duplicate family pay for
//! its matcher queries (the perturbation set) and its clustering tail
//! exactly once.
//!
//! Both sub-stores ride on [`em_eval::SlotMap`], so a byte budget
//! ([`em_eval::StoreBudget`]) bounds resident bytes via clock eviction
//! while keeping served values bitwise deterministic (the compute
//! closures are pure functions of the content key).

use crew_core::{ClusterExplanation, Crew, PerturbationSet};
use em_data::TokenizedPair;
use em_eval::{SlotMap, StoreBudget, StoreStats};
use em_matchers::Matcher;
use std::sync::Arc;

/// The two content-keyed sub-stores of one stream run.
pub struct StreamStores {
    perturbations: SlotMap<u64, PerturbationSet>,
    explanations: SlotMap<u64, ClusterExplanation>,
}

impl Default for StreamStores {
    fn default() -> Self {
        StreamStores::unbounded()
    }
}

impl StreamStores {
    /// Grow-only stores (small workloads, tests).
    pub fn unbounded() -> Self {
        StreamStores {
            perturbations: SlotMap::new("stream_perturb", |s| s.approx_bytes()),
            explanations: SlotMap::new("stream_explain", |e| e.approx_bytes()),
        }
    }

    /// Byte-budgeted stores — the production configuration; resident
    /// cache bytes never exceed the budget regardless of pair count.
    pub fn bounded(budget: StoreBudget) -> Self {
        StreamStores {
            perturbations: SlotMap::bounded(
                "stream_perturb",
                |s| s.approx_bytes(),
                budget.perturbation_bytes,
            ),
            explanations: SlotMap::bounded(
                "stream_explain",
                |e| e.approx_bytes(),
                budget.explanation_bytes,
            ),
        }
    }

    /// Explain one pair through the stores: fetch-or-compute the
    /// perturbation set, then fetch-or-compute the clustering tail.
    /// `fingerprint` must be the pair's content fingerprint.
    pub fn explain(
        &self,
        crew: &Crew,
        matcher: &dyn Matcher,
        tokenized: &TokenizedPair,
        fingerprint: u64,
    ) -> Result<Arc<ClusterExplanation>, crew_core::ExplainError> {
        let set = self
            .perturbations
            .get_or_compute(&fingerprint, || crew.perturbation_set(matcher, tokenized))?;
        self.explanations.get_or_compute(&fingerprint, || {
            crew.explain_clusters_with_set(tokenized, &set)
        })
    }

    pub fn perturbation_stats(&self) -> StoreStats {
        self.perturbations.stats()
    }

    pub fn explanation_stats(&self) -> StoreStats {
        self.explanations.stats()
    }

    /// Combined peak resident bytes of both sub-stores (0 if unbounded).
    pub fn peak_bytes(&self) -> usize {
        self.perturbations.peak_bytes() + self.explanations.peak_bytes()
    }
}
