//! The end-to-end streaming driver: block → match → explain, in bounded
//! batches, with a fixed matcher and CREW configuration.
//!
//! ## Memory bound
//!
//! The candidate list is never materialized: [`crate::Blocks`] holds the
//! per-block member lists and [`crate::CandidateStream`] k-way-merges
//! them into sorted deduplicated batches on demand, so candidate memory
//! is O(blocks), not O(candidates). Only one batch of
//! [`em_data::EntityPair`]s is ever materialized, explanation outputs
//! are compacted to [`ExplainedMatch`] digests, and the
//! perturbation/explanation caches are byte-budgeted
//! ([`crate::StreamStores`]). Peak memory therefore depends on the
//! record collections, the batch size and the store budget — not on the
//! candidate count.
//!
//! ## Determinism
//!
//! The candidate sequence is sorted (see [`crate::Blocks::stream`]),
//! batches are processed in order, matching is a pure per-pair function,
//! and explanations are pure functions of pair content under a fixed
//! seed, computed into index-keyed slots. Cache hits return values
//! bitwise identical to a fresh computation (including after eviction),
//! so [`StreamOutcome::matches`] and [`StreamOutcome::entity_clusters`]
//! are identical at any `jobs` count — the property the `em-stream`
//! integration tests assert.

use crate::block::{block_candidates_with, build_blocks, BlockingConfig, CandidateSet};
use crate::store::StreamStores;
use crate::unionfind::UnionFind;
use crate::StreamError;
use crew_core::{ClusterExplanation, Crew, CrewOptions};
use em_data::{EntityPair, Record, Schema, TokenizedPair};
use em_embed::WordEmbeddings;
use em_eval::{pair_content_fingerprint, StoreBudget, StoreStats};
use em_matchers::Matcher;
use std::sync::{Arc, Mutex, OnceLock};

/// Configuration of one stream run.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    pub blocking: BlockingConfig,
    /// Candidate pairs materialized and scored per batch.
    pub batch: usize,
    /// Thread cap for matching/explaining (0 = auto).
    pub jobs: usize,
    /// Match-probability cut; `None` uses the matcher's own threshold.
    pub threshold: Option<f64>,
    /// CREW configuration (perturbation budget, clustering knobs). The
    /// perturbation seed lives here; it is global to the run, so equal
    /// pair content ⇒ equal explanation.
    pub crew: CrewOptions,
    /// Byte budget for the content-keyed stores; `None` = unbounded.
    pub store_budget: Option<StoreBudget>,
    /// Words kept in each match digest.
    pub top_words: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            blocking: BlockingConfig::default(),
            batch: 512,
            jobs: 0,
            threshold: None,
            crew: CrewOptions::default(),
            store_budget: Some(StoreBudget::total(256 << 20)),
            top_words: 5,
        }
    }
}

/// Compact digest of one explained match — what the pipeline retains
/// per match so outcome memory stays flat while the full explanations
/// live (bounded) in the stores.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainedMatch {
    pub left_id: u64,
    pub right_id: u64,
    /// Matcher probability.
    pub score: f64,
    /// Clusters the model-selection step chose.
    pub selected_k: usize,
    /// Order-sensitive hash of the full explanation (weights, clusters,
    /// selection) — the jobs-invariance tests compare these.
    pub explanation_fingerprint: u64,
    /// The top words by |attribution|.
    pub top_words: Vec<String>,
}

/// Everything a stream run reports.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Candidate pairs blocking emitted.
    pub candidates: usize,
    /// Cross-product size blocking avoided.
    pub comparisons: u64,
    /// Fraction of the cross product eliminated.
    pub reduction_ratio: f64,
    pub blocks: usize,
    pub oversized_blocks: usize,
    /// Token blocks skipped as stop-token blocks (recall-loss visibility).
    pub skipped_stop_tokens: usize,
    /// LSH-signature blocks kept / skipped (0 when LSH is disabled).
    pub lsh_blocks: usize,
    pub lsh_skipped: usize,
    /// Explained matches, in candidate (sorted-pair) order.
    pub matches: Vec<ExplainedMatch>,
    /// Entity clusters: connected components of the match graph over
    /// record ids (canonical order, singletons dropped).
    pub entity_clusters: Vec<Vec<u64>>,
    pub perturb_stats: StoreStats,
    pub explain_stats: StoreStats,
    /// Peak resident bytes of the bounded stores (0 when unbounded).
    pub peak_store_bytes: usize,
}

/// Run the full pipeline over two record collections.
///
/// `schema` must describe both collections; `matcher` and `embeddings`
/// are trained by the caller (in production from labelled history, in
/// the benchmarks from a synthetic context).
pub fn run_stream(
    schema: &Arc<Schema>,
    left: &[Record],
    right: &[Record],
    matcher: &dyn Matcher,
    embeddings: Arc<WordEmbeddings>,
    options: &StreamOptions,
) -> Result<StreamOutcome, StreamError> {
    let _stream = em_obs::span!("stream");
    let blocks = {
        let _g = em_obs::span!("block");
        build_blocks(left, right, &options.blocking, Some(&embeddings))
    };

    let crew = Crew::new(embeddings, options.crew.clone());
    let threshold = options.threshold.unwrap_or_else(|| matcher.threshold());
    let stores = match options.store_budget {
        Some(budget) => StreamStores::bounded(budget),
        None => StreamStores::unbounded(),
    };
    let threads = if options.jobs == 0 {
        em_pool::default_threads()
    } else {
        options.jobs
    };

    let mut matches: Vec<ExplainedMatch> = Vec::new();
    let mut matched_idx: Vec<(u32, u32)> = Vec::new();
    let mut candidate_count = 0usize;
    let mut stream = blocks.stream();
    loop {
        // Pull only this batch's candidates out of the merge.
        let batch = stream.next_batch(options.batch.max(1));
        if batch.is_empty() {
            break;
        }
        candidate_count += batch.len();
        // Materialize only this batch's pairs.
        let pairs: Vec<EntityPair> = batch
            .iter()
            .map(|&(i, j)| {
                EntityPair::new(
                    Arc::clone(schema),
                    left[i as usize].clone(),
                    right[j as usize].clone(),
                )
            })
            .collect::<Result<_, _>>()?;

        let scores = {
            let _g = em_obs::span!("match");
            matcher.predict_proba_batch(&pairs)
        };
        let hits: Vec<usize> = (0..pairs.len())
            .filter(|&t| scores[t] >= threshold)
            .collect();

        // Explain the batch's matches in parallel; slots are keyed by
        // position so the merged order is schedule-independent.
        let slots: Vec<OnceLock<ExplainedMatch>> =
            (0..hits.len()).map(|_| OnceLock::new()).collect();
        let first_error: Mutex<Option<StreamError>> = Mutex::new(None);
        {
            let _g = em_obs::span!("explain");
            em_pool::global().run(hits.len(), threads, &|t| {
                let idx = hits[t];
                match explain_one(&stores, &crew, matcher, &pairs[idx], scores[idx], options) {
                    Ok(m) => {
                        let _ = slots[t].set(m);
                    }
                    Err(e) => {
                        let mut guard = first_error.lock().expect("error slot poisoned");
                        guard.get_or_insert(e);
                    }
                }
            });
        }
        if let Some(e) = first_error.into_inner().expect("error slot poisoned") {
            return Err(e);
        }
        for (t, slot) in slots.into_iter().enumerate() {
            matches.push(slot.into_inner().expect("explained every hit"));
            matched_idx.push(batch[hits[t]]);
        }
    }
    drop(stream);
    em_obs::counter!("stream/candidates", candidate_count as u64);
    em_obs::counter!("stream/matches", matches.len() as u64);

    // Entity clusters: connected components of the match graph.
    let mut uf = UnionFind::new(blocks.left_len + blocks.right_len);
    for &(i, j) in &matched_idx {
        uf.union(i as usize, blocks.left_len + j as usize);
    }
    let entity_clusters: Vec<Vec<u64>> = uf
        .clusters()
        .into_iter()
        .map(|component| {
            component
                .into_iter()
                .map(|node| {
                    if node < blocks.left_len {
                        left[node].id
                    } else {
                        right[node - blocks.left_len].id
                    }
                })
                .collect()
        })
        .collect();

    let reduction_ratio = if blocks.comparisons == 0 {
        0.0
    } else {
        1.0 - candidate_count as f64 / blocks.comparisons as f64
    };
    Ok(StreamOutcome {
        candidates: candidate_count,
        comparisons: blocks.comparisons,
        reduction_ratio,
        blocks: blocks.len(),
        oversized_blocks: blocks.oversized,
        skipped_stop_tokens: blocks.skipped_stop_tokens,
        lsh_blocks: blocks.lsh_blocks,
        lsh_skipped: blocks.lsh_skipped,
        matches,
        entity_clusters,
        perturb_stats: stores.perturbation_stats(),
        explain_stats: stores.explanation_stats(),
        peak_store_bytes: stores.peak_bytes(),
    })
}

/// Blocking only — exposed for callers that want the candidate set
/// without scoring (the property tests, candidate-count sizing).
pub fn candidates_only(left: &[Record], right: &[Record], config: &BlockingConfig) -> CandidateSet {
    block_candidates_with(left, right, config, None)
}

/// [`candidates_only`] with embeddings available for LSH blocking.
pub fn candidates_only_with(
    left: &[Record],
    right: &[Record],
    config: &BlockingConfig,
    embeddings: Option<&WordEmbeddings>,
) -> CandidateSet {
    block_candidates_with(left, right, config, embeddings)
}

fn explain_one(
    stores: &StreamStores,
    crew: &Crew,
    matcher: &dyn Matcher,
    pair: &EntityPair,
    score: f64,
    options: &StreamOptions,
) -> Result<ExplainedMatch, StreamError> {
    let fingerprint = pair_content_fingerprint(pair);
    let tokenized = TokenizedPair::new(pair.clone());
    let ce = stores.explain(crew, matcher, &tokenized, fingerprint)?;
    Ok(digest(pair, score, &ce, options.top_words))
}

/// Compress a full explanation into the per-match digest.
fn digest(
    pair: &EntityPair,
    score: f64,
    ce: &ClusterExplanation,
    top_words: usize,
) -> ExplainedMatch {
    ExplainedMatch {
        left_id: pair.left().id,
        right_id: pair.right().id,
        score,
        selected_k: ce.selected_k,
        explanation_fingerprint: explanation_fingerprint(ce),
        top_words: ce
            .word_level
            .top_words(top_words)
            .into_iter()
            .map(|(w, _)| w.text.clone())
            .collect(),
    }
}

/// Order-sensitive FNV-1a over every numeric field of the explanation:
/// two explanations agree on this iff they are bitwise identical in all
/// the parts that matter (weights, clusters, model selection).
pub fn explanation_fingerprint(ce: &ClusterExplanation) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(ce.selected_k as u64);
    mix(ce.group_r2.to_bits());
    mix(ce.silhouette.to_bits());
    for w in &ce.word_level.weights {
        mix(w.to_bits());
    }
    for c in &ce.clusters {
        mix(c.weight.to_bits());
        mix(c.member_indices.len() as u64);
        for &m in &c.member_indices {
            mix(m as u64);
        }
    }
    h
}
