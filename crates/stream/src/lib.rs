//! # em-stream
//!
//! The production-scale entry point: take two raw record collections,
//! generate candidate pairs by blocking, score them with a trained
//! matcher, and CREW-explain every match — streaming, in bounded
//! batches, with memory-bounded explanation stores, so a 10⁵–10⁶
//! candidate workload runs in flat memory.
//!
//! The paper's evaluation (and the `em-eval` harness reproducing it)
//! starts from curated labelled pair lists; this crate adds the stage a
//! deployment needs *before* that — candidate generation — and the
//! memory discipline explaining the matched set at scale requires.
//! See DESIGN.md, "Streaming pipeline" for the blocking-key, eviction
//! and determinism arguments.
//!
//! ```
//! use em_stream::{run_stream, StreamOptions};
//! use em_synth::{record_collections, CollectionsConfig, Family};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c = record_collections(
//!     Family::Restaurants,
//!     CollectionsConfig { entities: 40, duplicate_rate: 0.5, extra_right: 10, seed: 3 },
//! )?;
//! // Train matcher + embeddings on synthetic labelled history.
//! let ctx = em_eval::EvalContext::prepare(
//!     em_synth::Family::Restaurants,
//!     em_synth::GeneratorConfig { entities: 40, pairs: 120, ..Default::default() },
//! )?;
//! let matcher = ctx.matcher(em_eval::MatcherKind::Logistic)?;
//! let out = run_stream(
//!     &c.schema, &c.left, &c.right,
//!     matcher.as_ref(), ctx.embeddings.clone(),
//!     &StreamOptions { batch: 64, ..Default::default() },
//! )?;
//! assert!(out.candidates > 0);
//! # Ok(()) }
//! ```

pub mod block;
pub mod pipeline;
pub mod store;
pub mod unionfind;

pub use block::{
    block_candidates, block_candidates_with, build_blocks, BlockKeyScheme, BlockingConfig, Blocks,
    CandidateSet, CandidateStream, LshBlocking,
};
pub use pipeline::{
    candidates_only, candidates_only_with, explanation_fingerprint, run_stream, ExplainedMatch,
    StreamOptions, StreamOutcome,
};
pub use store::StreamStores;
pub use unionfind::UnionFind;

/// Errors a stream run can surface.
#[derive(Debug)]
pub enum StreamError {
    /// Record shape disagreed with the schema while materializing a pair.
    Data(em_data::DataError),
    /// CREW failed on a pair (empty content, invalid options).
    Explain(crew_core::ExplainError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Data(e) => write!(f, "data error: {e}"),
            StreamError::Explain(e) => write!(f, "explain error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Data(e) => Some(e),
            StreamError::Explain(e) => Some(e),
        }
    }
}

impl From<em_data::DataError> for StreamError {
    fn from(e: em_data::DataError) -> Self {
        StreamError::Data(e)
    }
}

impl From<crew_core::ExplainError> for StreamError {
    fn from(e: crew_core::ExplainError) -> Self {
        StreamError::Explain(e)
    }
}
