//! Blocking: turn two record collections into a deduplicated candidate
//! pair set without scoring the full cross product.
//!
//! Every record is mapped to a set of **block keys** (its tokens, or
//! character n-grams of its tokens); records sharing a key land in one
//! block and each left×right pair inside a block becomes a candidate.
//! Blocks bigger than `max_block_size` are skipped — these are
//! stop-token blocks ("the", a ubiquitous brand) whose cross products
//! would resurrect the quadratic blow-up blocking exists to avoid; the
//! count of skipped blocks is reported, never silently dropped.
//!
//! Candidates are deduplicated globally (a pair sharing five tokens
//! appears in five blocks but once in the output) by a final sort+dedup,
//! which also makes the output independent of block iteration order and
//! thread schedule: the parallel phases write into index-keyed slots and
//! the merged list is sorted before being returned.
//!
//! The same co-membership edges feed a [`UnionFind`] over all records
//! (left record `i` is node `i`, right record `j` is node
//! `left.len() + j`), whose canonical connected components are exposed
//! for cluster-level analyses and for the order/thread-invariance
//! property tests.

use crate::unionfind::UnionFind;
use em_data::Record;
use std::collections::HashMap;
use std::sync::OnceLock;

/// How block keys are derived from a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKeyScheme {
    /// One key per distinct token of the record's joined text.
    Tokens,
    /// One key per distinct character n-gram of each token (more
    /// typo-tolerant, more keys per record).
    NGrams(usize),
}

/// Blocking configuration.
#[derive(Debug, Clone, Copy)]
pub struct BlockingConfig {
    pub scheme: BlockKeyScheme,
    /// Tokens shorter than this produce no keys.
    pub min_token_len: usize,
    /// Skip blocks whose total membership (left + right) exceeds this.
    pub max_block_size: usize,
    /// Thread cap for the parallel phases (0 = auto).
    pub jobs: usize,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig {
            scheme: BlockKeyScheme::Tokens,
            min_token_len: 2,
            max_block_size: 64,
            jobs: 0,
        }
    }
}

/// The blocking output: deduplicated candidates plus accounting.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// `(left index, right index)` pairs, sorted ascending, deduplicated.
    pub pairs: Vec<(u32, u32)>,
    /// Size of the avoided cross product (`left.len() * right.len()`).
    pub comparisons: u64,
    /// Blocks that contributed candidates.
    pub blocks: usize,
    /// Blocks skipped for exceeding `max_block_size`.
    pub oversized: usize,
    /// Canonical connected components of the block co-membership graph
    /// (node `i < left_len` is left record `i`, node `left_len + j` is
    /// right record `j`). See [`UnionFind::components`].
    pub components: Vec<Vec<usize>>,
    pub left_len: usize,
    pub right_len: usize,
}

impl CandidateSet {
    /// Fraction of the cross product that blocking eliminated.
    pub fn reduction_ratio(&self) -> f64 {
        if self.comparisons == 0 {
            return 0.0;
        }
        1.0 - self.pairs.len() as f64 / self.comparisons as f64
    }
}

/// Distinct block keys of one record under `config`, sorted.
fn block_keys(record: &Record, config: &BlockingConfig) -> Vec<String> {
    let mut keys = Vec::new();
    for token in em_text::tokenize(&record.full_text()) {
        if token.len() < config.min_token_len {
            continue;
        }
        match config.scheme {
            BlockKeyScheme::Tokens => keys.push(token),
            BlockKeyScheme::NGrams(n) => {
                let n = n.max(1);
                let chars: Vec<char> = token.chars().collect();
                if chars.len() <= n {
                    keys.push(token);
                } else {
                    for w in chars.windows(n) {
                        keys.push(w.iter().collect());
                    }
                }
            }
        }
    }
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Map every record of `records` to its block keys, in parallel
/// (index-keyed writes, so the output is schedule-independent).
fn keys_of(records: &[Record], config: &BlockingConfig, threads: usize) -> Vec<Vec<String>> {
    let slots: Vec<OnceLock<Vec<String>>> = (0..records.len()).map(|_| OnceLock::new()).collect();
    em_pool::global().run(records.len(), threads, &|i| {
        let _ = slots[i].set(block_keys(&records[i], config));
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("pool ran every index"))
        .collect()
}

/// Block two collections into a deduplicated candidate set.
pub fn block_candidates(
    left: &[Record],
    right: &[Record],
    config: &BlockingConfig,
) -> CandidateSet {
    let threads = if config.jobs == 0 {
        em_pool::default_threads()
    } else {
        config.jobs
    };
    let left_keys = keys_of(left, config, threads);
    let right_keys = keys_of(right, config, threads);

    // Inverted index: key → (left members, right members). Built
    // sequentially (hash-map construction does not parallelize without
    // sharding, and it is a small fraction of blocking time); members
    // arrive in record order, so block contents are deterministic.
    let mut index: HashMap<&str, (Vec<u32>, Vec<u32>)> = HashMap::new();
    for (i, keys) in left_keys.iter().enumerate() {
        for k in keys {
            index.entry(k.as_str()).or_default().0.push(i as u32);
        }
    }
    for (j, keys) in right_keys.iter().enumerate() {
        for k in keys {
            index.entry(k.as_str()).or_default().1.push(j as u32);
        }
    }

    // Keep blocks with members on both sides, in sorted-key order so
    // every later phase iterates deterministically.
    let mut kept: Vec<(&str, &(Vec<u32>, Vec<u32>))> = Vec::new();
    let mut oversized = 0usize;
    let mut keys_sorted: Vec<&str> = index.keys().copied().collect();
    keys_sorted.sort_unstable();
    for key in keys_sorted {
        let members = &index[key];
        if members.0.is_empty() || members.1.is_empty() {
            continue;
        }
        if members.0.len() + members.1.len() > config.max_block_size {
            oversized += 1;
            continue;
        }
        kept.push((key, members));
    }

    // Cross products per block in parallel, then merge in block order
    // and sort+dedup globally.
    let block_pairs: Vec<OnceLock<Vec<(u32, u32)>>> =
        (0..kept.len()).map(|_| OnceLock::new()).collect();
    em_pool::global().run(kept.len(), threads, &|b| {
        let (lm, rm) = kept[b].1;
        let mut out = Vec::with_capacity(lm.len() * rm.len());
        for &i in lm {
            for &j in rm {
                out.push((i, j));
            }
        }
        let _ = block_pairs[b].set(out);
    });
    let mut pairs: Vec<(u32, u32)> = block_pairs
        .into_iter()
        .flat_map(|s| s.into_inner().expect("pool ran every block"))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();

    // Union-find over block co-membership (cheap: one union per member
    // beyond the first, thanks to transitivity).
    let mut uf = UnionFind::new(left.len() + right.len());
    for (_, (lm, rm)) in &kept {
        let anchor = lm[0] as usize;
        for &i in lm.iter().skip(1) {
            uf.union(anchor, i as usize);
        }
        for &j in rm.iter() {
            uf.union(anchor, left.len() + j as usize);
        }
    }

    em_obs::counter!("stream/blocks", kept.len() as u64);
    em_obs::counter!("stream/candidates", pairs.len() as u64);

    CandidateSet {
        pairs,
        comparisons: left.len() as u64 * right.len() as u64,
        blocks: kept.len(),
        oversized,
        components: uf.components(),
        left_len: left.len(),
        right_len: right.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![text.to_string()])
    }

    fn demo() -> (Vec<Record>, Vec<Record>) {
        let left = vec![
            rec(0, "sonix tv 55"),
            rec(1, "veltron laptop x2"),
            rec(2, "koyama blender pro"),
        ];
        let right = vec![
            rec(10, "sonix television 55"),
            rec(11, "veltron x2 laptop pro"),
            rec(12, "ashford kettle"),
        ];
        (left, right)
    }

    #[test]
    fn token_blocking_finds_shared_token_pairs_once() {
        let (left, right) = demo();
        let c = block_candidates(&left, &right, &BlockingConfig::default());
        // (1, 11) share three tokens but appear once; (2, 11) share "pro".
        assert_eq!(c.pairs, vec![(0, 0), (1, 1), (2, 1)]);
        assert_eq!(c.comparisons, 9);
        assert!(c.reduction_ratio() > 0.6);
        assert_eq!(c.oversized, 0);
    }

    #[test]
    fn oversized_blocks_are_skipped_and_counted() {
        let left: Vec<Record> = (0..30).map(|i| rec(i, "common alpha")).collect();
        let right: Vec<Record> = (0..30).map(|i| rec(100 + i, "common beta")).collect();
        let config = BlockingConfig {
            max_block_size: 16,
            ..Default::default()
        };
        let c = block_candidates(&left, &right, &config);
        assert!(c.pairs.is_empty());
        assert_eq!(c.oversized, 1, "the 'common' block busts the cap");
        assert_eq!(c.reduction_ratio(), 1.0);
    }

    #[test]
    fn ngram_scheme_tolerates_typos_tokens_miss() {
        let left = vec![rec(0, "veltron")];
        let right = vec![rec(1, "veltrom")];
        let miss = block_candidates(&left, &right, &BlockingConfig::default());
        assert!(miss.pairs.is_empty());
        let hit = block_candidates(
            &left,
            &right,
            &BlockingConfig {
                scheme: BlockKeyScheme::NGrams(3),
                ..Default::default()
            },
        );
        assert_eq!(hit.pairs, vec![(0, 0)]);
    }

    #[test]
    fn components_connect_across_blocks() {
        let (left, right) = demo();
        let c = block_candidates(&left, &right, &BlockingConfig::default());
        // Nodes: left 0..3, right 3..6. "pro" links records 1, 2, 11.
        let with_one = c.components.iter().find(|comp| comp.contains(&1)).unwrap();
        assert!(with_one.contains(&2) && with_one.contains(&4));
    }

    #[test]
    fn empty_collections_block_to_nothing() {
        let c = block_candidates(&[], &[], &BlockingConfig::default());
        assert!(c.pairs.is_empty());
        assert_eq!(c.reduction_ratio(), 0.0);
        assert!(c.components.is_empty());
    }
}
