//! Blocking: turn two record collections into a deduplicated candidate
//! pair set without scoring the full cross product.
//!
//! Every record is mapped to a set of **block keys** (its tokens, or
//! character n-grams of its tokens); records sharing a key land in one
//! block and each left×right pair inside a block becomes a candidate.
//! Blocks bigger than `max_block_size` are skipped — these are
//! stop-token blocks ("the", a ubiquitous brand) whose cross products
//! would resurrect the quadratic blow-up blocking exists to avoid; the
//! count of skipped blocks is reported, never silently dropped.
//!
//! An optional **LSH key family** ([`LshBlocking`]) runs alongside the
//! token/n-gram keys: each record's distinct-token embedding vectors are
//! summed and sign-hashed against the shared random-hyperplane family of
//! [`em_embed::Hyperplanes`], one key per hash table. Records that share
//! no surface token but are semantically close land in the same
//! signature bucket, so the LSH candidates are a strict addition on top
//! of token blocking (recall can only go up).
//!
//! Candidates are deduplicated globally (a pair sharing five tokens
//! appears in five blocks but once in the output). [`block_candidates`]
//! materializes the sorted deduplicated list; [`Blocks::stream`] yields
//! the identical sequence lazily through a k-way merge over the
//! per-block cross products, so the candidate list itself never has to
//! exist in memory (the pipeline consumes it in batches).
//!
//! The same co-membership edges feed a [`UnionFind`] over all records
//! (left record `i` is node `i`, right record `j` is node
//! `left.len() + j`), whose canonical connected components are exposed
//! for cluster-level analyses and for the order/thread-invariance
//! property tests.

use crate::unionfind::UnionFind;
use em_data::Record;
use em_embed::{Hyperplanes, WordEmbeddings};
use std::collections::{BinaryHeap, HashMap};
use std::sync::OnceLock;

/// Prefix of every LSH-derived block key. `em_text::tokenize` never
/// emits control characters, so these keys cannot collide with token or
/// n-gram keys in the shared inverted index.
const LSH_KEY_PREFIX: char = '\u{1}';

/// How block keys are derived from a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKeyScheme {
    /// One key per distinct token of the record's joined text.
    Tokens,
    /// One key per distinct character n-gram of each token (more
    /// typo-tolerant, more keys per record).
    NGrams(usize),
}

/// LSH-signature blocking parameters (see [`em_embed::Hyperplanes`] for
/// the signature scheme).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshBlocking {
    /// Hash tables — each contributes one key per record (OR stage).
    pub tables: usize,
    /// Hyperplane bits per table (AND stage): more bits, finer buckets.
    pub bits: u32,
    /// Seed of the hyperplane draw.
    pub seed: u64,
    /// Size cap for LSH blocks, separate from the token cap: signature
    /// buckets are coarser than tokens by design, so they earn a larger
    /// budget before being dropped as over-broad.
    pub max_block_size: usize,
}

impl Default for LshBlocking {
    fn default() -> Self {
        LshBlocking {
            tables: 4,
            bits: 10,
            seed: 0x15_4b10c,
            max_block_size: 512,
        }
    }
}

/// Blocking configuration.
#[derive(Debug, Clone, Copy)]
pub struct BlockingConfig {
    pub scheme: BlockKeyScheme,
    /// Tokens shorter than this produce no keys.
    pub min_token_len: usize,
    /// Skip blocks whose total membership (left + right) exceeds this.
    pub max_block_size: usize,
    /// Thread cap for the parallel phases (0 = auto).
    pub jobs: usize,
    /// Add LSH-signature keys alongside the token/n-gram keys. Requires
    /// embeddings at blocking time ([`block_candidates_with`]).
    pub lsh: Option<LshBlocking>,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig {
            scheme: BlockKeyScheme::Tokens,
            min_token_len: 2,
            max_block_size: 64,
            jobs: 0,
            lsh: None,
        }
    }
}

/// The blocking output: deduplicated candidates plus accounting.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// `(left index, right index)` pairs, sorted ascending, deduplicated.
    pub pairs: Vec<(u32, u32)>,
    /// Size of the avoided cross product (`left.len() * right.len()`).
    pub comparisons: u64,
    /// Blocks that contributed candidates.
    pub blocks: usize,
    /// Blocks skipped for exceeding their size cap (token + LSH).
    pub oversized: usize,
    /// Token/n-gram blocks skipped for exceeding `max_block_size` —
    /// these are stop-token blocks whose recall loss would otherwise be
    /// silent.
    pub skipped_stop_tokens: usize,
    /// LSH-signature blocks that contributed candidates.
    pub lsh_blocks: usize,
    /// LSH-signature blocks skipped for exceeding the LSH size cap.
    pub lsh_skipped: usize,
    /// Canonical connected components of the block co-membership graph
    /// (node `i < left_len` is left record `i`, node `left_len + j` is
    /// right record `j`). See [`UnionFind::components`].
    pub components: Vec<Vec<usize>>,
    pub left_len: usize,
    pub right_len: usize,
}

impl CandidateSet {
    /// Fraction of the cross product that blocking eliminated.
    pub fn reduction_ratio(&self) -> f64 {
        if self.comparisons == 0 {
            return 0.0;
        }
        1.0 - self.pairs.len() as f64 / self.comparisons as f64
    }
}

/// Distinct block keys of one record under `config`, sorted.
fn block_keys(record: &Record, config: &BlockingConfig) -> Vec<String> {
    let mut keys = Vec::new();
    for token in em_text::tokenize(&record.full_text()) {
        if token.len() < config.min_token_len {
            continue;
        }
        match config.scheme {
            BlockKeyScheme::Tokens => keys.push(token),
            BlockKeyScheme::NGrams(n) => {
                let n = n.max(1);
                let chars: Vec<char> = token.chars().collect();
                if chars.len() <= n {
                    keys.push(token);
                } else {
                    for w in chars.windows(n) {
                        keys.push(w.iter().collect());
                    }
                }
            }
        }
    }
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Map every record of `records` to its block keys, in parallel
/// (index-keyed writes, so the output is schedule-independent).
fn keys_of(records: &[Record], config: &BlockingConfig, threads: usize) -> Vec<Vec<String>> {
    let slots: Vec<OnceLock<Vec<String>>> = (0..records.len()).map(|_| OnceLock::new()).collect();
    em_pool::global().run(records.len(), threads, &|i| {
        let _ = slots[i].set(block_keys(&records[i], config));
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("pool ran every index"))
        .collect()
}

/// LSH block keys of every record: the record's distinct qualifying
/// tokens are embedded, summed (the sign hash is scale-invariant, so the
/// unnormalised sum hashes like the mean), and signed against each
/// table's hyperplanes — one key per table, computed in parallel with
/// index-keyed writes.
fn lsh_keys_of(
    records: &[Record],
    config: &BlockingConfig,
    lsh: &LshBlocking,
    planes: &Hyperplanes,
    embeddings: &WordEmbeddings,
    threads: usize,
) -> Vec<Vec<String>> {
    let slots: Vec<OnceLock<Vec<String>>> = (0..records.len()).map(|_| OnceLock::new()).collect();
    em_pool::global().run(records.len(), threads, &|i| {
        let mut tokens = em_text::tokenize(&records[i].full_text());
        tokens.retain(|t| t.len() >= config.min_token_len);
        tokens.sort_unstable();
        tokens.dedup();
        let keys = if tokens.is_empty() {
            Vec::new()
        } else {
            let mut sum = vec![0.0; embeddings.dimensions()];
            for t in &tokens {
                for (acc, x) in sum.iter_mut().zip(embeddings.vector(t)) {
                    *acc += x;
                }
            }
            (0..lsh.tables)
                .map(|t| format!("{LSH_KEY_PREFIX}{t}:{:x}", planes.signature(t, &sum)))
                .collect()
        };
        let _ = slots[i].set(keys);
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("pool ran every index"))
        .collect()
}

/// The built block structure: every kept block's member lists, the
/// co-membership components, and the skip accounting. Candidates are
/// *not* materialized here — drain them with [`Blocks::stream`] (sorted
/// batches) or collect them via [`block_candidates_with`].
#[derive(Debug, Clone)]
pub struct Blocks {
    /// Kept blocks' `(left members, right members)`, each list ascending,
    /// in deterministic sorted-key order.
    members: Vec<(Vec<u32>, Vec<u32>)>,
    /// Blocks skipped for exceeding their size cap (token + LSH).
    pub oversized: usize,
    /// Token/n-gram blocks skipped for exceeding `max_block_size`.
    pub skipped_stop_tokens: usize,
    /// LSH blocks that were kept.
    pub lsh_blocks: usize,
    /// LSH blocks skipped for exceeding the LSH size cap.
    pub lsh_skipped: usize,
    /// Size of the avoided cross product.
    pub comparisons: u64,
    pub left_len: usize,
    pub right_len: usize,
    components: Vec<Vec<usize>>,
}

impl Blocks {
    /// Blocks that will contribute candidates.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Canonical connected components of the block co-membership graph.
    pub fn components(&self) -> &[Vec<usize>] {
        &self.components
    }

    pub fn into_components(self) -> Vec<Vec<usize>> {
        self.components
    }

    /// Lazily yield the sorted deduplicated candidate sequence.
    pub fn stream(&self) -> CandidateStream<'_> {
        CandidateStream::new(&self.members)
    }
}

/// Build the block structure for two collections. `embeddings` is
/// required iff `config.lsh` is set.
pub fn build_blocks(
    left: &[Record],
    right: &[Record],
    config: &BlockingConfig,
    embeddings: Option<&WordEmbeddings>,
) -> Blocks {
    let threads = if config.jobs == 0 {
        em_pool::default_threads()
    } else {
        config.jobs
    };
    let left_keys = keys_of(left, config, threads);
    let right_keys = keys_of(right, config, threads);
    let (left_lsh, right_lsh) = match &config.lsh {
        Some(lsh) => {
            let _g = em_obs::span!("lsh");
            let emb = embeddings.expect("BlockingConfig.lsh requires embeddings at blocking time");
            let planes = Hyperplanes::generate(emb.dimensions(), lsh.tables, lsh.bits, lsh.seed);
            (
                lsh_keys_of(left, config, lsh, &planes, emb, threads),
                lsh_keys_of(right, config, lsh, &planes, emb, threads),
            )
        }
        None => (Vec::new(), Vec::new()),
    };

    // Inverted index: key → (left members, right members). Built
    // sequentially (hash-map construction does not parallelize without
    // sharding, and it is a small fraction of blocking time); members
    // arrive in record order, so every block's member lists ascend.
    let mut index: HashMap<&str, (Vec<u32>, Vec<u32>)> = HashMap::new();
    for (keys, side) in [
        (&left_keys, 0),
        (&left_lsh, 0),
        (&right_keys, 1),
        (&right_lsh, 1),
    ] {
        for (r, record_keys) in keys.iter().enumerate() {
            for k in record_keys {
                let members = index.entry(k.as_str()).or_default();
                if side == 0 {
                    members.0.push(r as u32);
                } else {
                    members.1.push(r as u32);
                }
            }
        }
    }

    // Keep blocks with members on both sides, in sorted-key order so
    // every later phase iterates deterministically. LSH keys carry a
    // control-character prefix and their own (larger) size cap.
    let mut kept: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    let mut oversized = 0usize;
    let mut skipped_stop_tokens = 0usize;
    let mut lsh_blocks = 0usize;
    let mut lsh_skipped = 0usize;
    let mut keys_sorted: Vec<&str> = index.keys().copied().collect();
    keys_sorted.sort_unstable();
    for key in keys_sorted {
        let is_lsh = key.starts_with(LSH_KEY_PREFIX);
        let cap = if is_lsh {
            config.lsh.map_or(usize::MAX, |l| l.max_block_size)
        } else {
            config.max_block_size
        };
        let members = index
            .remove(key)
            .expect("sorted key list mirrors the index");
        if members.0.is_empty() || members.1.is_empty() {
            continue;
        }
        if members.0.len() + members.1.len() > cap {
            oversized += 1;
            if is_lsh {
                lsh_skipped += 1;
            } else {
                skipped_stop_tokens += 1;
            }
            continue;
        }
        if is_lsh {
            lsh_blocks += 1;
        }
        kept.push(members);
    }

    // Union-find over block co-membership (cheap: one union per member
    // beyond the first, thanks to transitivity).
    let mut uf = UnionFind::new(left.len() + right.len());
    for (lm, rm) in &kept {
        let anchor = lm[0] as usize;
        for &i in lm.iter().skip(1) {
            uf.union(anchor, i as usize);
        }
        for &j in rm.iter() {
            uf.union(anchor, left.len() + j as usize);
        }
    }

    em_obs::counter!("stream/blocks", kept.len() as u64);
    em_obs::counter!(
        "stream/block/skipped_stop_tokens",
        skipped_stop_tokens as u64
    );
    if config.lsh.is_some() {
        em_obs::counter!("stream/block/lsh_blocks", lsh_blocks as u64);
        em_obs::counter!("stream/block/lsh_skipped", lsh_skipped as u64);
    }

    Blocks {
        members: kept,
        oversized,
        skipped_stop_tokens,
        lsh_blocks,
        lsh_skipped,
        comparisons: left.len() as u64 * right.len() as u64,
        left_len: left.len(),
        right_len: right.len(),
        components: uf.components(),
    }
}

/// A lazy, memory-flat iterator over the sorted deduplicated candidate
/// sequence: a k-way merge over the per-block cross products (each block
/// yields its pairs in ascending order because member lists ascend, so a
/// binary heap of one cursor per block restores the global order and a
/// one-element history deduplicates). State is O(blocks), independent of
/// the candidate count.
pub struct CandidateStream<'a> {
    blocks: &'a [(Vec<u32>, Vec<u32>)],
    /// Per-block `(i, j)` cursor into the cross product, for the *next*
    /// pair after the one currently in the heap.
    cursors: Vec<(usize, usize)>,
    heap: BinaryHeap<std::cmp::Reverse<((u32, u32), usize)>>,
    last: Option<(u32, u32)>,
}

impl<'a> CandidateStream<'a> {
    fn new(blocks: &'a [(Vec<u32>, Vec<u32>)]) -> Self {
        let mut heap = BinaryHeap::with_capacity(blocks.len());
        for (b, (lm, rm)) in blocks.iter().enumerate() {
            if !lm.is_empty() && !rm.is_empty() {
                heap.push(std::cmp::Reverse(((lm[0], rm[0]), b)));
            }
        }
        CandidateStream {
            blocks,
            // The heap seeds hold each block's (0, 0) pair; cursors
            // point at the following one.
            cursors: vec![(0usize, 1usize); blocks.len()],
            heap,
            last: None,
        }
    }

    /// Advance block `b`'s cursor and push its next pair, if any.
    fn refill(&mut self, b: usize) {
        let (lm, rm) = &self.blocks[b];
        let (mut i, mut j) = self.cursors[b];
        if j >= rm.len() {
            i += 1;
            j = 0;
        }
        if i < lm.len() {
            self.heap.push(std::cmp::Reverse(((lm[i], rm[j]), b)));
            self.cursors[b] = (i, j + 1);
        }
    }

    /// Up to `n` next candidates, ascending, deduplicated.
    pub fn next_batch(&mut self, n: usize) -> Vec<(u32, u32)> {
        self.by_ref().take(n).collect()
    }
}

impl Iterator for CandidateStream<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        while let Some(std::cmp::Reverse((pair, b))) = self.heap.pop() {
            self.refill(b);
            if self.last != Some(pair) {
                self.last = Some(pair);
                return Some(pair);
            }
        }
        None
    }
}

/// Block two collections into a deduplicated candidate set (token and
/// n-gram schemes only — LSH needs embeddings, see
/// [`block_candidates_with`]).
pub fn block_candidates(
    left: &[Record],
    right: &[Record],
    config: &BlockingConfig,
) -> CandidateSet {
    block_candidates_with(left, right, config, None)
}

/// Block two collections into a deduplicated candidate set, with
/// embeddings available for the optional LSH key family.
pub fn block_candidates_with(
    left: &[Record],
    right: &[Record],
    config: &BlockingConfig,
    embeddings: Option<&WordEmbeddings>,
) -> CandidateSet {
    let blocks = build_blocks(left, right, config, embeddings);
    let pairs: Vec<(u32, u32)> = blocks.stream().collect();
    em_obs::counter!("stream/candidates", pairs.len() as u64);
    CandidateSet {
        pairs,
        comparisons: blocks.comparisons,
        blocks: blocks.len(),
        oversized: blocks.oversized,
        skipped_stop_tokens: blocks.skipped_stop_tokens,
        lsh_blocks: blocks.lsh_blocks,
        lsh_skipped: blocks.lsh_skipped,
        left_len: blocks.left_len,
        right_len: blocks.right_len,
        components: blocks.into_components(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, text: &str) -> Record {
        Record::new(id, vec![text.to_string()])
    }

    fn demo() -> (Vec<Record>, Vec<Record>) {
        let left = vec![
            rec(0, "sonix tv 55"),
            rec(1, "veltron laptop x2"),
            rec(2, "koyama blender pro"),
        ];
        let right = vec![
            rec(10, "sonix television 55"),
            rec(11, "veltron x2 laptop pro"),
            rec(12, "ashford kettle"),
        ];
        (left, right)
    }

    #[test]
    fn token_blocking_finds_shared_token_pairs_once() {
        let (left, right) = demo();
        let c = block_candidates(&left, &right, &BlockingConfig::default());
        // (1, 11) share three tokens but appear once; (2, 11) share "pro".
        assert_eq!(c.pairs, vec![(0, 0), (1, 1), (2, 1)]);
        assert_eq!(c.comparisons, 9);
        assert!(c.reduction_ratio() > 0.6);
        assert_eq!(c.oversized, 0);
    }

    #[test]
    fn oversized_blocks_are_skipped_and_counted() {
        let left: Vec<Record> = (0..30).map(|i| rec(i, "common alpha")).collect();
        let right: Vec<Record> = (0..30).map(|i| rec(100 + i, "common beta")).collect();
        let config = BlockingConfig {
            max_block_size: 16,
            ..Default::default()
        };
        let c = block_candidates(&left, &right, &config);
        assert!(c.pairs.is_empty());
        assert_eq!(c.oversized, 1, "the 'common' block busts the cap");
        assert_eq!(c.reduction_ratio(), 1.0);
    }

    #[test]
    fn ngram_scheme_tolerates_typos_tokens_miss() {
        let left = vec![rec(0, "veltron")];
        let right = vec![rec(1, "veltrom")];
        let miss = block_candidates(&left, &right, &BlockingConfig::default());
        assert!(miss.pairs.is_empty());
        let hit = block_candidates(
            &left,
            &right,
            &BlockingConfig {
                scheme: BlockKeyScheme::NGrams(3),
                ..Default::default()
            },
        );
        assert_eq!(hit.pairs, vec![(0, 0)]);
    }

    #[test]
    fn components_connect_across_blocks() {
        let (left, right) = demo();
        let c = block_candidates(&left, &right, &BlockingConfig::default());
        // Nodes: left 0..3, right 3..6. "pro" links records 1, 2, 11.
        let with_one = c.components.iter().find(|comp| comp.contains(&1)).unwrap();
        assert!(with_one.contains(&2) && with_one.contains(&4));
    }

    #[test]
    fn empty_collections_block_to_nothing() {
        let c = block_candidates(&[], &[], &BlockingConfig::default());
        assert!(c.pairs.is_empty());
        assert_eq!(c.reduction_ratio(), 0.0);
        assert!(c.components.is_empty());
    }

    #[test]
    fn stream_yields_the_collected_sequence_in_batches() {
        let (left, right) = demo();
        let config = BlockingConfig::default();
        let collected = block_candidates(&left, &right, &config).pairs;
        let blocks = build_blocks(&left, &right, &config, None);
        let mut stream = blocks.stream();
        let mut batched = Vec::new();
        loop {
            let batch = stream.next_batch(2);
            if batch.is_empty() {
                break;
            }
            assert!(batch.len() <= 2);
            batched.extend(batch);
        }
        assert_eq!(batched, collected);
        // Sorted ascending, deduplicated.
        for w in batched.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    fn toy_embeddings() -> WordEmbeddings {
        // Two tight semantic groups with zero token overlap between the
        // paired surface forms.
        let vecs = [
            ("sonix", vec![1.0, 0.1, 0.0, 0.0]),
            ("sonics", vec![1.0, 0.12, 0.0, 0.0]),
            ("kettle", vec![0.0, 0.0, 1.0, 0.1]),
            ("boiler", vec![0.0, 0.0, 1.0, 0.15]),
        ];
        WordEmbeddings::from_vectors(4, vecs.iter().map(|(w, v)| (w.to_string(), v.clone())))
            .unwrap()
    }

    #[test]
    fn lsh_blocks_semantically_close_token_disjoint_records() {
        let left = vec![rec(0, "sonix"), rec(1, "kettle")];
        let right = vec![rec(10, "sonics"), rec(11, "boiler")];
        let emb = toy_embeddings();
        let token_only = block_candidates(&left, &right, &BlockingConfig::default());
        assert!(token_only.pairs.is_empty(), "no shared surface tokens");
        let config = BlockingConfig {
            lsh: Some(LshBlocking {
                tables: 8,
                bits: 4,
                ..Default::default()
            }),
            ..Default::default()
        };
        let with_lsh = block_candidates_with(&left, &right, &config, Some(&emb));
        assert!(with_lsh.pairs.contains(&(0, 0)), "sonix~sonics missed");
        assert!(with_lsh.pairs.contains(&(1, 1)), "kettle~boiler missed");
        assert!(with_lsh.lsh_blocks > 0);
    }

    #[test]
    fn lsh_candidates_are_a_superset_of_token_candidates() {
        let (left, right) = demo();
        let emb = toy_embeddings();
        let token_only = block_candidates(&left, &right, &BlockingConfig::default());
        let config = BlockingConfig {
            lsh: Some(LshBlocking::default()),
            ..Default::default()
        };
        let with_lsh = block_candidates_with(&left, &right, &config, Some(&emb));
        for p in &token_only.pairs {
            assert!(with_lsh.pairs.contains(p), "token candidate {p:?} lost");
        }
    }

    #[test]
    fn oversized_lsh_blocks_are_skipped_under_their_own_cap() {
        let left: Vec<Record> = (0..20).map(|i| rec(i, "sonix")).collect();
        let right: Vec<Record> = (0..20).map(|i| rec(100 + i, "sonics")).collect();
        let emb = toy_embeddings();
        let config = BlockingConfig {
            lsh: Some(LshBlocking {
                tables: 8,
                bits: 4,
                max_block_size: 8,
                ..Default::default()
            }),
            ..Default::default()
        };
        let c = block_candidates_with(&left, &right, &config, Some(&emb));
        assert!(c.pairs.is_empty());
        assert!(c.lsh_skipped > 0);
        assert_eq!(c.lsh_blocks, 0);
        assert_eq!(c.skipped_stop_tokens, 0, "token blocks are one-sided here");
    }
}
