//! Union-find (disjoint-set) with path halving and union by size, used
//! twice by the pipeline: over block co-membership during blocking, and
//! over the matched pairs to report entity clusters (the match-cluster
//! merge of the ODIBEL/ER-pipeline exemplars, without the per-merge set
//! copies).

/// Disjoint sets over `0..len`.
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "union-find node space exceeded");
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
        }
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`; returns true if they were disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // Union by size keeps the trees shallow; ties attach the larger
        // index under the smaller. (Root choice still depends on merge
        // order — only the canonicalized [`Self::components`] view is
        // order-invariant.)
        let (big, small) =
            if self.size[ra] > self.size[rb] || (self.size[ra] == self.size[rb] && ra < rb) {
                (ra, rb)
            } else {
                (rb, ra)
            };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        true
    }

    /// The partition in canonical form: every component sorted
    /// ascending, components ordered by their smallest member. Two
    /// union-finds over the same edge set — regardless of edge order or
    /// which thread discovered which edge — render identically here,
    /// which is what the order/thread-invariance properties assert.
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..self.parent.len() {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        // `0..len` iteration already fills each component ascending.
        let mut components: Vec<Vec<usize>> = by_root.into_values().collect();
        components.sort_by_key(|c| c[0]);
        components
    }

    /// Like [`Self::components`], but dropping singletons (isolated
    /// nodes are noise when reporting entity clusters).
    pub fn clusters(&mut self) -> Vec<Vec<usize>> {
        self.components()
            .into_iter()
            .filter(|c| c.len() > 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_until_united() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), vec![vec![0], vec![1], vec![2], vec![3]]);
        assert!(uf.clusters().is_empty());
    }

    #[test]
    fn union_merges_and_reports_canonical_components() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 3));
        assert!(uf.union(4, 5));
        assert!(uf.union(3, 4));
        assert!(!uf.union(0, 5), "already connected");
        assert_eq!(uf.components(), vec![vec![0, 3, 4, 5], vec![1], vec![2]]);
        assert_eq!(uf.clusters(), vec![vec![0, 3, 4, 5]]);
    }

    #[test]
    fn components_invariant_under_edge_order() {
        let edges = [(0usize, 1usize), (1, 2), (3, 4), (2, 3), (5, 6)];
        let mut forward = UnionFind::new(8);
        for &(a, b) in &edges {
            forward.union(a, b);
        }
        let mut backward = UnionFind::new(8);
        for &(a, b) in edges.iter().rev() {
            backward.union(b, a);
        }
        assert_eq!(forward.components(), backward.components());
    }
}
