//! Two-hidden-layer MLP matcher with hand-rolled backprop and Adam.
//!
//! Architecturally this is the "feature-level deep" matcher: same inputs as
//! the logistic model, non-linear decision surface. Its role in the
//! reproduction is to be a second, less linear black box for the explainers.

use crate::features::{BatchScratch, FeatureExtractor};
use crate::logistic::TrainOptions;
use crate::matcher::{best_f1_threshold, Matcher};
use crate::scratch::ScratchPool;
use em_data::{Dataset, EntityPair};
use em_linalg::stats::sigmoid;
use em_rngs::rngs::StdRng;
use em_rngs::seq::SliceRandom;
use em_rngs::{Rng, SeedableRng};

/// Dense layer parameters.
#[derive(Debug, Clone)]
struct Layer {
    /// Row-major `(out, in)` weight matrix.
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        // Xavier-uniform init.
        let limit = (6.0 / (n_in + n_out) as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            out.push(em_linalg::dot(row, x) + self.b[o]);
        }
    }
}

fn relu(v: &mut [f64]) {
    for x in v {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// Adam state for one parameter vector.
#[derive(Debug, Clone)]
struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    fn new(n: usize) -> Self {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

/// A trained MLP matcher (features → 2×ReLU hidden → sigmoid).
pub struct MlpMatcher {
    extractor: FeatureExtractor,
    l1: Layer,
    l2: Layer,
    l3: Layer,
    threshold: f64,
    /// Reusable extraction scratch for `predict_proba_batch`. Purely an
    /// allocation cache (cleared per call), so contended callers can fall
    /// back to a fresh local scratch with identical results.
    scratch: ScratchPool<BatchScratch>,
}

/// Hidden layer widths.
const H1: usize = 32;
const H2: usize = 16;

impl MlpMatcher {
    /// Train with Adam + early stopping on validation F1.
    pub fn fit(
        train: &Dataset,
        validation: &Dataset,
        opts: TrainOptions,
    ) -> Result<Self, crate::MatcherError> {
        if train.is_empty() {
            return Err(crate::MatcherError::EmptyTrainingSet);
        }
        let extractor = FeatureExtractor::fit(train);
        let (x, y) = extractor.extract_dataset(train);
        let p = x.cols();
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut l1 = Layer::new(p, H1, &mut rng);
        let mut l2 = Layer::new(H1, H2, &mut rng);
        let mut l3 = Layer::new(H2, 1, &mut rng);
        let mut adam = (
            Adam::new(l1.w.len() + l1.b.len()),
            Adam::new(l2.w.len() + l2.b.len()),
            Adam::new(l3.w.len() + l3.b.len()),
        );
        let lr = (opts.learning_rate * 0.01).max(1e-4); // Adam needs a small LR
        let (val_x, val_y) = extractor.extract_dataset(validation);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut best: (f64, Layer, Layer, Layer) =
            (f64::NEG_INFINITY, l1.clone(), l2.clone(), l3.clone());
        let mut stale = 0usize;

        // Reusable activation buffers.
        let (mut a1, mut a2, mut a3) = (Vec::new(), Vec::new(), Vec::new());

        for _epoch in 0..opts.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(opts.batch_size.max(1)) {
                let mut g1 = vec![0.0; l1.w.len() + l1.b.len()];
                let mut g2 = vec![0.0; l2.w.len() + l2.b.len()];
                let mut g3 = vec![0.0; l3.w.len() + l3.b.len()];
                for &i in batch {
                    let input = x.row(i);
                    l1.forward(input, &mut a1);
                    relu(&mut a1);
                    l2.forward(&a1, &mut a2);
                    relu(&mut a2);
                    l3.forward(&a2, &mut a3);
                    let pred = sigmoid(a3[0]);
                    let weight = if y[i] > 0.5 {
                        opts.positive_weight
                    } else {
                        1.0
                    };
                    // dL/dz3 for BCE+sigmoid.
                    let dz3 = weight * (pred - y[i]);

                    // Layer 3 grads.
                    for j in 0..H2 {
                        g3[j] += dz3 * a2[j];
                    }
                    g3[l3.w.len()] += dz3;

                    // Backprop into layer 2.
                    let mut dz2 = [0.0; H2];
                    for j in 0..H2 {
                        if a2[j] > 0.0 {
                            dz2[j] = dz3 * l3.w[j];
                        }
                    }
                    for o in 0..H2 {
                        if dz2[o] == 0.0 {
                            continue;
                        }
                        for k in 0..H1 {
                            g2[o * H1 + k] += dz2[o] * a1[k];
                        }
                        g2[l2.w.len() + o] += dz2[o];
                    }

                    // Backprop into layer 1.
                    let mut dz1 = vec![0.0; H1];
                    for k in 0..H1 {
                        if a1[k] <= 0.0 {
                            continue;
                        }
                        let mut acc = 0.0;
                        for o in 0..H2 {
                            acc += dz2[o] * l2.w[o * H1 + k];
                        }
                        dz1[k] = acc;
                    }
                    for o in 0..H1 {
                        if dz1[o] == 0.0 {
                            continue;
                        }
                        for k in 0..p {
                            g1[o * p + k] += dz1[o] * input[k];
                        }
                        g1[l1.w.len() + o] += dz1[o];
                    }
                }
                let scale = 1.0 / batch.len() as f64;
                for g in g1.iter_mut().chain(&mut g2).chain(&mut g3) {
                    *g *= scale;
                }
                step_layer(&mut l1, &mut adam.0, &g1, lr, opts.l2);
                step_layer(&mut l2, &mut adam.1, &g2, lr, opts.l2);
                step_layer(&mut l3, &mut adam.2, &g3, lr, opts.l2);
            }

            let (ex, ey) = if val_x.rows() > 0 {
                (&val_x, &val_y)
            } else {
                (&x, &y)
            };
            let f1 = f1_of(&l1, &l2, &l3, ex, ey);
            if f1 > best.0 + 1e-9 {
                best = (f1, l1.clone(), l2.clone(), l3.clone());
                stale = 0;
            } else {
                stale += 1;
                if stale > opts.patience {
                    break;
                }
            }
        }
        let (_, l1, l2, l3) = best;

        let (cal_x, cal_y) = if val_x.rows() > 0 {
            (&val_x, &val_y)
        } else {
            (&x, &y)
        };
        let scores: Vec<f64> = (0..cal_x.rows())
            .map(|i| forward_proba(&l1, &l2, &l3, cal_x.row(i)))
            .collect();
        let labels: Vec<bool> = cal_y.iter().map(|&v| v > 0.5).collect();
        let threshold = best_f1_threshold(&scores, &labels);

        Ok(MlpMatcher {
            extractor,
            l1,
            l2,
            l3,
            threshold,
            scratch: ScratchPool::new(),
        })
    }

    fn batch_with_scratch(&self, pairs: &[EntityPair], scratch: &mut BatchScratch) -> Vec<f64> {
        self.extractor
            .extract_batch_into(pairs, &mut scratch.extract, &mut scratch.features);
        let mut a1 = Vec::new();
        let mut a2 = Vec::new();
        let mut a3 = Vec::new();
        scratch
            .features
            .chunks_exact(self.extractor.dimensions())
            .map(|row| {
                self.l1.forward(row, &mut a1);
                relu(&mut a1);
                self.l2.forward(&a1, &mut a2);
                relu(&mut a2);
                self.l3.forward(&a2, &mut a3);
                sigmoid(a3[0])
            })
            .collect()
    }
}

fn step_layer(layer: &mut Layer, adam: &mut Adam, grads: &[f64], lr: f64, l2_penalty: f64) {
    let nw = layer.w.len();
    // Weight decay on weights only (not biases).
    let mut g = grads.to_vec();
    for i in 0..nw {
        g[i] += l2_penalty * layer.w[i];
    }
    let mut params: Vec<f64> = layer.w.iter().chain(&layer.b).copied().collect();
    adam.step(&mut params, &g, lr);
    layer.w.copy_from_slice(&params[..nw]);
    layer.b.copy_from_slice(&params[nw..]);
}

fn forward_proba(l1: &Layer, l2: &Layer, l3: &Layer, input: &[f64]) -> f64 {
    let mut a1 = Vec::new();
    let mut a2 = Vec::new();
    let mut a3 = Vec::new();
    l1.forward(input, &mut a1);
    relu(&mut a1);
    l2.forward(&a1, &mut a2);
    relu(&mut a2);
    l3.forward(&a2, &mut a3);
    sigmoid(a3[0])
}

fn f1_of(l1: &Layer, l2: &Layer, l3: &Layer, x: &em_linalg::Matrix, y: &[f64]) -> f64 {
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for i in 0..x.rows() {
        let pred = forward_proba(l1, l2, l3, x.row(i)) >= 0.5;
        let truth = y[i] > 0.5;
        match (pred, truth) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            _ => {}
        }
    }
    crate::matcher::report_from_counts(tp, fp, fn_, 0).f1
}

impl Matcher for MlpMatcher {
    fn name(&self) -> &str {
        "mlp"
    }

    fn predict_proba(&self, pair: &EntityPair) -> f64 {
        let f = self.extractor.extract(pair);
        forward_proba(&self.l1, &self.l2, &self.l3, &f)
    }

    /// One interned feature-extraction pass into a reused row-major
    /// buffer, then a batched forward reusing the activation buffers
    /// across rows.
    ///
    /// Deliberately NOT `Matrix::matmul`: its zero-skip optimisation can
    /// flip a `-0.0` accumulator to `+0.0` relative to the dot-product
    /// path (and ReLU produces exact zeros), which would break bitwise
    /// equality with [`Matcher::predict_proba`]. Per-row `Layer::forward`
    /// reproduces the scalar accumulation order exactly.
    fn predict_proba_batch(&self, pairs: &[EntityPair]) -> Vec<f64> {
        let mut s = self.scratch.take();
        let out = self.batch_with_scratch(pairs, &mut s);
        self.scratch.put(s);
        out
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::evaluate;
    use em_synth::{generate, Family, GeneratorConfig};

    fn splits(seed: u64) -> (Dataset, Dataset, Dataset) {
        let cfg = GeneratorConfig {
            entities: 120,
            pairs: 400,
            match_rate: 0.25,
            hard_negative_rate: 0.5,
            seed,
        };
        let d = generate(Family::Songs, cfg).unwrap();
        let s = d.split(0.7, 0.15, seed).unwrap();
        (s.train, s.validation, s.test)
    }

    #[test]
    fn mlp_learns_to_match() {
        let (train, val, test) = splits(11);
        let m = MlpMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        let r = evaluate(&m, &test);
        assert!(r.f1 > 0.75, "MLP F1 too low: {r:?}");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (train, val, test) = splits(12);
        let m = MlpMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        for ex in test.examples().iter().take(20) {
            let p = m.predict_proba(&ex.pair);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn batch_prediction_matches_scalar_bitwise() {
        let (train, val, test) = splits(12);
        let m = MlpMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        let pairs: Vec<em_data::EntityPair> = test
            .examples()
            .iter()
            .take(20)
            .map(|ex| ex.pair.clone())
            .collect();
        let batch = m.predict_proba_batch(&pairs);
        for (p, pair) in batch.iter().zip(&pairs) {
            assert_eq!(p.to_bits(), m.predict_proba(pair).to_bits());
        }
    }

    #[test]
    fn deterministic_training() {
        let (train, val, test) = splits(13);
        let a = MlpMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        let b = MlpMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        for ex in test.examples().iter().take(10) {
            assert_eq!(a.predict_proba(&ex.pair), b.predict_proba(&ex.pair));
        }
    }

    #[test]
    fn empty_train_is_error() {
        let (train, val, _) = splits(14);
        assert!(MlpMatcher::fit(&train.sample(0, 0), &val, TrainOptions::default()).is_err());
    }

    #[test]
    fn adam_reduces_simple_loss() {
        // Sanity check the optimizer on a 1-parameter quadratic.
        let mut adam = Adam::new(1);
        let mut p = vec![5.0];
        for _ in 0..2000 {
            let g = vec![2.0 * p[0]]; // d/dp p^2
            adam.step(&mut p, &g, 0.01);
        }
        assert!(p[0].abs() < 0.1, "Adam failed to minimise: {}", p[0]);
    }
}
