//! Pair → feature-vector extraction for the trainable matchers.
//!
//! For each attribute the extractor emits a bundle of similarity signals
//! (token Jaccard, symmetric Monge-Elkan, q-gram Jaccard, numeric-aware
//! similarity, null indicators, length ratio) plus whole-record TF-IDF
//! cosine and token-overlap features. This is the classic Magellan-style
//! feature table that makes the logistic/MLP matchers competitive while
//! remaining fully word-sensitive: dropping a word changes the features.

use em_data::{Dataset, EntityPair};
use em_text::TfIdf;

/// A fitted feature extractor (holds the TF-IDF vocabulary of the corpus).
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    tfidf: TfIdf,
    n_attributes: usize,
}

/// Number of per-attribute features.
pub const PER_ATTRIBUTE_FEATURES: usize = 6;
/// Number of whole-record features.
pub const GLOBAL_FEATURES: usize = 3;

impl FeatureExtractor {
    /// Fit on the training corpus (both records of every pair).
    pub fn fit(train: &Dataset) -> Self {
        let mut docs: Vec<Vec<String>> = Vec::with_capacity(train.len() * 2);
        for ex in train.examples() {
            docs.push(em_text::tokenize(&ex.pair.left().full_text()));
            docs.push(em_text::tokenize(&ex.pair.right().full_text()));
        }
        FeatureExtractor {
            tfidf: TfIdf::fit(docs.iter().map(|d| d.as_slice())),
            n_attributes: train.schema().len(),
        }
    }

    /// Feature dimensionality for pairs over the fitted schema.
    pub fn dimensions(&self) -> usize {
        self.n_attributes * PER_ATTRIBUTE_FEATURES + GLOBAL_FEATURES
    }

    /// Extract the feature vector of a pair.
    ///
    /// # Panics
    /// Panics in debug builds if the pair's schema size differs from the
    /// fitted one; in release the extra/missing attributes are truncated or
    /// zero-filled (defensive for perturbed pairs, which keep the schema).
    pub fn extract(&self, pair: &EntityPair) -> Vec<f64> {
        debug_assert_eq!(
            pair.schema().len(),
            self.n_attributes,
            "schema size changed"
        );
        let mut out = Vec::with_capacity(self.dimensions());
        for attr in 0..self.n_attributes.min(pair.schema().len()) {
            let l = pair.left().value(attr);
            let r = pair.right().value(attr);
            push_attribute_features(&mut out, l, r);
        }
        while out.len() < self.n_attributes * PER_ATTRIBUTE_FEATURES {
            out.push(0.0);
        }
        // Whole-record features.
        let lt = em_text::tokenize(&pair.left().full_text());
        let rt = em_text::tokenize(&pair.right().full_text());
        out.push(self.tfidf.cosine(&lt, &rt));
        out.push(em_text::jaccard(&lt, &rt));
        out.push(em_text::overlap_coefficient(&lt, &rt));
        out
    }

    /// Extract the feature matrix of a batch of pairs (one row per pair),
    /// bitwise-identical to stacking [`FeatureExtractor::extract`] rows.
    ///
    /// Perturbed batches are highly redundant — drop masks leave most
    /// `(side, attribute)` cells untouched, and SingleSide/Landmark masks
    /// keep one whole record constant — so the expensive per-cell
    /// similarity bundles are cached per distinct `(attr, left, right)`
    /// value pair, and cell tokenisations per distinct value. Record-level
    /// token lists are assembled from the cached cell tokens: values are
    /// space-joined in `full_text` and the tokenizer splits on
    /// non-alphanumerics, so per-cell tokenisation concatenates to exactly
    /// the full-record tokenisation. The caches live only for the call: no
    /// invalidation, no locking, and hits return copies of values computed
    /// by the exact same code as the scalar path.
    pub fn extract_batch(&self, pairs: &[EntityPair]) -> em_linalg::Matrix {
        use std::collections::HashMap;
        let mut attr_cache: HashMap<(usize, &str, &str), [f64; PER_ATTRIBUTE_FEATURES]> =
            HashMap::new();
        let mut cell_tokens: HashMap<&str, Vec<String>> = HashMap::new();
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(pairs.len());
        let mut lt: Vec<String> = Vec::new();
        let mut rt: Vec<String> = Vec::new();
        for pair in pairs {
            debug_assert_eq!(
                pair.schema().len(),
                self.n_attributes,
                "schema size changed"
            );
            let mut out = Vec::with_capacity(self.dimensions());
            for attr in 0..self.n_attributes.min(pair.schema().len()) {
                let l = pair.left().value(attr);
                let r = pair.right().value(attr);
                let feats = attr_cache
                    .entry((attr, l, r))
                    .or_insert_with(|| attribute_features(l, r));
                out.extend_from_slice(&feats[..]);
            }
            while out.len() < self.n_attributes * PER_ATTRIBUTE_FEATURES {
                out.push(0.0);
            }
            lt.clear();
            rt.clear();
            for (record, toks) in [(pair.left(), &mut lt), (pair.right(), &mut rt)] {
                for idx in 0..record.len() {
                    let value = record.value(idx);
                    if !cell_tokens.contains_key(value) {
                        cell_tokens.insert(value, em_text::tokenize(value));
                    }
                    toks.extend_from_slice(&cell_tokens[value]);
                }
            }
            out.push(self.tfidf.cosine(&lt, &rt));
            out.push(em_text::jaccard(&lt, &rt));
            out.push(em_text::overlap_coefficient(&lt, &rt));
            rows.push(out);
        }
        em_linalg::Matrix::from_rows(&rows)
    }

    /// Extract features for every pair of a dataset along with labels.
    pub fn extract_dataset(&self, data: &Dataset) -> (em_linalg::Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = data
            .examples()
            .iter()
            .map(|ex| self.extract(&ex.pair))
            .collect();
        let y: Vec<f64> = data.examples().iter().map(|ex| ex.label.as_f64()).collect();
        (em_linalg::Matrix::from_rows(&rows), y)
    }
}

/// The per-attribute similarity bundle; the single implementation both
/// the scalar and batched extraction paths share.
fn attribute_features(l: &str, r: &str) -> [f64; PER_ATTRIBUTE_FEATURES] {
    let lt = em_text::tokenize(l);
    let rt = em_text::tokenize(r);
    let both_empty = lt.is_empty() && rt.is_empty();
    let one_empty = lt.is_empty() != rt.is_empty();
    // Null indicators first: similarity features are forced to 0 when either
    // side is missing so "both null" is not mistaken for "identical".
    if both_empty || one_empty {
        return [
            0.0, // jaccard
            0.0, // monge-elkan
            0.0, // qgram jaccard
            0.0, // numeric/string sim
            if one_empty { 1.0 } else { 0.0 },
            if both_empty { 1.0 } else { 0.0 },
        ];
    }
    [
        em_text::jaccard(&lt, &rt),
        em_text::monge_elkan_sym(&lt, &rt),
        em_text::qgram_jaccard(&l.to_lowercase(), &r.to_lowercase(), 3),
        em_text::numeric_or_string_similarity(l, r),
        0.0,
        0.0,
    ]
}

fn push_attribute_features(out: &mut Vec<f64>, l: &str, r: &str) {
    out.extend_from_slice(&attribute_features(l, r));
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{Label, LabeledPair, Record, Schema};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let schema = Arc::new(Schema::new(vec!["title", "price"]));
        let mk = |id: u64, t: &str, p: &str| Record::new(id, vec![t.to_string(), p.to_string()]);
        let examples = vec![
            LabeledPair {
                pair: EntityPair::new(
                    Arc::clone(&schema),
                    mk(0, "sonix tv 55", "499"),
                    mk(1, "sonix television 55", "489"),
                )
                .unwrap(),
                label: Label::Match,
            },
            LabeledPair {
                pair: EntityPair::new(
                    Arc::clone(&schema),
                    mk(2, "veltron laptop", "999"),
                    mk(3, "koyama blender", "59"),
                )
                .unwrap(),
                label: Label::NonMatch,
            },
        ];
        Dataset::new("toy", schema, examples).unwrap()
    }

    #[test]
    fn dimensions_match_schema() {
        let fe = FeatureExtractor::fit(&dataset());
        assert_eq!(
            fe.dimensions(),
            2 * PER_ATTRIBUTE_FEATURES + GLOBAL_FEATURES
        );
    }

    #[test]
    fn extract_produces_correct_length_and_bounds() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        for ex in d.examples() {
            let f = fe.extract(&ex.pair);
            assert_eq!(f.len(), fe.dimensions());
            for &v in &f {
                assert!((0.0..=1.0 + 1e-9).contains(&v), "feature out of range: {v}");
            }
        }
    }

    #[test]
    fn matching_pair_scores_higher_overall() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        let fm = fe.extract(&d.examples()[0].pair);
        let fn_ = fe.extract(&d.examples()[1].pair);
        let sum_m: f64 = fm.iter().sum();
        let sum_n: f64 = fn_.iter().sum();
        assert!(sum_m > sum_n);
    }

    #[test]
    fn null_indicators_fire() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        let schema = d.schema_arc();
        let pair = EntityPair::new(
            schema,
            Record::new(10, vec!["x".into(), "".into()]),
            Record::new(11, vec!["x".into(), "5".into()]),
        )
        .unwrap();
        let f = fe.extract(&pair);
        // price attribute block starts at PER_ATTRIBUTE_FEATURES; index 4 is
        // one-empty, 5 is both-empty.
        assert_eq!(f[PER_ATTRIBUTE_FEATURES + 4], 1.0);
        assert_eq!(f[PER_ATTRIBUTE_FEATURES + 5], 0.0);

        let pair2 = EntityPair::new(
            d.schema_arc(),
            Record::new(12, vec!["x".into(), "".into()]),
            Record::new(13, vec!["x".into(), "".into()]),
        )
        .unwrap();
        let f2 = fe.extract(&pair2);
        assert_eq!(f2[PER_ATTRIBUTE_FEATURES + 4], 0.0);
        assert_eq!(f2[PER_ATTRIBUTE_FEATURES + 5], 1.0);
        // Similarities zeroed when null present.
        assert_eq!(f2[PER_ATTRIBUTE_FEATURES], 0.0);
    }

    #[test]
    fn dropping_a_word_changes_features() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        let pair = &d.examples()[0].pair;
        let full = fe.extract(pair);
        let mut perturbed = pair.clone();
        perturbed
            .record_mut(em_data::Side::Left)
            .set_value(0, "tv 55".into());
        let dropped = fe.extract(&perturbed);
        assert_ne!(full, dropped);
    }

    #[test]
    fn extract_batch_matches_scalar_rows_bitwise() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        // Duplicates and a null-attribute pair exercise both caches.
        let mut pairs: Vec<EntityPair> = d.examples().iter().map(|ex| ex.pair.clone()).collect();
        pairs.push(pairs[0].clone());
        pairs.push(
            EntityPair::new(
                d.schema_arc(),
                Record::new(10, vec!["x".into(), "".into()]),
                Record::new(11, vec!["x".into(), "5".into()]),
            )
            .unwrap(),
        );
        let x = fe.extract_batch(&pairs);
        assert_eq!(x.rows(), pairs.len());
        for (i, p) in pairs.iter().enumerate() {
            let f = fe.extract(p);
            let batch_bits: Vec<u64> = x.row(i).iter().map(|v| v.to_bits()).collect();
            let scalar_bits: Vec<u64> = f.iter().map(|v| v.to_bits()).collect();
            assert_eq!(batch_bits, scalar_bits, "row {i} differs");
        }
    }

    #[test]
    fn extract_dataset_shapes() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        let (x, y) = fe.extract_dataset(&d);
        assert_eq!(x.rows(), 2);
        assert_eq!(x.cols(), fe.dimensions());
        assert_eq!(y, vec![1.0, 0.0]);
    }
}
