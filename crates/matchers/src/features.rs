//! Pair → feature-vector extraction for the trainable matchers.
//!
//! For each attribute the extractor emits a bundle of similarity signals
//! (token Jaccard, symmetric Monge-Elkan, q-gram Jaccard, numeric-aware
//! similarity, null indicators, length ratio) plus whole-record TF-IDF
//! cosine and token-overlap features. This is the classic Magellan-style
//! feature table that makes the logistic/MLP matchers competitive while
//! remaining fully word-sensitive: dropping a word changes the features.

use em_data::{Dataset, EntityPair};
use em_text::{SparseVec, TfIdf, TokenArena};
use std::collections::HashMap;

/// A fitted feature extractor (holds the TF-IDF vocabulary of the corpus).
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    tfidf: TfIdf,
    n_attributes: usize,
}

/// Reusable scratch state for [`FeatureExtractor::extract_batch_into`].
///
/// Everything in here is a per-*call* cache, not cross-call state: the
/// scratch is cleared (capacity retained) at the top of every
/// `extract_batch_into` call, so results never depend on what a previous
/// batch interned. Reusing the struct across calls only recycles
/// allocations — which is the whole point on the perturbation hot path,
/// where one explanation issues hundreds of highly redundant batches.
#[derive(Debug, Default)]
pub struct ExtractScratch {
    arena: TokenArena,
    /// Arena token id → TF-IDF vocabulary column (`-1` = out of
    /// vocabulary); extended lazily as the arena interns new tokens.
    tfidf_col: Vec<i32>,
    /// `(left cell, right cell)` → the six per-attribute features.
    /// `attribute_features` depends only on the two cell values, not on
    /// the attribute index, so the key omits it.
    attr_cache: HashMap<(u32, u32), [f64; PER_ATTRIBUTE_FEATURES]>,
    /// Directional `(token a, token b)` → `jaro_winkler(a, b)`; jaro's
    /// scan order differs between `(a, b)` and `(b, a)`, so the key is
    /// deliberately not symmetrised.
    jw_cache: HashMap<(u32, u32), f64>,
    /// Record view (tuple of interned cell ids) → index into `records`.
    record_ids: HashMap<Vec<u32>, u32>,
    records: Vec<RecordFeatures>,
    key_l: Vec<u32>,
    key_r: Vec<u32>,
    cols_scratch: Vec<u32>,
    ids_scratch: Vec<u32>,
    counts_scratch: Vec<(usize, f64)>,
}

impl ExtractScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop cached content but keep allocated capacity.
    fn clear(&mut self) {
        self.arena.clear();
        self.tfidf_col.clear();
        self.attr_cache.clear();
        self.jw_cache.clear();
        self.record_ids.clear();
        self.records.clear();
    }
}

/// Whole-record derived data, computed once per distinct record view.
#[derive(Debug)]
struct RecordFeatures {
    /// L2-normalised TF-IDF vector over vocabulary columns.
    tfidf: SparseVec,
    /// Sorted distinct token ids of the whole record.
    distinct: Vec<u32>,
}

/// Everything a matcher needs to serve `predict_proba_batch`
/// allocation-free: the extraction caches plus the row-major buffer the
/// feature rows are written into.
#[derive(Debug, Default)]
pub struct BatchScratch {
    pub extract: ExtractScratch,
    pub features: Vec<f64>,
}

/// Number of per-attribute features.
pub const PER_ATTRIBUTE_FEATURES: usize = 6;
/// Number of whole-record features.
pub const GLOBAL_FEATURES: usize = 3;

impl FeatureExtractor {
    /// Fit on the training corpus (both records of every pair).
    pub fn fit(train: &Dataset) -> Self {
        let mut docs: Vec<Vec<String>> = Vec::with_capacity(train.len() * 2);
        for ex in train.examples() {
            docs.push(em_text::tokenize(&ex.pair.left().full_text()));
            docs.push(em_text::tokenize(&ex.pair.right().full_text()));
        }
        FeatureExtractor {
            tfidf: TfIdf::fit(docs.iter().map(|d| d.as_slice())),
            n_attributes: train.schema().len(),
        }
    }

    /// Feature dimensionality for pairs over the fitted schema.
    pub fn dimensions(&self) -> usize {
        self.n_attributes * PER_ATTRIBUTE_FEATURES + GLOBAL_FEATURES
    }

    /// Extract the feature vector of a pair.
    ///
    /// # Panics
    /// Panics in debug builds if the pair's schema size differs from the
    /// fitted one; in release the extra/missing attributes are truncated or
    /// zero-filled (defensive for perturbed pairs, which keep the schema).
    pub fn extract(&self, pair: &EntityPair) -> Vec<f64> {
        debug_assert_eq!(
            pair.schema().len(),
            self.n_attributes,
            "schema size changed"
        );
        let mut out = Vec::with_capacity(self.dimensions());
        for attr in 0..self.n_attributes.min(pair.schema().len()) {
            let l = pair.left().value(attr);
            let r = pair.right().value(attr);
            push_attribute_features(&mut out, l, r);
        }
        while out.len() < self.n_attributes * PER_ATTRIBUTE_FEATURES {
            out.push(0.0);
        }
        // Whole-record features.
        let lt = em_text::tokenize(&pair.left().full_text());
        let rt = em_text::tokenize(&pair.right().full_text());
        out.push(self.tfidf.cosine(&lt, &rt));
        out.push(em_text::jaccard(&lt, &rt));
        out.push(em_text::overlap_coefficient(&lt, &rt));
        out
    }

    /// Extract the feature matrix of a batch of pairs (one row per pair),
    /// bitwise-identical to stacking [`FeatureExtractor::extract`] rows.
    ///
    /// Thin wrapper over [`FeatureExtractor::extract_batch_into`] with a
    /// fresh scratch; hot callers (the matchers' `predict_proba_batch`)
    /// hold a reusable [`ExtractScratch`] instead.
    pub fn extract_batch(&self, pairs: &[EntityPair]) -> em_linalg::Matrix {
        let mut scratch = ExtractScratch::default();
        let mut buf = Vec::new();
        self.extract_batch_into(pairs, &mut scratch, &mut buf);
        em_linalg::Matrix::from_vec(pairs.len(), self.dimensions(), buf)
    }

    /// Extract a batch of pairs into a caller-provided row-major buffer
    /// (`pairs.len() × dimensions()`, fully overwritten), bitwise-identical
    /// to stacking [`FeatureExtractor::extract`] rows.
    ///
    /// Perturbed batches are highly redundant — drop masks leave most
    /// `(side, attribute)` cells untouched, and SingleSide/Landmark masks
    /// keep one whole record constant — so cell values are interned once
    /// into a [`TokenArena`] and every expensive kernel runs on integer id
    /// slices: per-cell similarity bundles are cached per distinct
    /// `(left, right)` cell-id pair, Jaro-Winkler per directional token-id
    /// pair, and whole-record TF-IDF vectors / distinct-token sets per
    /// distinct tuple of cell ids. Values are space-joined in `full_text`
    /// and the tokenizer splits on non-alphanumerics, so per-cell token
    /// sequences concatenate to exactly the full-record tokenisation. The
    /// caches live only for the call (the scratch is cleared on entry):
    /// no invalidation, no locking, and every cached value is computed by
    /// kernels proven bitwise-equal to the scalar string path.
    pub fn extract_batch_into(
        &self,
        pairs: &[EntityPair],
        scratch: &mut ExtractScratch,
        out: &mut Vec<f64>,
    ) {
        scratch.clear();
        out.clear();
        out.reserve(pairs.len() * self.dimensions());
        for pair in pairs {
            debug_assert_eq!(
                pair.schema().len(),
                self.n_attributes,
                "schema size changed"
            );
            let row_start = out.len();
            // Intern each record's cells exactly once; the attribute loop
            // and the record-level features both read the cached ids
            // (EntityPair guarantees record length == schema length).
            scratch.key_l.clear();
            scratch.key_r.clear();
            for idx in 0..pair.left().len() {
                let cid = scratch.arena.intern_cell(pair.left().value(idx));
                scratch.key_l.push(cid);
            }
            for idx in 0..pair.right().len() {
                let cid = scratch.arena.intern_cell(pair.right().value(idx));
                scratch.key_r.push(cid);
            }
            for attr in 0..self.n_attributes.min(pair.schema().len()) {
                let l = scratch.key_l[attr];
                let r = scratch.key_r[attr];
                let feats = if let Some(&f) = scratch.attr_cache.get(&(l, r)) {
                    f
                } else {
                    let f =
                        interned_attribute_features(&scratch.arena, &mut scratch.jw_cache, l, r);
                    scratch.attr_cache.insert((l, r), f);
                    f
                };
                out.extend_from_slice(&feats);
            }
            while out.len() - row_start < self.n_attributes * PER_ATTRIBUTE_FEATURES {
                out.push(0.0);
            }
            let li = self.record_index(scratch, true);
            let ri = self.record_index(scratch, false);
            let (lrec, rrec) = (&scratch.records[li], &scratch.records[ri]);
            out.push(em_text::sparse_dot(&lrec.tfidf, &rrec.tfidf));
            out.push(em_text::jaccard_sorted_ids(&lrec.distinct, &rrec.distinct));
            out.push(em_text::overlap_sorted_ids(&lrec.distinct, &rrec.distinct));
        }
    }

    /// Return the index of a record's cached whole-record features,
    /// computing them on first sight. The record is identified by its
    /// already-interned cell-id key (`key_l`/`key_r` in the scratch).
    fn record_index(&self, scratch: &mut ExtractScratch, left: bool) -> usize {
        let key = if left { &scratch.key_l } else { &scratch.key_r };
        if let Some(&i) = scratch.record_ids.get(key.as_slice()) {
            return i as usize;
        }
        // Extend the token → vocabulary-column memo over newly interned
        // tokens (ids are dense, so the memo is a flat vector).
        while scratch.tfidf_col.len() < scratch.arena.n_tokens() {
            let tid = scratch.tfidf_col.len() as u32;
            let col = self
                .tfidf
                .column(scratch.arena.token_text(tid))
                .map_or(-1, |c| c as i32);
            scratch.tfidf_col.push(col);
        }
        // Gather in-vocabulary columns (with multiplicity) and all token
        // ids across the record's cells.
        scratch.cols_scratch.clear();
        scratch.ids_scratch.clear();
        for &cid in key {
            for &tid in scratch.arena.tokens(cid) {
                scratch.ids_scratch.push(tid);
                let col = scratch.tfidf_col[tid as usize];
                if col >= 0 {
                    scratch.cols_scratch.push(col as u32);
                }
            }
        }
        // Run-length encode the sorted columns into (column, count); the
        // counts are exact small integers, so accumulating them here is
        // bitwise-equal to `transform`'s `+= 1.0` hash-map counting.
        scratch.cols_scratch.sort_unstable();
        scratch.counts_scratch.clear();
        for &c in &scratch.cols_scratch {
            match scratch.counts_scratch.last_mut() {
                Some(last) if last.0 == c as usize => last.1 += 1.0,
                _ => scratch.counts_scratch.push((c as usize, 1.0)),
            }
        }
        let tfidf = self.tfidf.transform_sorted_counts(&scratch.counts_scratch);
        scratch.ids_scratch.sort_unstable();
        scratch.ids_scratch.dedup();
        let idx = scratch.records.len();
        scratch.records.push(RecordFeatures {
            tfidf,
            distinct: scratch.ids_scratch.clone(),
        });
        scratch.record_ids.insert(key.clone(), idx as u32);
        idx
    }

    /// Extract features for every pair of a dataset along with labels.
    pub fn extract_dataset(&self, data: &Dataset) -> (em_linalg::Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = data
            .examples()
            .iter()
            .map(|ex| self.extract(&ex.pair))
            .collect();
        let y: Vec<f64> = data.examples().iter().map(|ex| ex.label.as_f64()).collect();
        (em_linalg::Matrix::from_rows(&rows), y)
    }
}

/// The per-attribute similarity bundle; the single implementation both
/// the scalar and batched extraction paths share.
fn attribute_features(l: &str, r: &str) -> [f64; PER_ATTRIBUTE_FEATURES] {
    let lt = em_text::tokenize(l);
    let rt = em_text::tokenize(r);
    let both_empty = lt.is_empty() && rt.is_empty();
    let one_empty = lt.is_empty() != rt.is_empty();
    // Null indicators first: similarity features are forced to 0 when either
    // side is missing so "both null" is not mistaken for "identical".
    if both_empty || one_empty {
        return [
            0.0, // jaccard
            0.0, // monge-elkan
            0.0, // qgram jaccard
            0.0, // numeric/string sim
            if one_empty { 1.0 } else { 0.0 },
            if both_empty { 1.0 } else { 0.0 },
        ];
    }
    [
        em_text::jaccard(&lt, &rt),
        em_text::monge_elkan_sym(&lt, &rt),
        em_text::qgram_jaccard(&l.to_lowercase(), &r.to_lowercase(), 3),
        em_text::numeric_or_string_similarity(l, r),
        0.0,
        0.0,
    ]
}

fn push_attribute_features(out: &mut Vec<f64>, l: &str, r: &str) {
    out.extend_from_slice(&attribute_features(l, r));
}

/// Interned twin of [`attribute_features`]: identical rules in identical
/// order, operating on arena id slices. Bitwise-equal to the string path
/// because every kernel either reduces to integer set counts
/// ([`em_text::jaccard_sorted_ids`] over token/gram ids) or consumes the
/// exact same strings (Jaro-Winkler on interned token text, numeric
/// similarity on the raw cell text).
fn interned_attribute_features(
    arena: &TokenArena,
    jw_cache: &mut HashMap<(u32, u32), f64>,
    l: u32,
    r: u32,
) -> [f64; PER_ATTRIBUTE_FEATURES] {
    let lt = arena.tokens(l);
    let rt = arena.tokens(r);
    let both_empty = lt.is_empty() && rt.is_empty();
    let one_empty = lt.is_empty() != rt.is_empty();
    if both_empty || one_empty {
        return [
            0.0,
            0.0,
            0.0,
            0.0,
            if one_empty { 1.0 } else { 0.0 },
            if both_empty { 1.0 } else { 0.0 },
        ];
    }
    [
        em_text::jaccard_sorted_ids(arena.sorted_tokens(l), arena.sorted_tokens(r)),
        0.5 * (monge_elkan_ids(arena, jw_cache, lt, rt) + monge_elkan_ids(arena, jw_cache, rt, lt)),
        em_text::jaccard_sorted_ids(arena.grams(l), arena.grams(r)),
        em_text::numeric_or_string_similarity(arena.cell_text(l), arena.cell_text(r)),
        0.0,
        0.0,
    ]
}

/// [`em_text::monge_elkan`] over arena token-id sequences with a
/// directional Jaro-Winkler memo. Same accumulation: per `a`-token best
/// via `f64::max` in `b` sequence order, summed in `a` sequence order.
/// Both sides are known non-empty here.
fn monge_elkan_ids(
    arena: &TokenArena,
    jw_cache: &mut HashMap<(u32, u32), f64>,
    a: &[u32],
    b: &[u32],
) -> f64 {
    let mut sum = 0.0;
    for &ta in a {
        let mut best = 0.0f64;
        for &tb in b {
            let jw = match jw_cache.get(&(ta, tb)) {
                Some(&v) => v,
                None => {
                    let v = em_text::jaro_winkler(arena.token_text(ta), arena.token_text(tb));
                    jw_cache.insert((ta, tb), v);
                    v
                }
            };
            best = best.max(jw);
        }
        sum += best;
    }
    sum / a.len() as f64
}

#[cfg(test)]
mod proptests {
    use super::*;
    use em_data::{Label, LabeledPair, Record, Schema};
    use propcheck::prelude::*;
    use std::sync::Arc;

    proptest! {
        // The interned batch path is bitwise-equal to the scalar string
        // path on arbitrary cell content (empty, whitespace, non-ASCII,
        // duplicates), and reusing one scratch across batches — or
        // handing it a dirty output buffer — changes nothing.
        #[test]
        fn interned_batch_matches_scalar_extract_bitwise(
            cells in propcheck::collection::vec(".{0,12}", 8..16),
        ) {
            let schema = Arc::new(Schema::new(vec!["name", "info"]));
            let rec =
                |id: u64, a: &str, b: &str| Record::new(id, vec![a.to_string(), b.to_string()]);
            let mut pairs: Vec<EntityPair> = Vec::new();
            for chunk in cells.chunks_exact(4) {
                pairs.push(
                    EntityPair::new(
                        Arc::clone(&schema),
                        rec(pairs.len() as u64 * 2, &chunk[0], &chunk[1]),
                        rec(pairs.len() as u64 * 2 + 1, &chunk[2], &chunk[3]),
                    )
                    .unwrap(),
                );
            }
            let examples: Vec<LabeledPair> = pairs
                .iter()
                .enumerate()
                .map(|(i, p)| LabeledPair {
                    pair: p.clone(),
                    label: if i % 2 == 0 { Label::Match } else { Label::NonMatch },
                })
                .collect();
            let data = Dataset::new("prop", Arc::clone(&schema), examples).unwrap();
            let fe = FeatureExtractor::fit(&data);
            // Duplicate pairs exercise every cache level.
            pairs.push(pairs[0].clone());

            let mut scratch = ExtractScratch::new();
            let mut buf = Vec::new();
            fe.extract_batch_into(&pairs, &mut scratch, &mut buf);
            prop_assert_eq!(buf.len(), pairs.len() * fe.dimensions());
            for (i, pair) in pairs.iter().enumerate() {
                let scalar = fe.extract(pair);
                let row = &buf[i * fe.dimensions()..(i + 1) * fe.dimensions()];
                for (a, b) in row.iter().zip(&scalar) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            // Second pass with the now-dirty scratch and a poisoned buffer.
            let mut buf2 = vec![f64::NAN; 3];
            fe.extract_batch_into(&pairs, &mut scratch, &mut buf2);
            prop_assert_eq!(buf.len(), buf2.len());
            for (a, b) in buf.iter().zip(&buf2) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{Label, LabeledPair, Record, Schema};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let schema = Arc::new(Schema::new(vec!["title", "price"]));
        let mk = |id: u64, t: &str, p: &str| Record::new(id, vec![t.to_string(), p.to_string()]);
        let examples = vec![
            LabeledPair {
                pair: EntityPair::new(
                    Arc::clone(&schema),
                    mk(0, "sonix tv 55", "499"),
                    mk(1, "sonix television 55", "489"),
                )
                .unwrap(),
                label: Label::Match,
            },
            LabeledPair {
                pair: EntityPair::new(
                    Arc::clone(&schema),
                    mk(2, "veltron laptop", "999"),
                    mk(3, "koyama blender", "59"),
                )
                .unwrap(),
                label: Label::NonMatch,
            },
        ];
        Dataset::new("toy", schema, examples).unwrap()
    }

    #[test]
    fn dimensions_match_schema() {
        let fe = FeatureExtractor::fit(&dataset());
        assert_eq!(
            fe.dimensions(),
            2 * PER_ATTRIBUTE_FEATURES + GLOBAL_FEATURES
        );
    }

    #[test]
    fn extract_produces_correct_length_and_bounds() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        for ex in d.examples() {
            let f = fe.extract(&ex.pair);
            assert_eq!(f.len(), fe.dimensions());
            for &v in &f {
                assert!((0.0..=1.0 + 1e-9).contains(&v), "feature out of range: {v}");
            }
        }
    }

    #[test]
    fn matching_pair_scores_higher_overall() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        let fm = fe.extract(&d.examples()[0].pair);
        let fn_ = fe.extract(&d.examples()[1].pair);
        let sum_m: f64 = fm.iter().sum();
        let sum_n: f64 = fn_.iter().sum();
        assert!(sum_m > sum_n);
    }

    #[test]
    fn null_indicators_fire() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        let schema = d.schema_arc();
        let pair = EntityPair::new(
            schema,
            Record::new(10, vec!["x".into(), "".into()]),
            Record::new(11, vec!["x".into(), "5".into()]),
        )
        .unwrap();
        let f = fe.extract(&pair);
        // price attribute block starts at PER_ATTRIBUTE_FEATURES; index 4 is
        // one-empty, 5 is both-empty.
        assert_eq!(f[PER_ATTRIBUTE_FEATURES + 4], 1.0);
        assert_eq!(f[PER_ATTRIBUTE_FEATURES + 5], 0.0);

        let pair2 = EntityPair::new(
            d.schema_arc(),
            Record::new(12, vec!["x".into(), "".into()]),
            Record::new(13, vec!["x".into(), "".into()]),
        )
        .unwrap();
        let f2 = fe.extract(&pair2);
        assert_eq!(f2[PER_ATTRIBUTE_FEATURES + 4], 0.0);
        assert_eq!(f2[PER_ATTRIBUTE_FEATURES + 5], 1.0);
        // Similarities zeroed when null present.
        assert_eq!(f2[PER_ATTRIBUTE_FEATURES], 0.0);
    }

    #[test]
    fn dropping_a_word_changes_features() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        let pair = &d.examples()[0].pair;
        let full = fe.extract(pair);
        let mut perturbed = pair.clone();
        perturbed
            .record_mut(em_data::Side::Left)
            .set_value(0, "tv 55".into());
        let dropped = fe.extract(&perturbed);
        assert_ne!(full, dropped);
    }

    #[test]
    fn extract_batch_matches_scalar_rows_bitwise() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        // Duplicates and a null-attribute pair exercise both caches.
        let mut pairs: Vec<EntityPair> = d.examples().iter().map(|ex| ex.pair.clone()).collect();
        pairs.push(pairs[0].clone());
        pairs.push(
            EntityPair::new(
                d.schema_arc(),
                Record::new(10, vec!["x".into(), "".into()]),
                Record::new(11, vec!["x".into(), "5".into()]),
            )
            .unwrap(),
        );
        let x = fe.extract_batch(&pairs);
        assert_eq!(x.rows(), pairs.len());
        for (i, p) in pairs.iter().enumerate() {
            let f = fe.extract(p);
            let batch_bits: Vec<u64> = x.row(i).iter().map(|v| v.to_bits()).collect();
            let scalar_bits: Vec<u64> = f.iter().map(|v| v.to_bits()).collect();
            assert_eq!(batch_bits, scalar_bits, "row {i} differs");
        }
    }

    #[test]
    fn extract_dataset_shapes() {
        let d = dataset();
        let fe = FeatureExtractor::fit(&d);
        let (x, y) = fe.extract_dataset(&d);
        assert_eq!(x.rows(), 2);
        assert_eq!(x.cols(), fe.dimensions());
        assert_eq!(y, vec![1.0, 0.0]);
    }
}
