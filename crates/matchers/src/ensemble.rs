//! Ensemble matcher: average (optionally weighted) of member matchers'
//! probabilities. Used in the robustness experiments as a "harder" black
//! box — its decision surface mixes feature-level and token-level models,
//! which is closer to the production stacks EM explainers face.

use crate::matcher::{best_f1_threshold, Matcher};
use em_data::{Dataset, EntityPair};
use std::sync::Arc;

/// A weighted soft-voting ensemble.
pub struct EnsembleMatcher {
    members: Vec<(Arc<dyn Matcher>, f64)>,
    threshold: f64,
    name: String,
}

impl EnsembleMatcher {
    /// Build with explicit member weights.
    ///
    /// # Errors
    /// Rejects empty ensembles and non-positive/non-finite weights.
    pub fn new(members: Vec<(Arc<dyn Matcher>, f64)>) -> Result<Self, crate::MatcherError> {
        if members.is_empty() {
            return Err(crate::MatcherError::NoRules);
        }
        if members.iter().any(|(_, w)| *w <= 0.0 || !w.is_finite()) {
            return Err(crate::MatcherError::InvalidRuleWeight);
        }
        let name = format!(
            "ensemble({})",
            members
                .iter()
                .map(|(m, _)| m.name())
                .collect::<Vec<_>>()
                .join("+")
        );
        Ok(EnsembleMatcher {
            members,
            threshold: 0.5,
            name,
        })
    }

    /// Uniform-weight ensemble.
    pub fn uniform(members: Vec<Arc<dyn Matcher>>) -> Result<Self, crate::MatcherError> {
        EnsembleMatcher::new(members.into_iter().map(|m| (m, 1.0)).collect())
    }

    /// Calibrate the decision threshold on a labelled dataset.
    pub fn calibrate(&mut self, validation: &Dataset) {
        if validation.is_empty() {
            return;
        }
        let scores: Vec<f64> = validation
            .examples()
            .iter()
            .map(|ex| self.predict_proba(&ex.pair))
            .collect();
        let labels: Vec<bool> = validation
            .examples()
            .iter()
            .map(|ex| ex.label.is_match())
            .collect();
        self.threshold = best_f1_threshold(&scores, &labels);
    }

    /// Number of member models.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Matcher for EnsembleMatcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_proba(&self, pair: &EntityPair) -> f64 {
        let weight_sum: f64 = self.members.iter().map(|(_, w)| w).sum();
        let score: f64 = self
            .members
            .iter()
            .map(|(m, w)| w * m.predict_proba(pair))
            .sum();
        score / weight_sum
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleMatcher;
    use em_data::{Record, Schema};

    struct Constant(f64);
    impl Matcher for Constant {
        fn name(&self) -> &str {
            "const"
        }
        fn predict_proba(&self, _: &EntityPair) -> f64 {
            self.0
        }
    }

    fn pair() -> EntityPair {
        let schema = Arc::new(Schema::new(vec!["t"]));
        EntityPair::new(
            schema,
            Record::new(0, vec!["x".into()]),
            Record::new(1, vec!["x".into()]),
        )
        .unwrap()
    }

    #[test]
    fn uniform_ensemble_averages() {
        let e = EnsembleMatcher::uniform(vec![Arc::new(Constant(0.2)), Arc::new(Constant(0.8))])
            .unwrap();
        assert!((e.predict_proba(&pair()) - 0.5).abs() < 1e-12);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn weights_shift_the_average() {
        let e = EnsembleMatcher::new(vec![
            (Arc::new(Constant(0.0)) as Arc<dyn Matcher>, 1.0),
            (Arc::new(Constant(1.0)) as Arc<dyn Matcher>, 3.0),
        ])
        .unwrap();
        assert!((e.predict_proba(&pair()) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(EnsembleMatcher::uniform(vec![]).is_err());
        assert!(
            EnsembleMatcher::new(vec![(Arc::new(Constant(0.5)) as Arc<dyn Matcher>, 0.0)]).is_err()
        );
        assert!(EnsembleMatcher::new(vec![(
            Arc::new(Constant(0.5)) as Arc<dyn Matcher>,
            f64::NAN
        )])
        .is_err());
    }

    #[test]
    fn name_lists_members() {
        let e = EnsembleMatcher::uniform(vec![
            Arc::new(Constant(0.5)) as Arc<dyn Matcher>,
            Arc::new(RuleMatcher::uniform(1, 0.5).unwrap()),
        ])
        .unwrap();
        assert_eq!(e.name(), "ensemble(const+rules)");
    }

    #[test]
    fn calibration_moves_threshold() {
        use em_data::{Label, LabeledPair};
        // Member scores 0.6 on everything; with all-positive labels any
        // threshold <= 0.6 is perfect, so calibration keeps it <= 0.6.
        let schema = Arc::new(Schema::new(vec!["t"]));
        let examples = vec![LabeledPair {
            pair: EntityPair::new(
                Arc::clone(&schema),
                Record::new(0, vec!["a".into()]),
                Record::new(1, vec!["a".into()]),
            )
            .unwrap(),
            label: Label::Match,
        }];
        let val = Dataset::new("v", schema, examples).unwrap();
        let mut e = EnsembleMatcher::uniform(vec![Arc::new(Constant(0.6))]).unwrap();
        e.calibrate(&val);
        assert!(e.threshold() <= 0.6);
        assert!(e.predict(&val.examples()[0].pair));
    }
}
