//! Probability calibration: Platt scaling (a 1-D logistic regression on a
//! model's raw scores) fitted on validation data. Matters for the
//! explainer stack because perturbation surrogates regress on
//! probabilities — a miscalibrated, saturated model compresses the signal.

use crate::matcher::{best_f1_threshold, Matcher};
use em_data::{Dataset, EntityPair};
use em_linalg::stats::sigmoid;

/// A matcher wrapped with Platt scaling: `p' = σ(a·logit(p) + b)`.
pub struct CalibratedMatcher<M: Matcher> {
    inner: M,
    a: f64,
    b: f64,
    threshold: f64,
    name: String,
}

/// Numerically safe logit.
fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-7, 1.0 - 1e-7);
    (p / (1.0 - p)).ln()
}

impl<M: Matcher> CalibratedMatcher<M> {
    /// Fit Platt scaling on a labelled calibration set by gradient descent
    /// on the binary cross-entropy (with the standard Platt target
    /// smoothing to avoid overconfident extremes).
    ///
    /// # Errors
    /// Returns [`crate::MatcherError::EmptyTrainingSet`] for an empty
    /// calibration set.
    pub fn fit(inner: M, calibration: &Dataset) -> Result<Self, crate::MatcherError> {
        if calibration.is_empty() {
            return Err(crate::MatcherError::EmptyTrainingSet);
        }
        let scores: Vec<f64> = calibration
            .examples()
            .iter()
            .map(|ex| logit(inner.predict_proba(&ex.pair)))
            .collect();
        let n_pos = calibration.match_count() as f64;
        let n_neg = calibration.len() as f64 - n_pos;
        // Platt's smoothed targets.
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> = calibration
            .examples()
            .iter()
            .map(|ex| if ex.label.is_match() { t_pos } else { t_neg })
            .collect();

        let mut a = 1.0;
        let mut b = 0.0;
        let lr = 0.05;
        for _ in 0..500 {
            let mut ga = 0.0;
            let mut gb = 0.0;
            for (&s, &t) in scores.iter().zip(&targets) {
                let p = sigmoid(a * s + b);
                let err = p - t;
                ga += err * s;
                gb += err;
            }
            let scale = 1.0 / scores.len() as f64;
            a -= lr * ga * scale;
            b -= lr * gb * scale;
        }

        // Re-derive the decision threshold on calibrated scores.
        let cal_scores: Vec<f64> = scores.iter().map(|&s| sigmoid(a * s + b)).collect();
        let labels: Vec<bool> = calibration
            .examples()
            .iter()
            .map(|ex| ex.label.is_match())
            .collect();
        let threshold = best_f1_threshold(&cal_scores, &labels);
        let name = format!("calibrated({})", inner.name());
        Ok(CalibratedMatcher {
            inner,
            a,
            b,
            threshold,
            name,
        })
    }

    /// Fitted Platt parameters `(a, b)`.
    pub fn parameters(&self) -> (f64, f64) {
        (self.a, self.b)
    }

    /// Access the wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Matcher> Matcher for CalibratedMatcher<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict_proba(&self, pair: &EntityPair) -> f64 {
        sigmoid(self.a * logit(self.inner.predict_proba(pair)) + self.b)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// Expected calibration error over `bins` equal-width probability bins:
/// the weighted mean |confidence − accuracy| gap. The standard scalar
/// summary of a reliability diagram.
pub fn expected_calibration_error(
    matcher: &dyn Matcher,
    data: &Dataset,
    bins: usize,
) -> Result<f64, crate::MatcherError> {
    if data.is_empty() || bins == 0 {
        return Err(crate::MatcherError::EmptyTrainingSet);
    }
    let mut bin_conf = vec![0.0; bins];
    let mut bin_acc = vec![0.0; bins];
    let mut bin_n = vec![0usize; bins];
    for ex in data.examples() {
        let p = matcher.predict_proba(&ex.pair).clamp(0.0, 1.0);
        let b = ((p * bins as f64) as usize).min(bins - 1);
        bin_conf[b] += p;
        bin_acc[b] += ex.label.as_f64();
        bin_n[b] += 1;
    }
    let n = data.len() as f64;
    let mut ece = 0.0;
    for b in 0..bins {
        if bin_n[b] == 0 {
            continue;
        }
        let conf = bin_conf[b] / bin_n[b] as f64;
        let acc = bin_acc[b] / bin_n[b] as f64;
        ece += (bin_n[b] as f64 / n) * (conf - acc).abs();
    }
    Ok(ece)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{Label, LabeledPair, Record, Schema};
    use std::sync::Arc;

    /// An intentionally miscalibrated model: overconfident mapping of
    /// token-overlap evidence through a squashed range [0.45, 0.55].
    struct Squashed;
    impl Matcher for Squashed {
        fn name(&self) -> &str {
            "squashed"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            let j = em_text::jaccard(
                &em_text::tokenize(&pair.left().full_text()),
                &em_text::tokenize(&pair.right().full_text()),
            );
            0.45 + 0.1 * j
        }
    }

    fn dataset(n: usize) -> Dataset {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let mut examples = Vec::new();
        for i in 0..n {
            let is_match = i % 2 == 0;
            let left = format!("item {} alpha beta gamma", i / 2);
            let right = if is_match {
                format!("item {} alpha beta", i / 2)
            } else {
                format!("thing {} delta epsilon zeta", 1000 + i)
            };
            let pair = EntityPair::new(
                Arc::clone(&schema),
                Record::new(i as u64 * 2, vec![left]),
                Record::new(i as u64 * 2 + 1, vec![right]),
            )
            .unwrap();
            examples.push(LabeledPair {
                pair,
                label: Label::from_bool(is_match),
            });
        }
        Dataset::new("cal", schema, examples).unwrap()
    }

    #[test]
    fn calibration_reduces_ece() {
        let data = dataset(80);
        let split = data.split(0.5, 0.25, 1).unwrap();
        let raw_ece = expected_calibration_error(&Squashed, &split.test, 10).unwrap();
        let calibrated = CalibratedMatcher::fit(Squashed, &split.train).unwrap();
        let cal_ece = expected_calibration_error(&calibrated, &split.test, 10).unwrap();
        assert!(
            cal_ece < raw_ece,
            "calibration should reduce ECE: raw {raw_ece} vs calibrated {cal_ece}"
        );
    }

    #[test]
    fn calibration_preserves_ranking() {
        let data = dataset(40);
        let calibrated = CalibratedMatcher::fit(Squashed, &data).unwrap();
        let (a, _) = calibrated.parameters();
        assert!(a > 0.0, "Platt slope must stay positive, got {a}");
        // Monotone: higher raw score → higher calibrated score.
        let ex = data.examples();
        for w in ex.windows(2) {
            let r0 = Squashed.predict_proba(&w[0].pair);
            let r1 = Squashed.predict_proba(&w[1].pair);
            let c0 = calibrated.predict_proba(&w[0].pair);
            let c1 = calibrated.predict_proba(&w[1].pair);
            assert_eq!(r0 > r1, c0 > c1, "ranking changed");
        }
    }

    #[test]
    fn calibrated_decisions_remain_accurate() {
        let data = dataset(80);
        let split = data.split(0.5, 0.25, 2).unwrap();
        let calibrated = CalibratedMatcher::fit(Squashed, &split.train).unwrap();
        let report = crate::matcher::evaluate(&calibrated, &split.test);
        assert!(
            report.f1 > 0.9,
            "calibrated matcher lost accuracy: {report:?}"
        );
        assert_eq!(calibrated.name(), "calibrated(squashed)");
    }

    #[test]
    fn empty_calibration_set_is_error() {
        let data = dataset(4);
        let empty = data.sample(0, 0);
        assert!(CalibratedMatcher::fit(Squashed, &empty).is_err());
        assert!(expected_calibration_error(&Squashed, &empty, 10).is_err());
        assert!(expected_calibration_error(&Squashed, &data, 0).is_err());
    }

    #[test]
    fn logit_is_safe_at_extremes() {
        assert!(logit(0.0).is_finite());
        assert!(logit(1.0).is_finite());
        assert!((logit(0.5)).abs() < 1e-12);
    }
}
