//! # em-matchers
//!
//! Trainable entity-matching models — the black boxes the explainers
//! explain. Four model families:
//!
//! - [`LogisticMatcher`]: logistic regression over a Magellan-style
//!   per-attribute similarity feature table;
//! - [`MlpMatcher`]: the same features through a two-hidden-layer MLP
//!   (hand-rolled backprop + Adam);
//! - [`AttentionMatcher`]: a token-level soft-alignment model over
//!   corpus-trained word embeddings — the stand-in for the transformer
//!   matchers the paper targets (word-level perturbations exercise the same
//!   code path);
//! - [`RuleMatcher`]: an untrained weighted-similarity baseline.
//!
//! All implement the [`Matcher`] trait consumed by `crew-core`.

// Index-based loops are kept where they mirror the textbook formulation
// of the numeric kernels; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
pub mod attention;
pub mod calibration;
pub mod ensemble;
pub mod features;
pub mod logistic;
pub mod matcher;
pub mod mlp;
pub mod rules;
pub mod scratch;

pub use attention::{AttentionMatcher, AttentionOptions};
pub use calibration::{expected_calibration_error, CalibratedMatcher};
pub use ensemble::EnsembleMatcher;
pub use features::{
    BatchScratch, ExtractScratch, FeatureExtractor, GLOBAL_FEATURES, PER_ATTRIBUTE_FEATURES,
};
pub use logistic::{LogisticMatcher, TrainOptions};
pub use matcher::{best_f1_threshold, evaluate, EvalReport, Matcher};
pub use mlp::MlpMatcher;
pub use rules::{Rule, RuleMatcher};
pub use scratch::ScratchPool;

/// Errors from model construction and training.
#[derive(Debug, Clone, PartialEq)]
pub enum MatcherError {
    /// Training set was empty.
    EmptyTrainingSet,
    /// A rule matcher was built with no rules.
    NoRules,
    /// Rule weight was non-positive or non-finite.
    InvalidRuleWeight,
    /// Threshold outside [0,1].
    InvalidThreshold(f64),
    /// Embedding training failed.
    Embedding(em_embed::EmbedError),
}

impl std::fmt::Display for MatcherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatcherError::EmptyTrainingSet => write!(f, "training set is empty"),
            MatcherError::NoRules => write!(f, "rule matcher needs at least one rule"),
            MatcherError::InvalidRuleWeight => {
                write!(f, "rule weights must be positive and finite")
            }
            MatcherError::InvalidThreshold(t) => write!(f, "threshold must be in [0,1], got {t}"),
            MatcherError::Embedding(e) => write!(f, "embedding training failed: {e}"),
        }
    }
}

impl std::error::Error for MatcherError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatcherError::Embedding(e) => Some(e),
            _ => None,
        }
    }
}
