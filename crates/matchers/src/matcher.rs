//! The `Matcher` abstraction every explainer targets: a black box mapping
//! a pair of entity descriptions to a match probability.

use em_data::{Dataset, EntityPair, Label};

/// A (possibly trained) entity-matching model.
///
/// Explainers only rely on [`Matcher::predict_proba`]; `Send + Sync` lets
/// the perturbation engine fan queries out across threads.
pub trait Matcher: Send + Sync {
    /// Human-readable model name for reports.
    fn name(&self) -> &str;

    /// Match probability in `[0, 1]`.
    fn predict_proba(&self, pair: &EntityPair) -> f64;

    /// Match probabilities for a batch of pairs.
    ///
    /// The default maps [`Matcher::predict_proba`] over the slice; models
    /// with vectorisable inference (logistic, MLP) override it to extract
    /// features into one matrix and predict in a single pass. Overrides
    /// must return bitwise-identical values to the scalar path — the
    /// perturbation engine treats the two as interchangeable under the
    /// determinism contract.
    fn predict_proba_batch(&self, pairs: &[EntityPair]) -> Vec<f64> {
        pairs.iter().map(|p| self.predict_proba(p)).collect()
    }

    /// Decision threshold (calibrated on validation data where available).
    fn threshold(&self) -> f64 {
        0.5
    }

    /// Hard decision.
    fn predict(&self, pair: &EntityPair) -> bool {
        self.predict_proba(pair) >= self.threshold()
    }
}

/// Precision/recall/F1 of a matcher on a labelled dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
    pub true_negatives: usize,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub accuracy: f64,
}

/// Evaluate a matcher's hard decisions against ground truth.
pub fn evaluate(matcher: &dyn Matcher, data: &Dataset) -> EvalReport {
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    let mut tn = 0;
    // One batched query instead of a scalar loop: overrides are pinned
    // bitwise-identical to `predict_proba`, so thresholded decisions
    // cannot differ.
    let pairs: Vec<EntityPair> = data.examples().iter().map(|ex| ex.pair.clone()).collect();
    let probs = matcher.predict_proba_batch(&pairs);
    for (ex, &p) in data.examples().iter().zip(&probs) {
        let pred = p >= matcher.threshold();
        match (pred, ex.label) {
            (true, Label::Match) => tp += 1,
            (true, Label::NonMatch) => fp += 1,
            (false, Label::Match) => fn_ += 1,
            (false, Label::NonMatch) => tn += 1,
        }
    }
    report_from_counts(tp, fp, fn_, tn)
}

pub(crate) fn report_from_counts(tp: usize, fp: usize, fn_: usize, tn: usize) -> EvalReport {
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    let total = tp + fp + fn_ + tn;
    let accuracy = if total == 0 {
        0.0
    } else {
        (tp + tn) as f64 / total as f64
    };
    EvalReport {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
        true_negatives: tn,
        precision,
        recall,
        f1,
        accuracy,
    }
}

/// Find the threshold maximising F1 on a labelled dataset (scans the
/// model's own scores as candidate cut points).
pub fn best_f1_threshold(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    if scores.is_empty() {
        return 0.5;
    }
    let mut candidates: Vec<f64> = scores.to_vec();
    candidates.push(0.5);
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    candidates.dedup();
    let mut best = (0.5, -1.0);
    for &t in &candidates {
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        for (&s, &l) in scores.iter().zip(labels) {
            let pred = s >= t;
            match (pred, l) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                _ => {}
            }
        }
        let r = report_from_counts(tp, fp, fn_, 0);
        if r.f1 > best.1 {
            best = (t, r.f1);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{LabeledPair, Record, Schema};
    use std::sync::Arc;

    /// A matcher that thresholds on token Jaccard — handy for tests.
    pub struct JaccardMatcher {
        pub threshold: f64,
    }

    impl Matcher for JaccardMatcher {
        fn name(&self) -> &str {
            "jaccard"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            em_text::jaccard(
                &em_text::tokenize(&pair.left().full_text()),
                &em_text::tokenize(&pair.right().full_text()),
            )
        }
        fn threshold(&self) -> f64 {
            self.threshold
        }
    }

    fn dataset() -> Dataset {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let mk = |id, s: &str| Record::new(id, vec![s.to_string()]);
        let examples = vec![
            LabeledPair {
                pair: EntityPair::new(Arc::clone(&schema), mk(0, "a b c"), mk(1, "a b c")).unwrap(),
                label: Label::Match,
            },
            LabeledPair {
                pair: EntityPair::new(Arc::clone(&schema), mk(2, "a b c"), mk(3, "a b d")).unwrap(),
                label: Label::Match,
            },
            LabeledPair {
                pair: EntityPair::new(Arc::clone(&schema), mk(4, "a b c"), mk(5, "x y z")).unwrap(),
                label: Label::NonMatch,
            },
            LabeledPair {
                pair: EntityPair::new(Arc::clone(&schema), mk(6, "p q"), mk(7, "p r")).unwrap(),
                label: Label::NonMatch,
            },
        ];
        Dataset::new("toy", schema, examples).unwrap()
    }

    #[test]
    fn evaluate_counts_confusion_matrix() {
        let d = dataset();
        let m = JaccardMatcher { threshold: 0.45 };
        let r = evaluate(&m, &d);
        assert_eq!(r.true_positives, 2);
        assert_eq!(r.true_negatives, 2);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.accuracy, 1.0);
    }

    #[test]
    fn evaluate_poor_threshold_degrades() {
        let d = dataset();
        let strict = evaluate(&JaccardMatcher { threshold: 0.99 }, &d);
        assert_eq!(strict.true_positives, 1); // only the identical pair
        assert!(strict.recall < 1.0);
        // Lax threshold admits the "p q"/"p r" pair (Jaccard 1/3) but not
        // the fully disjoint one (Jaccard 0).
        let lax = evaluate(&JaccardMatcher { threshold: 0.01 }, &d);
        assert_eq!(lax.false_positives, 1);
        assert!(lax.precision < 1.0);
    }

    #[test]
    fn f1_zero_when_nothing_predicted() {
        let r = report_from_counts(0, 0, 5, 5);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
        assert_eq!(r.accuracy, 0.5);
    }

    #[test]
    fn best_threshold_separates_classes() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![true, true, false, false];
        let t = best_f1_threshold(&scores, &labels);
        assert!(t > 0.2 && t <= 0.8, "threshold {t}");
        // Check it achieves perfect F1.
        let preds: Vec<bool> = scores.iter().map(|&s| s >= t).collect();
        assert_eq!(preds, labels);
    }

    #[test]
    fn best_threshold_handles_empty_and_degenerate() {
        assert_eq!(best_f1_threshold(&[], &[]), 0.5);
        // All same score: still returns a finite threshold.
        let t = best_f1_threshold(&[0.7, 0.7], &[true, false]);
        assert!(t.is_finite());
    }
}
