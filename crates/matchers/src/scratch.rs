//! A small pool of reusable scratch buffers for the batch matchers.
//!
//! The batch entry points used to keep one scratch behind a `Mutex` and
//! fall back to `T::default()` whenever `try_lock` missed — which meant
//! every *concurrent* batch (the common case under `em-pool` fan-out)
//! re-allocated its feature buffers and caches from cold. The pool keeps
//! a handful of warmed scratches instead: a contended taker pops an idle
//! one, and finished scratches return to the pool for the next caller.
//!
//! Scratches are pure allocation/memo caches cleared (or fully
//! overwritten) by their consumers, so which physical scratch a call
//! receives can never change a value — the batch ≡ scalar and dirty-
//! scratch-rerun bitwise tests pin this.

use std::sync::Mutex;

/// Upper bound on idle scratches retained per matcher. Matches the small
/// worker counts `em-pool` fans out to; extras beyond the cap are simply
/// dropped rather than hoarded.
const POOL_CAP: usize = 8;

/// Lock-briefly pool of `T: Default` scratch values.
///
/// The mutex guards only the pop/push of the idle list — never the use
/// of a scratch — so takers contend for nanoseconds, not for the length
/// of a batch.
#[derive(Debug, Default)]
pub struct ScratchPool<T: Default> {
    idle: Mutex<Vec<T>>,
}

impl<T: Default> ScratchPool<T> {
    pub fn new() -> Self {
        ScratchPool {
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Pop a warmed scratch, or build a fresh one if the pool is empty
    /// (first calls, or more concurrent batches than `POOL_CAP`).
    pub fn take(&self) -> T {
        let popped = self.idle.lock().ok().and_then(|mut idle| idle.pop());
        popped.unwrap_or_default()
    }

    /// Return a scratch for reuse; dropped silently once the pool holds
    /// [`POOL_CAP`] idle entries.
    pub fn put(&self, scratch: T) {
        if let Ok(mut idle) = self.idle.lock() {
            if idle.len() < POOL_CAP {
                idle.push(scratch);
            }
        }
    }

    /// Idle scratches currently pooled (test/diagnostic hook).
    pub fn idle_len(&self) -> usize {
        self.idle.lock().map(|idle| idle.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_scratch() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        let mut a = pool.take();
        assert!(a.is_empty());
        a.extend_from_slice(b"warm");
        pool.put(a);
        assert_eq!(pool.idle_len(), 1);
        // The warmed buffer (capacity and contents) comes back.
        let b = pool.take();
        assert_eq!(b, b"warm");
        assert_eq!(pool.idle_len(), 0);
    }

    #[test]
    fn pool_caps_idle_entries() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        for _ in 0..POOL_CAP + 5 {
            pool.put(Vec::new());
        }
        assert_eq!(pool.idle_len(), POOL_CAP);
    }

    #[test]
    fn concurrent_takers_all_get_scratches() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let mut v = pool.take();
                        v.push(1);
                        pool.put(v);
                    }
                });
            }
        });
        assert!(pool.idle_len() <= POOL_CAP);
    }
}
