//! Logistic-regression matcher over the Magellan-style feature table.

use crate::features::{BatchScratch, FeatureExtractor};
use crate::matcher::{best_f1_threshold, Matcher};
use crate::scratch::ScratchPool;
use em_data::{Dataset, EntityPair};
use em_linalg::stats::sigmoid;
use em_rngs::rngs::StdRng;
use em_rngs::seq::SliceRandom;
use em_rngs::SeedableRng;

/// Training hyper-parameters shared by the gradient-trained matchers.
#[derive(Debug, Clone, Copy)]
pub struct TrainOptions {
    pub epochs: usize,
    pub learning_rate: f64,
    pub l2: f64,
    pub batch_size: usize,
    pub seed: u64,
    /// Stop if validation F1 has not improved for this many epochs.
    pub patience: usize,
    /// Weight applied to positive examples in the loss (class imbalance).
    pub positive_weight: f64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 120,
            learning_rate: 0.3,
            l2: 1e-4,
            batch_size: 32,
            seed: 13,
            patience: 15,
            positive_weight: 2.0,
        }
    }
}

/// A trained logistic-regression matcher.
pub struct LogisticMatcher {
    extractor: FeatureExtractor,
    weights: Vec<f64>,
    bias: f64,
    threshold: f64,
    /// Reusable extraction scratch for `predict_proba_batch`. Purely an
    /// allocation cache (cleared per call), so contended callers can fall
    /// back to a fresh local scratch with identical results.
    scratch: ScratchPool<BatchScratch>,
}

impl LogisticMatcher {
    /// Train on `train`, calibrating the decision threshold on `validation`.
    pub fn fit(
        train: &Dataset,
        validation: &Dataset,
        opts: TrainOptions,
    ) -> Result<Self, crate::MatcherError> {
        if train.is_empty() {
            return Err(crate::MatcherError::EmptyTrainingSet);
        }
        let extractor = FeatureExtractor::fit(train);
        let (x, y) = extractor.extract_dataset(train);
        let n = x.rows();
        let p = x.cols();
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut w = vec![0.0; p];
        let mut b = 0.0;
        let mut vel_w = vec![0.0; p];
        let mut vel_b = 0.0;
        let momentum = 0.9;
        let mut order: Vec<usize> = (0..n).collect();

        let (val_x, val_y) = extractor.extract_dataset(validation);
        let mut best = (f64::NEG_INFINITY, w.clone(), b);
        let mut stale = 0usize;

        for _epoch in 0..opts.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(opts.batch_size.max(1)) {
                let mut grad_w = vec![0.0; p];
                let mut grad_b = 0.0;
                for &i in batch {
                    let row = x.row(i);
                    let z = em_linalg::dot(&w, row) + b;
                    let pred = sigmoid(z);
                    let weight = if y[i] > 0.5 {
                        opts.positive_weight
                    } else {
                        1.0
                    };
                    let err = weight * (pred - y[i]);
                    for (g, &xi) in grad_w.iter_mut().zip(row) {
                        *g += err * xi;
                    }
                    grad_b += err;
                }
                let scale = 1.0 / batch.len() as f64;
                for j in 0..p {
                    let g = grad_w[j] * scale + opts.l2 * w[j];
                    vel_w[j] = momentum * vel_w[j] - opts.learning_rate * g;
                    w[j] += vel_w[j];
                }
                vel_b = momentum * vel_b - opts.learning_rate * grad_b * scale;
                b += vel_b;
            }
            // Early stopping on validation F1 (falls back to train if the
            // validation set is empty).
            let (ex, ey) = if val_x.rows() > 0 {
                (&val_x, &val_y)
            } else {
                (&x, &y)
            };
            let f1 = f1_of_linear(&w, b, ex, ey);
            if f1 > best.0 + 1e-9 {
                best = (f1, w.clone(), b);
                stale = 0;
            } else {
                stale += 1;
                if stale > opts.patience {
                    break;
                }
            }
        }
        let (_, w, b) = best;

        // Calibrate the threshold on validation scores.
        let (cal_x, cal_y) = if val_x.rows() > 0 {
            (&val_x, &val_y)
        } else {
            (&x, &y)
        };
        let scores: Vec<f64> = (0..cal_x.rows())
            .map(|i| sigmoid(em_linalg::dot(&w, cal_x.row(i)) + b))
            .collect();
        let labels: Vec<bool> = cal_y.iter().map(|&v| v > 0.5).collect();
        let threshold = best_f1_threshold(&scores, &labels);

        Ok(LogisticMatcher {
            extractor,
            weights: w,
            bias: b,
            threshold,
            scratch: ScratchPool::new(),
        })
    }

    /// Learned feature weights (useful for sanity checks / docs).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn batch_with_scratch(&self, pairs: &[EntityPair], scratch: &mut BatchScratch) -> Vec<f64> {
        self.extractor
            .extract_batch_into(pairs, &mut scratch.extract, &mut scratch.features);
        scratch
            .features
            .chunks_exact(self.extractor.dimensions())
            .map(|row| sigmoid(em_linalg::dot(&self.weights, row) + self.bias))
            .collect()
    }
}

fn f1_of_linear(w: &[f64], b: f64, x: &em_linalg::Matrix, y: &[f64]) -> f64 {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for i in 0..x.rows() {
        let pred = sigmoid(em_linalg::dot(w, x.row(i)) + b) >= 0.5;
        let truth = y[i] > 0.5;
        match (pred, truth) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            _ => {}
        }
    }
    crate::matcher::report_from_counts(tp, fp, fn_, 0).f1
}

impl Matcher for LogisticMatcher {
    fn name(&self) -> &str {
        "logistic"
    }

    fn predict_proba(&self, pair: &EntityPair) -> f64 {
        let f = self.extractor.extract(pair);
        sigmoid(em_linalg::dot(&self.weights, &f) + self.bias)
    }

    /// One interned feature-extraction pass into a reused row-major
    /// buffer, then `sigmoid(dot(weights, row) + bias)` per row — the
    /// same kernel and accumulation order as the scalar path, so the
    /// outputs are bitwise identical. The scratch only caches
    /// allocations; under lock contention a fresh local scratch produces
    /// the same values.
    fn predict_proba_batch(&self, pairs: &[EntityPair]) -> Vec<f64> {
        let mut s = self.scratch.take();
        let out = self.batch_with_scratch(pairs, &mut s);
        self.scratch.put(s);
        out
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::evaluate;
    use em_synth::{generate, Family, GeneratorConfig};

    fn splits(seed: u64) -> (Dataset, Dataset, Dataset) {
        let cfg = GeneratorConfig {
            entities: 120,
            pairs: 400,
            match_rate: 0.25,
            hard_negative_rate: 0.5,
            seed,
        };
        let d = generate(Family::Restaurants, cfg).unwrap();
        let s = d.split(0.7, 0.15, seed).unwrap();
        (s.train, s.validation, s.test)
    }

    #[test]
    fn logistic_learns_to_match() {
        let (train, val, test) = splits(5);
        let m = LogisticMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        let r = evaluate(&m, &test);
        assert!(r.f1 > 0.8, "logistic F1 too low: {:?}", r);
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (train, val, test) = splits(6);
        let m = LogisticMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        for ex in test.examples().iter().take(30) {
            let p = m.predict_proba(&ex.pair);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn batch_prediction_matches_scalar_bitwise() {
        let (train, val, test) = splits(6);
        let m = LogisticMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        let pairs: Vec<em_data::EntityPair> = test
            .examples()
            .iter()
            .take(40)
            .map(|ex| ex.pair.clone())
            .collect();
        let batch = m.predict_proba_batch(&pairs);
        for (p, pair) in batch.iter().zip(&pairs) {
            assert_eq!(p.to_bits(), m.predict_proba(pair).to_bits());
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (train, val, _) = splits(7);
        let a = LogisticMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        let b = LogisticMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.threshold(), b.threshold());
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let (train, val, _) = splits(8);
        let empty = train.sample(0, 0);
        // sample(0) returns empty dataset
        assert_eq!(empty.len(), 0);
        assert!(LogisticMatcher::fit(&empty, &val, TrainOptions::default()).is_err());
    }

    #[test]
    fn dropping_evidence_lowers_score() {
        let (train, val, test) = splits(9);
        let m = LogisticMatcher::fit(&train, &val, TrainOptions::default()).unwrap();
        // Take a confident match and blank one side's name attribute.
        let ex = test
            .examples()
            .iter()
            .find(|e| e.label.is_match() && m.predict_proba(&e.pair) > 0.7)
            .expect("need a confident match");
        let before = m.predict_proba(&ex.pair);
        let mut maimed = ex.pair.clone();
        maimed
            .record_mut(em_data::Side::Right)
            .set_value(0, String::new());
        let after = m.predict_proba(&maimed);
        assert!(after < before, "blanking the name should lower the score");
    }
}
