//! Token-level soft-alignment ("attention") matcher.
//!
//! This is the reproduction's stand-in for the transformer EM models the
//! paper explains: every token of one record attends over the tokens of the
//! other via embedding cosine, producing per-attribute soft-alignment
//! statistics that feed a trained logistic head. Crucially the model is
//! *word-sensitive in the same way a BERT matcher is* — removing or
//! injecting a single token changes the attention distributions and thus
//! the score — which is exactly the code path perturbation explainers
//! exercise.

use crate::matcher::{best_f1_threshold, Matcher};
use crate::scratch::ScratchPool;
use em_data::{Dataset, EntityPair, Side};
use em_embed::{EmbeddingOptions, WordEmbeddings};
use em_linalg::stats::{sigmoid, softmax, softmax_into};
use em_rngs::rngs::StdRng;
use em_rngs::seq::SliceRandom;
use em_rngs::SeedableRng;
use em_text::TokenArena;
use std::collections::HashMap;

/// Options for the attention matcher.
#[derive(Debug, Clone, Copy)]
pub struct AttentionOptions {
    /// Softmax temperature on cosine scores (higher = sharper alignment).
    pub temperature: f64,
    /// Embedding training options.
    pub embeddings: EmbeddingOptions,
    /// Head training: epochs.
    pub epochs: usize,
    /// Head training: learning rate.
    pub learning_rate: f64,
    /// Head training: L2 penalty.
    pub l2: f64,
    /// Seed for shuffling.
    pub seed: u64,
    /// Positive class weight.
    pub positive_weight: f64,
}

impl Default for AttentionOptions {
    fn default() -> Self {
        AttentionOptions {
            temperature: 6.0,
            embeddings: EmbeddingOptions::default(),
            epochs: 150,
            learning_rate: 0.5,
            l2: 1e-4,
            seed: 21,
            positive_weight: 2.0,
        }
    }
}

/// Per-attribute soft-alignment features: 4 per attribute + 2 global.
const PER_ATTR: usize = 4;
const GLOBAL: usize = 2;

/// Trained soft-alignment matcher.
pub struct AttentionMatcher {
    embeddings: WordEmbeddings,
    temperature: f64,
    n_attributes: usize,
    weights: Vec<f64>,
    bias: f64,
    threshold: f64,
    scratch: ScratchPool<AlignScratch>,
}

/// Per-batch caches for the interned alignment path.
///
/// Perturbation batches are highly redundant — a drop mask leaves most
/// cells untouched and reuses the same tokens — so the batch path
/// interns every cell once per call ([`TokenArena`]), memoizes each
/// token's embedding vector and norm, and caches whole per-attribute
/// feature blocks keyed by the interned `(left cell, right cell)` ids.
/// Every cached value is a pure function of the cell text (and the
/// fixed temperature), so hits are bitwise-identical to recomputation;
/// the whole-record coverage features change with every unique mask and
/// are recomputed per pair, but through the cached vectors/norms and
/// reused softmax/context buffers.
#[derive(Debug)]
struct AlignScratch {
    /// Gram-free arena — the alignment path only reads token sequences.
    arena: TokenArena,
    /// Arena token id → embedding vector (incl. trigram OOV fallback).
    vectors: Vec<Vec<f64>>,
    /// Arena token id → Euclidean norm of its vector.
    norms: Vec<f64>,
    /// (left cell id, right cell id) → per-attribute feature block.
    attr_cache: HashMap<(u32, u32), [f64; PER_ATTR]>,
    /// Dense token-pair cosine memo, `NAN` = unfilled; row stride
    /// `cos_dim`, disabled (`cos_dim == 0`) once the batch interns more
    /// than [`COS_MEMO_MAX`] tokens. `cosine` is bitwise-symmetric
    /// (lane-wise multiply commutes), so one computation fills both
    /// triangles and L→R / R→L directions share hits.
    cos_cache: Vec<f64>,
    cos_dim: usize,
    all_l: Vec<u32>,
    all_r: Vec<u32>,
    feats: Vec<f64>,
    sims: Vec<f64>,
    attn: Vec<f64>,
    ctx: Vec<f64>,
}

/// Token-count ceiling for the dense cosine memo: perturbation batches
/// and scaling pairs stay well below it, while distinct-pair workloads
/// (training, test-set evaluation) cross it early and fall back to
/// computing cosines directly rather than holding an O(n²) table.
const COS_MEMO_MAX: usize = 512;

impl Default for AlignScratch {
    fn default() -> Self {
        AlignScratch {
            arena: TokenArena::without_grams(),
            vectors: Vec::new(),
            norms: Vec::new(),
            attr_cache: HashMap::new(),
            cos_cache: Vec::new(),
            cos_dim: 0,
            all_l: Vec::new(),
            all_r: Vec::new(),
            feats: Vec::new(),
            sims: Vec::new(),
            attn: Vec::new(),
            ctx: Vec::new(),
        }
    }
}

impl AlignScratch {
    fn clear(&mut self) {
        self.arena.clear();
        self.vectors.clear();
        self.norms.clear();
        self.attr_cache.clear();
        self.cos_cache.clear();
        self.cos_dim = 0;
    }

    /// Extend the vector/norm memo to cover every token interned so far.
    fn ensure_vectors(&mut self, emb: &WordEmbeddings) {
        while self.vectors.len() < self.arena.n_tokens() {
            let v = emb.vector(self.arena.token_text(self.vectors.len() as u32));
            self.norms.push(em_linalg::norm2(&v));
            self.vectors.push(v);
        }
        let n = self.arena.n_tokens();
        if n <= COS_MEMO_MAX {
            if self.cos_dim < n {
                // Grow in powers of two to amortise stride rebuilds.
                let nd = n.next_power_of_two().clamp(64, COS_MEMO_MAX);
                let mut fresh = vec![f64::NAN; nd * nd];
                for i in 0..self.cos_dim {
                    let (o, f) = (i * self.cos_dim, i * nd);
                    fresh[f..f + self.cos_dim]
                        .copy_from_slice(&self.cos_cache[o..o + self.cos_dim]);
                }
                self.cos_cache = fresh;
                self.cos_dim = nd;
            }
        } else if self.cos_dim != 0 {
            self.cos_cache = Vec::new();
            self.cos_dim = 0;
        }
    }
}

/// [`alignment_features`] through the interned caches: fills
/// `s.feats` with the same values (bitwise) the string path produces,
/// reusing `s`'s token vectors, norms and per-attribute blocks across
/// calls. Callers own the cache lifecycle (`s.clear()` per batch).
fn alignment_features_cached(
    emb: &WordEmbeddings,
    temperature: f64,
    n_attributes: usize,
    pair: &EntityPair,
    s: &mut AlignScratch,
) {
    s.feats.clear();
    s.all_l.clear();
    s.all_r.clear();
    for attr in 0..n_attributes {
        let lc = s.arena.intern_cell(pair.record(Side::Left).value(attr));
        let rc = s.arena.intern_cell(pair.record(Side::Right).value(attr));
        s.ensure_vectors(emb);
        let block = if let Some(&b) = s.attr_cache.get(&(lc, rc)) {
            b
        } else {
            let lt = s.arena.tokens(lc);
            let rt = s.arena.tokens(rc);
            let (mean_lr, max_lr) = direction_stats_ids(
                &s.vectors,
                &s.norms,
                lt,
                rt,
                temperature,
                &mut s.cos_cache,
                s.cos_dim,
                &mut s.sims,
                &mut s.attn,
                &mut s.ctx,
            );
            let (mean_rl, max_rl) = direction_stats_ids(
                &s.vectors,
                &s.norms,
                rt,
                lt,
                temperature,
                &mut s.cos_cache,
                s.cos_dim,
                &mut s.sims,
                &mut s.attn,
                &mut s.ctx,
            );
            let b = [mean_lr, max_lr, mean_rl, max_rl];
            s.attr_cache.insert((lc, rc), b);
            b
        };
        s.feats.extend_from_slice(&block);
        let tl = s.arena.tokens(lc);
        s.all_l.extend_from_slice(tl);
        let tr = s.arena.tokens(rc);
        s.all_r.extend_from_slice(tr);
    }
    let (cov_lr, _) = direction_stats_ids(
        &s.vectors,
        &s.norms,
        &s.all_l,
        &s.all_r,
        temperature,
        &mut s.cos_cache,
        s.cos_dim,
        &mut s.sims,
        &mut s.attn,
        &mut s.ctx,
    );
    let (cov_rl, _) = direction_stats_ids(
        &s.vectors,
        &s.norms,
        &s.all_r,
        &s.all_l,
        temperature,
        &mut s.cos_cache,
        s.cos_dim,
        &mut s.sims,
        &mut s.attn,
        &mut s.ctx,
    );
    s.feats.push(cov_lr);
    s.feats.push(cov_rl);
}

/// [`direction_stats`] over interned token ids with memoized vectors
/// and norms. Bitwise-identical: `cosine(q, k)` is replayed as
/// `dot(q, k) / (nq · nk)` with the cached `nq = norm2(q)` — the same
/// value the scalar path recomputes per call — and softmax/context use
/// the same accumulation order through reused buffers.
#[allow(clippy::too_many_arguments)]
fn direction_stats_ids(
    vectors: &[Vec<f64>],
    norms: &[f64],
    queries: &[u32],
    keys: &[u32],
    temperature: f64,
    cos_cache: &mut [f64],
    cos_dim: usize,
    sims: &mut Vec<f64>,
    attn: &mut Vec<f64>,
    ctx: &mut Vec<f64>,
) -> (f64, f64) {
    if queries.is_empty() || keys.is_empty() {
        return (0.0, 0.0);
    }
    let mut sum = 0.0;
    let mut max = f64::NEG_INFINITY;
    for &q in queries {
        let qv = &vectors[q as usize];
        let nq = norms[q as usize];
        sims.clear();
        for &k in keys {
            let fresh = |nk: f64| {
                if nq == 0.0 || nk == 0.0 {
                    0.0
                } else {
                    (em_linalg::dot(qv, &vectors[k as usize]) / (nq * nk)).clamp(-1.0, 1.0)
                }
            };
            let cos = if cos_dim > 0 {
                let idx = q as usize * cos_dim + k as usize;
                let hit = cos_cache[idx];
                if hit.is_nan() {
                    let c = fresh(norms[k as usize]);
                    cos_cache[idx] = c;
                    cos_cache[k as usize * cos_dim + q as usize] = c;
                    c
                } else {
                    hit
                }
            } else {
                fresh(norms[k as usize])
            };
            sims.push(cos * temperature);
        }
        softmax_into(sims, attn);
        ctx.clear();
        ctx.resize(qv.len(), 0.0);
        for (&a, &k) in attn.iter().zip(keys) {
            em_linalg::axpy(a, &vectors[k as usize], ctx);
        }
        let nctx = em_linalg::norm2(ctx);
        let score = if nq == 0.0 || nctx == 0.0 {
            0.0
        } else {
            (em_linalg::dot(qv, ctx) / (nq * nctx)).clamp(-1.0, 1.0)
        }
        .max(0.0);
        sum += score;
        if score > max {
            max = score;
        }
    }
    (sum / queries.len() as f64, max)
}

impl AttentionMatcher {
    /// Train embeddings on the train corpus and fit the logistic head on
    /// soft-alignment features.
    pub fn fit(
        train: &Dataset,
        validation: &Dataset,
        opts: AttentionOptions,
    ) -> Result<Self, crate::MatcherError> {
        if train.is_empty() {
            return Err(crate::MatcherError::EmptyTrainingSet);
        }
        let embeddings = WordEmbeddings::train_on_dataset(train, opts.embeddings)
            .map_err(crate::MatcherError::Embedding)?;
        let n_attributes = train.schema().len();
        let dims = n_attributes * PER_ATTR + GLOBAL;

        // Cached feature extraction: token vectors/norms are memoized
        // across the whole split (bitwise ≡ `alignment_features`; see
        // `features_cached_match_string_path`).
        let mut scratch = AlignScratch::default();
        let mut feats = |d: &Dataset| -> (Vec<Vec<f64>>, Vec<f64>) {
            scratch.clear();
            let x: Vec<Vec<f64>> = d
                .examples()
                .iter()
                .map(|ex| {
                    alignment_features_cached(
                        &embeddings,
                        opts.temperature,
                        n_attributes,
                        &ex.pair,
                        &mut scratch,
                    );
                    scratch.feats.clone()
                })
                .collect();
            let y: Vec<f64> = d.examples().iter().map(|ex| ex.label.as_f64()).collect();
            (x, y)
        };
        let (x, y) = feats(train);
        let (vx, vy) = feats(validation);

        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut w = vec![0.0; dims];
        let mut b = 0.0;
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut best = (f64::NEG_INFINITY, w.clone(), b);
        let mut stale = 0usize;
        for _ in 0..opts.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let z = em_linalg::dot(&w, &x[i]) + b;
                let pred = sigmoid(z);
                let weight = if y[i] > 0.5 {
                    opts.positive_weight
                } else {
                    1.0
                };
                let err = weight * (pred - y[i]);
                for (wj, &xj) in w.iter_mut().zip(&x[i]) {
                    *wj -= opts.learning_rate * (err * xj + opts.l2 * *wj);
                }
                b -= opts.learning_rate * err;
            }
            let (ex, ey) = if vx.is_empty() { (&x, &y) } else { (&vx, &vy) };
            let f1 = head_f1(&w, b, ex, ey);
            if f1 > best.0 + 1e-9 {
                best = (f1, w.clone(), b);
                stale = 0;
            } else {
                stale += 1;
                if stale > 20 {
                    break;
                }
            }
        }
        let (_, w, b) = best;
        let (cx, cy) = if vx.is_empty() { (&x, &y) } else { (&vx, &vy) };
        let scores: Vec<f64> = cx
            .iter()
            .map(|f| sigmoid(em_linalg::dot(&w, f) + b))
            .collect();
        let labels: Vec<bool> = cy.iter().map(|&v| v > 0.5).collect();
        let threshold = best_f1_threshold(&scores, &labels);
        Ok(AttentionMatcher {
            embeddings,
            temperature: opts.temperature,
            n_attributes,
            weights: w,
            bias: b,
            threshold,
            scratch: ScratchPool::new(),
        })
    }

    /// Batch prediction through the interned per-batch caches. Bitwise
    /// equal to the scalar loop (each cached value is a pure function
    /// of cell text; see [`AlignScratch`]), which
    /// `tests/tests/batch_equivalence.rs` pins.
    fn batch_with_scratch(&self, pairs: &[EntityPair], s: &mut AlignScratch) -> Vec<f64> {
        s.clear();
        let mut out = Vec::with_capacity(pairs.len());
        for pair in pairs {
            alignment_features_cached(
                &self.embeddings,
                self.temperature,
                self.n_attributes,
                pair,
                s,
            );
            out.push(sigmoid(em_linalg::dot(&self.weights, &s.feats) + self.bias));
        }
        out
    }

    /// The trained word embeddings (shared with CREW's semantic knowledge
    /// source in the experiment harness, as the paper pipeline does).
    pub fn embeddings(&self) -> &WordEmbeddings {
        &self.embeddings
    }
}

fn head_f1(w: &[f64], b: f64, x: &[Vec<f64>], y: &[f64]) -> f64 {
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for (f, &truth) in x.iter().zip(y) {
        let pred = sigmoid(em_linalg::dot(w, f) + b) >= 0.5;
        let t = truth > 0.5;
        match (pred, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            _ => {}
        }
    }
    crate::matcher::report_from_counts(tp, fp, fn_, 0).f1
}

/// Soft-alignment feature vector of a pair.
///
/// Per attribute: mean and max of soft-alignment scores in both directions
/// (L→R, R→L). Globally: overall token coverage both directions.
fn alignment_features(
    emb: &WordEmbeddings,
    temperature: f64,
    n_attributes: usize,
    pair: &EntityPair,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(n_attributes * PER_ATTR + GLOBAL);
    let mut all_l: Vec<Vec<f64>> = Vec::new();
    let mut all_r: Vec<Vec<f64>> = Vec::new();
    for attr in 0..n_attributes {
        let lt = em_text::tokenize(pair.record(Side::Left).value(attr));
        let rt = em_text::tokenize(pair.record(Side::Right).value(attr));
        let lv: Vec<Vec<f64>> = lt.iter().map(|w| emb.vector(w)).collect();
        let rv: Vec<Vec<f64>> = rt.iter().map(|w| emb.vector(w)).collect();
        let (mean_lr, max_lr) = direction_stats(&lv, &rv, temperature);
        let (mean_rl, max_rl) = direction_stats(&rv, &lv, temperature);
        out.push(mean_lr);
        out.push(max_lr);
        out.push(mean_rl);
        out.push(max_rl);
        all_l.extend(lv);
        all_r.extend(rv);
    }
    let (cov_lr, _) = direction_stats(&all_l, &all_r, temperature);
    let (cov_rl, _) = direction_stats(&all_r, &all_l, temperature);
    out.push(cov_lr);
    out.push(cov_rl);
    out
}

/// For each query vector, attend over keys with temperature-softmax on
/// cosine and score the query against its attention-weighted context.
/// Returns (mean, max) over queries; (0,0) when either side is empty.
fn direction_stats(queries: &[Vec<f64>], keys: &[Vec<f64>], temperature: f64) -> (f64, f64) {
    if queries.is_empty() || keys.is_empty() {
        return (0.0, 0.0);
    }
    let mut sum = 0.0;
    let mut max = f64::NEG_INFINITY;
    for q in queries {
        let sims: Vec<f64> = keys
            .iter()
            .map(|k| em_linalg::cosine(q, k) * temperature)
            .collect();
        let attn = softmax(&sims);
        // Attention-weighted context vector (same SIMD-routed axpy as the
        // cached path, keeping the two paths bitwise in sync).
        let mut ctx = vec![0.0; q.len()];
        for (&a, k) in attn.iter().zip(keys) {
            em_linalg::axpy(a, k, &mut ctx);
        }
        let score = em_linalg::cosine(q, &ctx).max(0.0);
        sum += score;
        if score > max {
            max = score;
        }
    }
    (sum / queries.len() as f64, max)
}

impl Matcher for AttentionMatcher {
    fn name(&self) -> &str {
        "attention"
    }

    fn predict_proba(&self, pair: &EntityPair) -> f64 {
        let f = alignment_features(&self.embeddings, self.temperature, self.n_attributes, pair);
        sigmoid(em_linalg::dot(&self.weights, &f) + self.bias)
    }

    fn predict_proba_batch(&self, pairs: &[EntityPair]) -> Vec<f64> {
        // The scratch is a pure allocation/memo cache cleared per call,
        // so which pooled scratch a batch draws cannot change any value.
        let mut s = self.scratch.take();
        let out = self.batch_with_scratch(pairs, &mut s);
        self.scratch.put(s);
        out
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::evaluate;
    use em_synth::{generate, Family, GeneratorConfig};

    fn splits(seed: u64) -> (Dataset, Dataset, Dataset) {
        let cfg = GeneratorConfig {
            entities: 120,
            pairs: 400,
            match_rate: 0.25,
            hard_negative_rate: 0.5,
            seed,
        };
        let d = generate(Family::Citations, cfg).unwrap();
        let s = d.split(0.7, 0.15, seed).unwrap();
        (s.train, s.validation, s.test)
    }

    #[test]
    fn attention_matcher_learns() {
        let (train, val, test) = splits(31);
        let m = AttentionMatcher::fit(&train, &val, AttentionOptions::default()).unwrap();
        let r = evaluate(&m, &test);
        assert!(r.f1 > 0.7, "attention F1 too low: {r:?}");
    }

    #[test]
    fn token_drop_changes_score() {
        let (train, val, test) = splits(32);
        let m = AttentionMatcher::fit(&train, &val, AttentionOptions::default()).unwrap();
        let ex = test
            .examples()
            .iter()
            .find(|e| e.label.is_match() && !e.pair.left().value(0).is_empty())
            .unwrap();
        let before = m.predict_proba(&ex.pair);
        // Drop the first token of the left title.
        let title = ex.pair.left().value(0).to_string();
        let rest: Vec<&str> = title.split_whitespace().skip(1).collect();
        let mut maimed = ex.pair.clone();
        maimed.record_mut(Side::Left).set_value(0, rest.join(" "));
        let after = m.predict_proba(&maimed);
        assert_ne!(
            before, after,
            "token-level perturbation must change the score"
        );
    }

    #[test]
    fn direction_stats_empty_inputs() {
        assert_eq!(direction_stats(&[], &[vec![1.0]], 4.0), (0.0, 0.0));
        assert_eq!(direction_stats(&[vec![1.0]], &[], 4.0), (0.0, 0.0));
    }

    #[test]
    fn direction_stats_identical_tokens_score_high() {
        let v = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let (mean, max) = direction_stats(&v, &v, 8.0);
        assert!(mean > 0.8, "mean {mean}");
        assert!(max > 0.9, "max {max}");
    }

    #[test]
    fn probabilities_bounded_and_deterministic() {
        let (train, val, test) = splits(33);
        let a = AttentionMatcher::fit(&train, &val, AttentionOptions::default()).unwrap();
        let b = AttentionMatcher::fit(&train, &val, AttentionOptions::default()).unwrap();
        for ex in test.examples().iter().take(10) {
            let pa = a.predict_proba(&ex.pair);
            assert!((0.0..=1.0).contains(&pa));
            assert_eq!(pa, b.predict_proba(&ex.pair));
        }
    }

    #[test]
    fn features_cached_match_string_path() {
        let (train, _, test) = splits(36);
        let emb = WordEmbeddings::train_on_dataset(&train, EmbeddingOptions::default()).unwrap();
        let n_attributes = train.schema().len();
        // One scratch across all pairs: memo persistence must not move bits.
        let mut s = AlignScratch::default();
        for ex in test.examples().iter().take(12) {
            let want = alignment_features(&emb, 6.0, n_attributes, &ex.pair);
            alignment_features_cached(&emb, 6.0, n_attributes, &ex.pair, &mut s);
            assert_eq!(want.len(), s.feats.len());
            for (a, b) in want.iter().zip(&s.feats) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn batch_prediction_matches_scalar_bitwise() {
        let (train, val, test) = splits(35);
        let m = AttentionMatcher::fit(&train, &val, AttentionOptions::default()).unwrap();
        let mut pairs: Vec<EntityPair> = test
            .examples()
            .iter()
            .take(16)
            .map(|e| e.pair.clone())
            .collect();
        // Duplicates exercise the per-attribute cache hit path.
        pairs.push(pairs[0].clone());
        pairs.push(pairs[3].clone());
        let batch = m.predict_proba_batch(&pairs);
        for (pair, &b) in pairs.iter().zip(&batch) {
            assert_eq!(m.predict_proba(pair).to_bits(), b.to_bits());
        }
        // A second call runs on the dirtied scratch; values must not move.
        let again = m.predict_proba_batch(&pairs);
        for (&a, &b) in batch.iter().zip(&again) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_train_is_error() {
        let (train, val, _) = splits(34);
        assert!(
            AttentionMatcher::fit(&train.sample(0, 0), &val, AttentionOptions::default()).is_err()
        );
    }
}
