//! Token-level soft-alignment ("attention") matcher.
//!
//! This is the reproduction's stand-in for the transformer EM models the
//! paper explains: every token of one record attends over the tokens of the
//! other via embedding cosine, producing per-attribute soft-alignment
//! statistics that feed a trained logistic head. Crucially the model is
//! *word-sensitive in the same way a BERT matcher is* — removing or
//! injecting a single token changes the attention distributions and thus
//! the score — which is exactly the code path perturbation explainers
//! exercise.

use crate::matcher::{best_f1_threshold, Matcher};
use em_data::{Dataset, EntityPair, Side};
use em_embed::{EmbeddingOptions, WordEmbeddings};
use em_linalg::stats::{sigmoid, softmax};
use em_rngs::rngs::StdRng;
use em_rngs::seq::SliceRandom;
use em_rngs::SeedableRng;

/// Options for the attention matcher.
#[derive(Debug, Clone, Copy)]
pub struct AttentionOptions {
    /// Softmax temperature on cosine scores (higher = sharper alignment).
    pub temperature: f64,
    /// Embedding training options.
    pub embeddings: EmbeddingOptions,
    /// Head training: epochs.
    pub epochs: usize,
    /// Head training: learning rate.
    pub learning_rate: f64,
    /// Head training: L2 penalty.
    pub l2: f64,
    /// Seed for shuffling.
    pub seed: u64,
    /// Positive class weight.
    pub positive_weight: f64,
}

impl Default for AttentionOptions {
    fn default() -> Self {
        AttentionOptions {
            temperature: 6.0,
            embeddings: EmbeddingOptions::default(),
            epochs: 150,
            learning_rate: 0.5,
            l2: 1e-4,
            seed: 21,
            positive_weight: 2.0,
        }
    }
}

/// Per-attribute soft-alignment features: 4 per attribute + 2 global.
const PER_ATTR: usize = 4;
const GLOBAL: usize = 2;

/// Trained soft-alignment matcher.
pub struct AttentionMatcher {
    embeddings: WordEmbeddings,
    temperature: f64,
    n_attributes: usize,
    weights: Vec<f64>,
    bias: f64,
    threshold: f64,
}

impl AttentionMatcher {
    /// Train embeddings on the train corpus and fit the logistic head on
    /// soft-alignment features.
    pub fn fit(
        train: &Dataset,
        validation: &Dataset,
        opts: AttentionOptions,
    ) -> Result<Self, crate::MatcherError> {
        if train.is_empty() {
            return Err(crate::MatcherError::EmptyTrainingSet);
        }
        let embeddings = WordEmbeddings::train_on_dataset(train, opts.embeddings)
            .map_err(crate::MatcherError::Embedding)?;
        let n_attributes = train.schema().len();
        let dims = n_attributes * PER_ATTR + GLOBAL;

        let feats = |d: &Dataset| -> (Vec<Vec<f64>>, Vec<f64>) {
            let x: Vec<Vec<f64>> = d
                .examples()
                .iter()
                .map(|ex| alignment_features(&embeddings, opts.temperature, n_attributes, &ex.pair))
                .collect();
            let y: Vec<f64> = d.examples().iter().map(|ex| ex.label.as_f64()).collect();
            (x, y)
        };
        let (x, y) = feats(train);
        let (vx, vy) = feats(validation);

        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut w = vec![0.0; dims];
        let mut b = 0.0;
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut best = (f64::NEG_INFINITY, w.clone(), b);
        let mut stale = 0usize;
        for _ in 0..opts.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let z = em_linalg::dot(&w, &x[i]) + b;
                let pred = sigmoid(z);
                let weight = if y[i] > 0.5 {
                    opts.positive_weight
                } else {
                    1.0
                };
                let err = weight * (pred - y[i]);
                for (wj, &xj) in w.iter_mut().zip(&x[i]) {
                    *wj -= opts.learning_rate * (err * xj + opts.l2 * *wj);
                }
                b -= opts.learning_rate * err;
            }
            let (ex, ey) = if vx.is_empty() { (&x, &y) } else { (&vx, &vy) };
            let f1 = head_f1(&w, b, ex, ey);
            if f1 > best.0 + 1e-9 {
                best = (f1, w.clone(), b);
                stale = 0;
            } else {
                stale += 1;
                if stale > 20 {
                    break;
                }
            }
        }
        let (_, w, b) = best;
        let (cx, cy) = if vx.is_empty() { (&x, &y) } else { (&vx, &vy) };
        let scores: Vec<f64> = cx
            .iter()
            .map(|f| sigmoid(em_linalg::dot(&w, f) + b))
            .collect();
        let labels: Vec<bool> = cy.iter().map(|&v| v > 0.5).collect();
        let threshold = best_f1_threshold(&scores, &labels);
        Ok(AttentionMatcher {
            embeddings,
            temperature: opts.temperature,
            n_attributes,
            weights: w,
            bias: b,
            threshold,
        })
    }

    /// The trained word embeddings (shared with CREW's semantic knowledge
    /// source in the experiment harness, as the paper pipeline does).
    pub fn embeddings(&self) -> &WordEmbeddings {
        &self.embeddings
    }
}

fn head_f1(w: &[f64], b: f64, x: &[Vec<f64>], y: &[f64]) -> f64 {
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for (f, &truth) in x.iter().zip(y) {
        let pred = sigmoid(em_linalg::dot(w, f) + b) >= 0.5;
        let t = truth > 0.5;
        match (pred, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            _ => {}
        }
    }
    crate::matcher::report_from_counts(tp, fp, fn_, 0).f1
}

/// Soft-alignment feature vector of a pair.
///
/// Per attribute: mean and max of soft-alignment scores in both directions
/// (L→R, R→L). Globally: overall token coverage both directions.
fn alignment_features(
    emb: &WordEmbeddings,
    temperature: f64,
    n_attributes: usize,
    pair: &EntityPair,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(n_attributes * PER_ATTR + GLOBAL);
    let mut all_l: Vec<Vec<f64>> = Vec::new();
    let mut all_r: Vec<Vec<f64>> = Vec::new();
    for attr in 0..n_attributes {
        let lt = em_text::tokenize(pair.record(Side::Left).value(attr));
        let rt = em_text::tokenize(pair.record(Side::Right).value(attr));
        let lv: Vec<Vec<f64>> = lt.iter().map(|w| emb.vector(w)).collect();
        let rv: Vec<Vec<f64>> = rt.iter().map(|w| emb.vector(w)).collect();
        let (mean_lr, max_lr) = direction_stats(&lv, &rv, temperature);
        let (mean_rl, max_rl) = direction_stats(&rv, &lv, temperature);
        out.push(mean_lr);
        out.push(max_lr);
        out.push(mean_rl);
        out.push(max_rl);
        all_l.extend(lv);
        all_r.extend(rv);
    }
    let (cov_lr, _) = direction_stats(&all_l, &all_r, temperature);
    let (cov_rl, _) = direction_stats(&all_r, &all_l, temperature);
    out.push(cov_lr);
    out.push(cov_rl);
    out
}

/// For each query vector, attend over keys with temperature-softmax on
/// cosine and score the query against its attention-weighted context.
/// Returns (mean, max) over queries; (0,0) when either side is empty.
fn direction_stats(queries: &[Vec<f64>], keys: &[Vec<f64>], temperature: f64) -> (f64, f64) {
    if queries.is_empty() || keys.is_empty() {
        return (0.0, 0.0);
    }
    let mut sum = 0.0;
    let mut max = f64::NEG_INFINITY;
    for q in queries {
        let sims: Vec<f64> = keys
            .iter()
            .map(|k| em_linalg::cosine(q, k) * temperature)
            .collect();
        let attn = softmax(&sims);
        // Attention-weighted context vector.
        let mut ctx = vec![0.0; q.len()];
        for (a, k) in attn.iter().zip(keys) {
            for (c, &kv) in ctx.iter_mut().zip(k) {
                *c += a * kv;
            }
        }
        let score = em_linalg::cosine(q, &ctx).max(0.0);
        sum += score;
        if score > max {
            max = score;
        }
    }
    (sum / queries.len() as f64, max)
}

impl Matcher for AttentionMatcher {
    fn name(&self) -> &str {
        "attention"
    }

    fn predict_proba(&self, pair: &EntityPair) -> f64 {
        let f = alignment_features(&self.embeddings, self.temperature, self.n_attributes, pair);
        sigmoid(em_linalg::dot(&self.weights, &f) + self.bias)
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::evaluate;
    use em_synth::{generate, Family, GeneratorConfig};

    fn splits(seed: u64) -> (Dataset, Dataset, Dataset) {
        let cfg = GeneratorConfig {
            entities: 120,
            pairs: 400,
            match_rate: 0.25,
            hard_negative_rate: 0.5,
            seed,
        };
        let d = generate(Family::Citations, cfg).unwrap();
        let s = d.split(0.7, 0.15, seed).unwrap();
        (s.train, s.validation, s.test)
    }

    #[test]
    fn attention_matcher_learns() {
        let (train, val, test) = splits(31);
        let m = AttentionMatcher::fit(&train, &val, AttentionOptions::default()).unwrap();
        let r = evaluate(&m, &test);
        assert!(r.f1 > 0.7, "attention F1 too low: {r:?}");
    }

    #[test]
    fn token_drop_changes_score() {
        let (train, val, test) = splits(32);
        let m = AttentionMatcher::fit(&train, &val, AttentionOptions::default()).unwrap();
        let ex = test
            .examples()
            .iter()
            .find(|e| e.label.is_match() && !e.pair.left().value(0).is_empty())
            .unwrap();
        let before = m.predict_proba(&ex.pair);
        // Drop the first token of the left title.
        let title = ex.pair.left().value(0).to_string();
        let rest: Vec<&str> = title.split_whitespace().skip(1).collect();
        let mut maimed = ex.pair.clone();
        maimed.record_mut(Side::Left).set_value(0, rest.join(" "));
        let after = m.predict_proba(&maimed);
        assert_ne!(
            before, after,
            "token-level perturbation must change the score"
        );
    }

    #[test]
    fn direction_stats_empty_inputs() {
        assert_eq!(direction_stats(&[], &[vec![1.0]], 4.0), (0.0, 0.0));
        assert_eq!(direction_stats(&[vec![1.0]], &[], 4.0), (0.0, 0.0));
    }

    #[test]
    fn direction_stats_identical_tokens_score_high() {
        let v = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let (mean, max) = direction_stats(&v, &v, 8.0);
        assert!(mean > 0.8, "mean {mean}");
        assert!(max > 0.9, "max {max}");
    }

    #[test]
    fn probabilities_bounded_and_deterministic() {
        let (train, val, test) = splits(33);
        let a = AttentionMatcher::fit(&train, &val, AttentionOptions::default()).unwrap();
        let b = AttentionMatcher::fit(&train, &val, AttentionOptions::default()).unwrap();
        for ex in test.examples().iter().take(10) {
            let pa = a.predict_proba(&ex.pair);
            assert!((0.0..=1.0).contains(&pa));
            assert_eq!(pa, b.predict_proba(&ex.pair));
        }
    }

    #[test]
    fn empty_train_is_error() {
        let (train, val, _) = splits(34);
        assert!(
            AttentionMatcher::fit(&train.sample(0, 0), &val, AttentionOptions::default()).is_err()
        );
    }
}
