//! A hand-written rule matcher: weighted per-attribute similarity vote.
//!
//! Serves two roles: a Magellan-style baseline model in the matcher-quality
//! table, and an always-available untrained black box for tests.

use crate::matcher::Matcher;
use em_data::EntityPair;

/// One rule: an attribute index, a weight and the similarity used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rule {
    pub attribute: usize,
    pub weight: f64,
}

/// Threshold matcher over a weighted mean of per-attribute token Jaccard
/// and Monge-Elkan similarity.
#[derive(Debug, Clone)]
pub struct RuleMatcher {
    rules: Vec<Rule>,
    threshold: f64,
}

impl RuleMatcher {
    /// Build with explicit rules.
    ///
    /// # Errors
    /// Rejects empty rule sets, non-positive weights and out-of-range
    /// thresholds.
    pub fn new(rules: Vec<Rule>, threshold: f64) -> Result<Self, crate::MatcherError> {
        if rules.is_empty() {
            return Err(crate::MatcherError::NoRules);
        }
        if rules
            .iter()
            .any(|r| r.weight <= 0.0 || !r.weight.is_finite())
        {
            return Err(crate::MatcherError::InvalidRuleWeight);
        }
        if !(0.0..=1.0).contains(&threshold) {
            return Err(crate::MatcherError::InvalidThreshold(threshold));
        }
        Ok(RuleMatcher { rules, threshold })
    }

    /// Uniform rules over every attribute of a schema.
    pub fn uniform(n_attributes: usize, threshold: f64) -> Result<Self, crate::MatcherError> {
        let rules = (0..n_attributes)
            .map(|attribute| Rule {
                attribute,
                weight: 1.0,
            })
            .collect();
        RuleMatcher::new(rules, threshold)
    }
}

impl Matcher for RuleMatcher {
    fn name(&self) -> &str {
        "rules"
    }

    fn predict_proba(&self, pair: &EntityPair) -> f64 {
        let mut score = 0.0;
        let mut weight_sum = 0.0;
        for rule in &self.rules {
            if rule.attribute >= pair.schema().len() {
                continue;
            }
            let l = pair.left().value(rule.attribute);
            let r = pair.right().value(rule.attribute);
            let lt = em_text::tokenize(l);
            let rt = em_text::tokenize(r);
            // Skip attributes where either side is missing so nulls don't
            // count as evidence either way.
            if lt.is_empty() || rt.is_empty() {
                continue;
            }
            let sim = 0.5 * em_text::jaccard(&lt, &rt) + 0.5 * em_text::monge_elkan_sym(&lt, &rt);
            score += rule.weight * sim;
            weight_sum += rule.weight;
        }
        if weight_sum == 0.0 {
            0.0
        } else {
            score / weight_sum
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{Record, Schema};
    use std::sync::Arc;

    fn pair(l: &[&str], r: &[&str]) -> EntityPair {
        let schema = Arc::new(Schema::new(vec!["a", "b"]));
        EntityPair::new(
            schema,
            Record::new(0, l.iter().map(|s| s.to_string()).collect()),
            Record::new(1, r.iter().map(|s| s.to_string()).collect()),
        )
        .unwrap()
    }

    #[test]
    fn identical_pair_scores_one() {
        let m = RuleMatcher::uniform(2, 0.5).unwrap();
        let p = pair(&["sonix tv", "black"], &["sonix tv", "black"]);
        assert!((m.predict_proba(&p) - 1.0).abs() < 1e-9);
        assert!(m.predict(&p));
    }

    #[test]
    fn disjoint_pair_scores_zero() {
        let m = RuleMatcher::uniform(2, 0.5).unwrap();
        let p = pair(&["alpha beta", "x"], &["gamma delta", "y"]);
        assert!(m.predict_proba(&p) < 0.35);
        assert!(!m.predict(&p));
    }

    #[test]
    fn null_attributes_are_skipped() {
        let m = RuleMatcher::uniform(2, 0.5).unwrap();
        let p = pair(&["same words", ""], &["same words", "ignored"]);
        assert!((m.predict_proba(&p) - 1.0).abs() < 1e-9);
        // Fully null pair scores zero rather than NaN.
        let empty = pair(&["", ""], &["", ""]);
        assert_eq!(m.predict_proba(&empty), 0.0);
    }

    #[test]
    fn weights_shift_the_score() {
        let heavy_a = RuleMatcher::new(
            vec![
                Rule {
                    attribute: 0,
                    weight: 10.0,
                },
                Rule {
                    attribute: 1,
                    weight: 1.0,
                },
            ],
            0.5,
        )
        .unwrap();
        let heavy_b = RuleMatcher::new(
            vec![
                Rule {
                    attribute: 0,
                    weight: 1.0,
                },
                Rule {
                    attribute: 1,
                    weight: 10.0,
                },
            ],
            0.5,
        )
        .unwrap();
        let p = pair(&["match match", "zzz"], &["match match", "qqq"]);
        assert!(heavy_a.predict_proba(&p) > heavy_b.predict_proba(&p));
    }

    #[test]
    fn constructor_validation() {
        assert!(RuleMatcher::new(vec![], 0.5).is_err());
        assert!(RuleMatcher::new(
            vec![Rule {
                attribute: 0,
                weight: 0.0
            }],
            0.5
        )
        .is_err());
        assert!(RuleMatcher::new(
            vec![Rule {
                attribute: 0,
                weight: -1.0
            }],
            0.5
        )
        .is_err());
        assert!(RuleMatcher::new(
            vec![Rule {
                attribute: 0,
                weight: 1.0
            }],
            1.5
        )
        .is_err());
        assert!(RuleMatcher::uniform(0, 0.5).is_err());
    }

    #[test]
    fn out_of_range_attribute_is_ignored() {
        let m = RuleMatcher::new(
            vec![
                Rule {
                    attribute: 0,
                    weight: 1.0,
                },
                Rule {
                    attribute: 9,
                    weight: 1.0,
                },
            ],
            0.5,
        )
        .unwrap();
        let p = pair(&["x y", "z"], &["x y", "z"]);
        assert!((m.predict_proba(&p) - 1.0).abs() < 1e-9);
    }
}
