//! Randomized truncated SVD (Halko-Martinsson-Tropp) used to factorise the
//! PPMI co-occurrence matrix into word embeddings.

use crate::matrix::Matrix;
use crate::qr::orthonormalize;
use crate::sparse::SparseMatrix;
use crate::LinalgError;
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};

/// Truncated singular value decomposition `A ≈ U Σ V^T`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors, shape `(m, k)`.
    pub u: Matrix,
    /// Singular values, length `k`, in non-increasing order.
    pub sigma: Vec<f64>,
    /// Right singular vectors, shape `(n, k)`.
    pub v: Matrix,
}

/// Options for the randomized SVD.
#[derive(Debug, Clone, Copy)]
pub struct SvdOptions {
    /// Oversampling columns added to the sketch (default 8).
    pub oversample: usize,
    /// Power iterations to sharpen the spectrum (default 2).
    pub power_iterations: usize,
    /// RNG seed for the Gaussian test matrix.
    pub seed: u64,
    /// Thread budget for the sparse-operand matvecs (`0` = auto-size to
    /// the shared pool). Results are bitwise-identical at any value; the
    /// dense path is always single-threaded.
    pub threads: usize,
}

impl Default for SvdOptions {
    fn default() -> Self {
        SvdOptions {
            oversample: 8,
            power_iterations: 2,
            seed: 0x5eed_cafe,
            threads: 0,
        }
    }
}

/// Compute a rank-`k` randomized SVD of `a`.
///
/// The sketch dimension is `min(k + oversample, min(m, n))`; the returned
/// decomposition is truncated back to `k` components (or fewer if the matrix
/// has smaller dimensions).
pub fn randomized_svd(a: &Matrix, k: usize, opts: SvdOptions) -> Result<TruncatedSvd, LinalgError> {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Err(LinalgError::EmptyMatrix);
    }
    if k == 0 {
        return Err(LinalgError::InvalidRank(k));
    }
    let target = k.min(m).min(n);
    let sketch = (target + opts.oversample).min(m).min(n);

    // Stage A: range finding. Y = A * Omega, Omega Gaussian n x sketch.
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let omega = Matrix::from_fn(n, sketch, |_, _| gaussian(&mut rng));
    let mut y = a.matmul(&omega);
    let mut q = orthonormalize(&y);
    // Power iterations with re-orthonormalisation for numerical stability.
    let at = a.transpose();
    for _ in 0..opts.power_iterations {
        let z = orthonormalize(&at.matmul(&q));
        y = a.matmul(&z);
        q = orthonormalize(&y);
    }

    // Stage B: B = Q^T A is small (sketch x n); take its exact SVD via the
    // eigendecomposition of B B^T (sketch x sketch, symmetric PSD).
    let b = q.transpose().matmul(a);
    Ok(finish_from_range(&b, &q, target, n))
}

/// Rank-`k` randomized SVD of a CSR matrix.
///
/// Same algorithm, seed schedule and accumulation orders as
/// [`randomized_svd`], so for any sparse operand the result is
/// bitwise-identical to densifying and calling the dense path — the
/// property suite pins this. The sparse·dense products are parallelised
/// over row blocks on the shared `em-pool` (budget `opts.threads`, `0` =
/// auto), which does not change a single bit of output because each
/// output row is owned by one task.
pub fn randomized_svd_sparse(
    a: &SparseMatrix,
    k: usize,
    opts: SvdOptions,
) -> Result<TruncatedSvd, LinalgError> {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Err(LinalgError::EmptyMatrix);
    }
    if k == 0 {
        return Err(LinalgError::InvalidRank(k));
    }
    let threads = if opts.threads == 0 {
        em_pool::default_threads()
    } else {
        opts.threads
    };
    let target = k.min(m).min(n);
    let sketch = (target + opts.oversample).min(m).min(n);

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let omega = Matrix::from_fn(n, sketch, |_, _| gaussian(&mut rng));
    let mut y = a.matmul_dense(&omega, threads);
    let mut q = orthonormalize(&y);
    let at = a.transpose();
    for _ in 0..opts.power_iterations {
        let z = orthonormalize(&at.matmul_dense(&q, threads));
        y = a.matmul_dense(&z, threads);
        q = orthonormalize(&y);
    }

    // B = Q^T A computed as (A^T Q)^T: the CSR transpose kernel visits
    // the same nonzero products in the same ascending-k order the dense
    // `q.transpose().matmul(a)` uses (zero-operand terms it skips are
    // exact no-op additions), so B — and everything downstream — matches
    // the dense path bitwise.
    let b = at.matmul_dense(&q, threads).transpose();
    Ok(finish_from_range(&b, &q, target, n))
}

/// Shared tail of both SVD paths: exact SVD of the small projected
/// matrix `B = Q^T A` via the eigendecomposition of `B B^T`
/// (sketch x sketch, symmetric PSD), lifted back through `Q`.
fn finish_from_range(b: &Matrix, q: &Matrix, target: usize, n: usize) -> TruncatedSvd {
    let bbt = b.matmul(&b.transpose());
    let (eigvals, eigvecs) = symmetric_eigen(&bbt, 200, 1e-12);

    // Sort by eigenvalue descending.
    let mut order: Vec<usize> = (0..eigvals.len()).collect();
    order.sort_by(|&i, &j| eigvals[j].partial_cmp(&eigvals[i]).unwrap());

    let kk = target.min(order.len());
    let mut sigma = Vec::with_capacity(kk);
    let mut u_small = Matrix::zeros(bbt.rows(), kk);
    for (c, &idx) in order.iter().take(kk).enumerate() {
        let s = eigvals[idx].max(0.0).sqrt();
        sigma.push(s);
        for r in 0..bbt.rows() {
            u_small[(r, c)] = eigvecs[(r, idx)];
        }
    }

    // U = Q * U_small ; V^T = Σ^{-1} U_small^T B  => V = B^T U_small Σ^{-1}
    let u = q.matmul(&u_small);
    let bt_us = b.transpose().matmul(&u_small);
    let mut v = Matrix::zeros(n, kk);
    for c in 0..kk {
        let s = sigma[c];
        for r in 0..n {
            v[(r, c)] = if s > 1e-12 { bt_us[(r, c)] / s } else { 0.0 };
        }
    }
    TruncatedSvd { u, sigma, v }
}

/// Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)`; column `j` of the eigenvector
/// matrix corresponds to `eigenvalues[j]`. Intended for the small
/// (sketch-sized) matrices produced inside the randomized SVD.
pub fn symmetric_eigen(a: &Matrix, max_sweeps: usize, tol: f64) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "symmetric_eigen requires a square matrix");
    let mut d = a.clone();
    let mut v = Matrix::identity(n);
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += d[(i, j)] * d[(i, j)];
            }
        }
        if off.sqrt() < tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = d[(p, q)];
                if apq.abs() < tol * 1e-3 {
                    continue;
                }
                let app = d[(p, p)];
                let aqq = d[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q.
                for k in 0..n {
                    let dkp = d[(k, p)];
                    let dkq = d[(k, q)];
                    d[(k, p)] = c * dkp - s * dkq;
                    d[(k, q)] = s * dkp + c * dkq;
                }
                for k in 0..n {
                    let dpk = d[(p, k)];
                    let dqk = d[(q, k)];
                    d[(p, k)] = c * dpk - s * dqk;
                    d[(q, k)] = s * dpk + c * dqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eig = (0..n).map(|i| d[(i, i)]).collect();
    (eig, v)
}

/// Standard normal sample via Box-Muller (avoids pulling rand_distr).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank_matrix(m: usize, n: usize, rank: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, rank, |_, _| gaussian(&mut rng));
        let b = Matrix::from_fn(rank, n, |_, _| gaussian(&mut rng));
        a.matmul(&b)
    }

    #[test]
    fn symmetric_eigen_diagonal() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        let (eig, _) = symmetric_eigen(&a, 100, 1e-14);
        let mut e = eig.clone();
        e.sort_by(|x, y| y.partial_cmp(x).unwrap());
        assert!((e[0] - 3.0).abs() < 1e-12);
        assert!((e[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_eigen_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (eig, vecs) = symmetric_eigen(&a, 100, 1e-14);
        let mut pairs: Vec<(f64, Vec<f64>)> = (0..2).map(|j| (eig[j], vecs.col(j))).collect();
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
        assert!((pairs[0].0 - 3.0).abs() < 1e-10);
        assert!((pairs[1].0 - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = &pairs[0].1;
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn svd_reconstructs_low_rank_matrix() {
        let a = low_rank_matrix(30, 20, 4, 42);
        let svd = randomized_svd(&a, 4, SvdOptions::default()).unwrap();
        // Reconstruct and compare.
        let mut recon = Matrix::zeros(30, 20);
        for c in 0..svd.sigma.len() {
            for i in 0..30 {
                for j in 0..20 {
                    recon[(i, j)] += svd.sigma[c] * svd.u[(i, c)] * svd.v[(j, c)];
                }
            }
        }
        let mut diff = a.clone();
        diff.axpy(-1.0, &recon);
        assert!(
            diff.frobenius_norm() < 1e-6 * a.frobenius_norm().max(1.0),
            "reconstruction error too large: {}",
            diff.frobenius_norm()
        );
    }

    #[test]
    fn svd_singular_values_sorted_and_nonnegative() {
        let a = low_rank_matrix(25, 15, 6, 7);
        let svd = randomized_svd(&a, 6, SvdOptions::default()).unwrap();
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_is_deterministic_for_fixed_seed() {
        let a = low_rank_matrix(20, 12, 3, 9);
        let s1 = randomized_svd(&a, 3, SvdOptions::default()).unwrap();
        let s2 = randomized_svd(&a, 3, SvdOptions::default()).unwrap();
        for (x, y) in s1.sigma.iter().zip(&s2.sigma) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn svd_rejects_empty_and_zero_rank() {
        assert!(matches!(
            randomized_svd(&Matrix::zeros(0, 0), 2, SvdOptions::default()),
            Err(LinalgError::EmptyMatrix)
        ));
        assert!(matches!(
            randomized_svd(&Matrix::identity(3), 0, SvdOptions::default()),
            Err(LinalgError::InvalidRank(0))
        ));
    }

    #[test]
    fn svd_rank_capped_by_matrix_size() {
        let a = Matrix::identity(3);
        let svd = randomized_svd(&a, 10, SvdOptions::default()).unwrap();
        assert!(svd.sigma.len() <= 3);
        for &s in &svd.sigma {
            assert!((s - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn sparse_svd_matches_dense_bitwise() {
        // A low-rank matrix with structural zeros sprinkled in, so the
        // sparse layout is exercised for real.
        let mut a = low_rank_matrix(40, 26, 5, 11);
        for i in 0..40 {
            for j in 0..26 {
                if (i * 7 + j * 3) % 4 == 0 {
                    a[(i, j)] = 0.0;
                }
            }
        }
        let sp = SparseMatrix::from_dense(&a);
        assert!(sp.nnz() < 40 * 26);
        for threads in [1usize, 4] {
            let dense = randomized_svd(&a, 5, SvdOptions::default()).unwrap();
            let sparse = randomized_svd_sparse(
                &sp,
                5,
                SvdOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(dense.sigma.len(), sparse.sigma.len());
            for (x, y) in dense.sigma.iter().zip(&sparse.sigma) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "sigma mismatch (threads={threads})"
                );
            }
            for (x, y) in dense.u.as_slice().iter().zip(sparse.u.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "U mismatch (threads={threads})");
            }
            for (x, y) in dense.v.as_slice().iter().zip(sparse.v.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "V mismatch (threads={threads})");
            }
        }
    }

    #[test]
    fn sparse_svd_rejects_empty_and_zero_rank() {
        let empty = SparseMatrix::from_triplets(0, 0, vec![]);
        assert!(matches!(
            randomized_svd_sparse(&empty, 2, SvdOptions::default()),
            Err(LinalgError::EmptyMatrix)
        ));
        let id = SparseMatrix::from_dense(&Matrix::identity(3));
        assert!(matches!(
            randomized_svd_sparse(&id, 0, SvdOptions::default()),
            Err(LinalgError::InvalidRank(0))
        ));
    }

    #[test]
    fn svd_u_columns_orthonormal() {
        let a = low_rank_matrix(18, 10, 5, 3);
        let svd = randomized_svd(&a, 5, SvdOptions::default()).unwrap();
        for i in 0..svd.sigma.len() {
            for j in 0..svd.sigma.len() {
                let d = crate::matrix::dot(&svd.u.col(i), &svd.u.col(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-6, "U^T U [{i},{j}] = {d}");
            }
        }
    }
}
