//! # em-linalg
//!
//! Dense linear-algebra kernels for the CREW entity-matching explainer
//! reproduction: matrices, Cholesky/ridge solvers, Householder QR,
//! randomized truncated SVD (for PPMI word embeddings) and the descriptive
//! statistics used by the evaluation metrics.
//!
//! The crate is intentionally self-contained (no BLAS bindings) so the
//! whole reproduction builds offline; sizes are small (≤ a few thousand
//! rows), so straightforward loops are fast enough.
//!
//! ```
//! use em_linalg::{Matrix, ridge};
//! // y = 2*x0 + 1
//! let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
//! let fit = ridge(&x, &[1.0, 3.0, 5.0], 1e-9).unwrap();
//! assert!((fit.coefficients[0] - 2.0).abs() < 1e-4);
//! assert!((fit.intercept - 1.0).abs() < 1e-4);
//! ```

// Index-based loops are kept where they mirror the textbook formulation
// of the numeric kernels; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
pub mod kernels;
pub mod matrix;
pub mod qr;
pub mod solve;
pub mod sparse;
pub mod stats;
pub mod svd;

pub use kernels::{active_backend, axpy, KernelBackend};
pub use matrix::{cosine, dot, norm2, sq_dist, Matrix};
pub use solve::{cholesky, ridge, ridge_regression, solve_spd, RidgeFit};
pub use sparse::SparseMatrix;
pub use svd::{randomized_svd, randomized_svd_sparse, symmetric_eigen, SvdOptions, TruncatedSvd};

/// Errors surfaced by the numeric kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A square matrix was required.
    NotSquare { rows: usize, cols: usize },
    /// Cholesky hit a non-positive pivot.
    NotPositiveDefinite { pivot: usize, value: f64 },
    /// A vector length did not match the matrix dimension.
    DimensionMismatch { expected: usize, got: usize },
    /// Sample weights were negative, non-finite or all zero.
    InvalidWeights,
    /// Ridge penalty was negative.
    InvalidLambda(f64),
    /// An operation was requested on an empty matrix.
    EmptyMatrix,
    /// Requested SVD rank was zero.
    InvalidRank(usize),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot {pivot} = {value})"
                )
            }
            LinalgError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            LinalgError::InvalidWeights => {
                write!(
                    f,
                    "sample weights must be non-negative, finite and not all zero"
                )
            }
            LinalgError::InvalidLambda(l) => {
                write!(f, "ridge penalty must be non-negative, got {l}")
            }
            LinalgError::EmptyMatrix => write!(f, "operation requires a non-empty matrix"),
            LinalgError::InvalidRank(k) => write!(f, "invalid SVD rank {k}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod proptests {
    use super::*;
    use propcheck::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f64>> {
        propcheck::collection::vec(-100.0f64..100.0, 2..20)
    }

    /// The naive sequential reduction the accumulation-order policy in
    /// [`matrix::dot`] is measured against.
    fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    proptest! {
        #[test]
        fn unrolled_dot_within_documented_tolerance(a in small_vec(), b in small_vec()) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let fast = dot(a, b);
            let slow = naive_dot(a, b);
            let mag: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x * y).abs()).sum();
            let tol = 4.0 * n as f64 * f64::EPSILON * mag;
            prop_assert!(
                (fast - slow).abs() <= tol,
                "dot reassociation out of tolerance: {fast} vs {slow} (tol {tol})"
            );
            // The lane order is fixed: repeated calls are bitwise stable.
            prop_assert_eq!(fast.to_bits(), dot(a, b).to_bits());
        }

        #[test]
        fn unrolled_cosine_tracks_naive_reference(a in small_vec(), b in small_vec()) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let fast = cosine(a, b);
            let (na, nb) = (naive_dot(a, a).sqrt(), naive_dot(b, b).sqrt());
            let slow = if na == 0.0 || nb == 0.0 {
                0.0
            } else {
                (naive_dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
            };
            // Cosine is normalised, so the reassociation error collapses
            // to a few ulps regardless of input magnitude.
            prop_assert!((fast - slow).abs() < 1e-12, "{fast} vs {slow}");
        }

        #[test]
        fn matvec_into_matches_matvec_bitwise(
            rows in 1usize..8,
            cols in 1usize..10,
            seed in 0u64..1000,
        ) {
            use em_rngs::{Rng, SeedableRng};
            let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
            let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-10.0..10.0));
            let v: Vec<f64> = (0..cols).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let fresh = m.matvec(&v);
            // A dirty, wrongly-sized buffer must be fully overwritten.
            let mut buf = vec![f64::NAN; 3];
            m.matvec_into(&v, &mut buf);
            prop_assert_eq!(buf.len(), rows);
            for (x, y) in buf.iter().zip(&fresh) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            // And each entry obeys the documented dot tolerance.
            for (i, y) in fresh.iter().enumerate() {
                let slow = naive_dot(m.row(i), &v);
                let mag: f64 = m.row(i).iter().zip(&v).map(|(x, y)| (x * y).abs()).sum();
                let tol = 4.0 * cols as f64 * f64::EPSILON * mag;
                prop_assert!((y - slow).abs() <= tol);
            }
        }

        #[test]
        fn cosine_is_bounded(a in small_vec(), b in small_vec()) {
            let n = a.len().min(b.len());
            let c = cosine(&a[..n], &b[..n]);
            prop_assert!((-1.0..=1.0).contains(&c));
        }

        #[test]
        fn ranks_are_a_permutation_average(xs in small_vec()) {
            let r = stats::ranks(&xs);
            // Fractional ranks always sum to n(n+1)/2.
            let n = xs.len() as f64;
            let sum: f64 = r.iter().sum();
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
        }

        #[test]
        fn spearman_is_bounded(xs in small_vec()) {
            let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 - 1.0).collect();
            let s = stats::spearman(&xs, &ys);
            prop_assert!((-1.0..=1.0).contains(&s));
        }

        #[test]
        fn ridge_fit_is_finite(rows in 3usize..12, cols in 1usize..4, seed in 0u64..1000) {
            use em_rngs::{Rng, SeedableRng};
            let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
            let x = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0));
            let y: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let fit = ridge(&x, &y, 0.01).unwrap();
            prop_assert!(fit.coefficients.iter().all(|c| c.is_finite()));
            prop_assert!(fit.intercept.is_finite());
            prop_assert!(fit.r_squared.is_finite());
        }

        #[test]
        fn solve_spd_inverts_gram_systems(n in 1usize..6, seed in 0u64..500) {
            use em_rngs::{Rng, SeedableRng};
            let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
            let m = Matrix::from_fn(n + 2, n, |_, _| rng.gen_range(-1.0..1.0));
            let mut a = m.gram();
            for i in 0..n { a[(i, i)] += 1.0; } // ensure SPD
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = a.matvec(&x_true);
            let x = solve_spd(&a, &b).unwrap();
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-6);
            }
        }
    }
}
