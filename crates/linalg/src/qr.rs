//! Householder QR decomposition, used by the randomized SVD to
//! orthonormalise range sketches.

use crate::matrix::Matrix;

/// Thin QR decomposition `A = Q R` with `Q` of shape `(m, k)`,
/// `R` upper-triangular of shape `(k, k)` where `k = min(m, n)`.
pub struct Qr {
    pub q: Matrix,
    pub r: Matrix,
}

/// Compute a thin Householder QR of `a`.
pub fn qr(a: &Matrix) -> Qr {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut r = a.clone();
    // Accumulate Householder vectors; v_j stored in column j below diagonal
    // plus an explicit head element.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);
    for j in 0..k {
        // Build the Householder vector for column j.
        let mut v = vec![0.0; m - j];
        for i in j..m {
            v[i - j] = r[(i, j)];
        }
        let alpha = -v[0].signum() * crate::matrix::norm2(&v);
        if alpha.abs() < f64::EPSILON {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        v[0] -= alpha;
        let vnorm = crate::matrix::norm2(&v);
        if vnorm < f64::EPSILON {
            vs.push(vec![0.0; m - j]);
            continue;
        }
        for x in &mut v {
            *x /= vnorm;
        }
        // Apply H = I - 2 v v^T to the trailing submatrix of R. The two
        // sweeps run row-major (i outer) so the memory access is
        // sequential, but each column's dot product still accumulates in
        // ascending-row order — bitwise the same as the textbook
        // column-at-a-time formulation, just cache-friendly.
        let mut dots = vec![0.0; n - j];
        for i in j..m {
            let vi = v[i - j];
            for (d, &x) in dots.iter_mut().zip(&r.row(i)[j..]) {
                *d += vi * x;
            }
        }
        for i in j..m {
            let t = 2.0 * v[i - j];
            for (x, &d) in r.row_mut(i)[j..].iter_mut().zip(&dots) {
                *x -= t * d;
            }
        }
        vs.push(v);
    }
    // Build thin Q by applying the Householder reflections to the first k
    // columns of the identity, in reverse order.
    let mut q = Matrix::zeros(m, k);
    for c in 0..k {
        q[(c, c)] = 1.0;
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        // Row-major application, same accumulation orders as above.
        let mut dots = vec![0.0; k];
        for i in j..m {
            let vi = v[i - j];
            for (d, &x) in dots.iter_mut().zip(q.row(i)) {
                *d += vi * x;
            }
        }
        for i in j..m {
            let t = 2.0 * v[i - j];
            for (x, &d) in q.row_mut(i).iter_mut().zip(&dots) {
                *x -= t * d;
            }
        }
    }
    // Zero the strictly-lower part of the returned R and trim to k x n -> k x k view when square use.
    let mut r_thin = Matrix::zeros(k, n);
    for i in 0..k {
        for j2 in i..n {
            r_thin[(i, j2)] = r[(i, j2)];
        }
    }
    Qr { q, r: r_thin }
}

/// Orthonormalise the columns of `a` (thin Q factor only).
pub fn orthonormalize(a: &Matrix) -> Matrix {
    qr(a).q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    fn col(m: &Matrix, j: usize) -> Vec<f64> {
        m.col(j)
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_fn(5, 3, |i, j| {
            ((i * 3 + j) as f64 * 0.7).sin() + 0.1 * i as f64
        });
        let Qr { q, r } = qr(&a);
        let recon = q.matmul(&r);
        for i in 0..5 {
            for j in 0..3 {
                assert!(
                    (recon[(i, j)] - a[(i, j)]).abs() < 1e-10,
                    "mismatch at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn q_columns_are_orthonormal() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i + 2 * j) as f64).cos() + (i as f64) * 0.05);
        let Qr { q, .. } = qr(&a);
        for i in 0..4 {
            for j in 0..4 {
                let d = dot(&col(&q, i), &col(&q, j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10, "q^T q [{i},{j}] = {d}");
            }
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(4, 4, |i, j| (1 + i * 4 + j) as f64);
        let Qr { r, .. } = qr(&a);
        for i in 0..4 {
            for j in 0..i {
                assert!(r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_handles_rank_deficient() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.0],
            vec![2.0, 4.0, 1.0],
            vec![3.0, 6.0, 0.0],
        ]);
        let Qr { q, r } = qr(&a);
        let recon = q.matmul(&r);
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn orthonormalize_identity_stays_orthonormal() {
        let q = orthonormalize(&Matrix::identity(3));
        for i in 0..3 {
            for j in 0..3 {
                let d = dot(&col(&q, i), &col(&q, j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-12);
            }
        }
    }
}
