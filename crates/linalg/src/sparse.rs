//! Compressed-sparse-row matrices for the offline (corpus) stage.
//!
//! The PPMI co-occurrence matrix is a sparse object — a vocabulary of V
//! words has V² dense entries but only as many nonzeros as observed
//! co-occurrence pairs — yet the seed pipeline materialised it densely and
//! paid O(V²·sketch) per randomized-SVD matvec. This module stores it in
//! CSR form and provides the sparse·dense kernels the SVD needs, at
//! O(nnz·sketch) per product.
//!
//! ## Determinism
//!
//! Construction sorts triplets by `(row, col, value-bits)` before
//! coalescing, so the layout — and therefore every accumulation order
//! downstream — is independent of the order triplets were produced in
//! (e.g. hash-map iteration order). The parallel kernels assign each
//! output *row* to exactly one task, so results are bitwise-identical at
//! any thread count.
//!
//! ## Bitwise agreement with the dense kernels
//!
//! [`Matrix::matmul`] skips zero left-hand entries, accumulating over the
//! inner index in ascending order. A CSR row stores exactly the nonzero
//! entries in ascending column order, so [`SparseMatrix::matmul_dense`]
//! performs the *same* sequence of non-trivial float operations and its
//! output is bitwise-identical to densifying first. The property suite in
//! `tests/` pins this down.

use crate::matrix::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};

/// Rows handed to one pool task in the parallel sparse·dense product.
/// Small enough to load-balance ragged row lengths, large enough that the
/// per-task overhead stays invisible next to the row dot products.
const ROW_BLOCK: usize = 64;

/// Output-column tile width of the sparse·dense product. A row's stored
/// entries are replayed once per tile, so the out-row strip plus the hot
/// strips of `other` stay cache-resident when `other` is wide. Tiling
/// reorders nothing: each output cell still accumulates its products in
/// ascending stored-entry order, preserving the bitwise agreement with
/// the dense [`Matrix::matmul`] documented above.
const COL_BLOCK: usize = 128;

/// Column-block width of the blocked CSR [`SparseMatrix::matvec`] and the
/// width threshold above which it replaces the simple row loop. Blocks of
/// 4096 `f64`s keep the gathered strip of the input vector inside L1/L2
/// while each row's entries are consumed in their stored (ascending)
/// order — so the blocked traversal is bitwise-identical to the simple
/// one (see `matvec` docs).
const MATVEC_BLOCK_COLS: usize = 4096;

/// Dense-row-free CSR matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s slice of
    /// `col_idx`/`values`; length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column of each stored entry, ascending within a row.
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Build from `(row, col, value)` triplets in **any** order.
    ///
    /// Triplets are sorted by `(row, col, value bits)` and duplicates of
    /// the same cell are summed in that sorted order, so the result is
    /// identical no matter how the input was ordered. Exact-zero values
    /// (including coalesced sums that land on ±0.0) are dropped: the
    /// nonzero-only invariant is what makes the kernels bitwise-match
    /// their dense counterparts, which skip zero operands.
    ///
    /// # Panics
    /// Panics if a triplet indexes outside `rows × cols`.
    pub fn from_triplets(rows: usize, cols: usize, mut entries: Vec<(u32, u32, f64)>) -> Self {
        assert!(cols <= u32::MAX as usize, "column count exceeds u32 range");
        for &(r, c, _) in &entries {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "triplet ({r},{c}) outside {rows}x{cols}"
            );
        }
        entries.sort_unstable_by_key(|&(r, c, v)| (r, c, v.to_bits()));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut i = 0;
        while i < entries.len() {
            let (r, c, mut v) = entries[i];
            i += 1;
            while i < entries.len() && entries[i].0 == r && entries[i].1 == c {
                v += entries[i].2;
                i += 1;
            }
            if v != 0.0 {
                row_ptr[r as usize + 1] += 1;
                col_idx.push(c);
                values.push(v);
            }
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build from a dense matrix, keeping only nonzero entries.
    pub fn from_dense(a: &Matrix) -> Self {
        let mut entries = Vec::new();
        for i in 0..a.rows() {
            for (j, &v) in a.row(i).iter().enumerate() {
                if v != 0.0 {
                    entries.push((i as u32, j as u32, v));
                }
            }
        }
        SparseMatrix::from_triplets(a.rows(), a.cols(), entries)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row `i` as parallel `(columns, values)` slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Entry at `(i, j)`; zero when not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Densify (tests and small-matrix interop).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                m[(i, c as usize)] = v;
            }
        }
        m
    }

    /// CSR transpose via a counting sort over columns — deterministic and
    /// O(nnz + rows + cols). Row `c` of the result stores column `c` of
    /// `self` with entries in ascending original-row order, which is
    /// exactly the accumulation order the dense transposed product uses.
    pub fn transpose(&self) -> SparseMatrix {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = next[c as usize];
                col_idx[slot] = r as u32;
                values[slot] = v;
                next[c as usize] += 1;
            }
        }
        SparseMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Matrix-vector product.
    ///
    /// Wide matrices (`cols > MATVEC_BLOCK_COLS`) take the cache-blocked
    /// path: the gathers from `v` are grouped by column block so the hot
    /// strip of `v` stays resident instead of being streamed once per row.
    /// Blocking is bitwise-neutral — each row still accumulates its stored
    /// entries in ascending column order, exactly like the simple loop
    /// (pinned by the property suite) — because a row's cursor only ever
    /// advances, and column blocks are visited in ascending order.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal cols");
        if self.cols > MATVEC_BLOCK_COLS {
            self.matvec_blocked(v)
        } else {
            self.matvec_simple(v)
        }
    }

    /// Reference row-at-a-time product (narrow matrices and the bitwise
    /// baseline the blocked path is tested against).
    fn matvec_simple(&self, v: &[f64]) -> Vec<f64> {
        (0..self.rows)
            .map(|i| {
                let (cols, vals) = self.row(i);
                let mut acc = 0.0;
                for (&c, &x) in cols.iter().zip(vals) {
                    acc += x * v[c as usize];
                }
                acc
            })
            .collect()
    }

    /// Column-block-outer product: per-row cursors sweep each row's
    /// entries once, block by block, accumulating straight into `out[i]`
    /// in the same ascending-column order as [`Self::matvec_simple`].
    fn matvec_blocked(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0f64; self.rows];
        let mut cursor: Vec<usize> = self.row_ptr[..self.rows].to_vec();
        let mut b0 = 0usize;
        while b0 < self.cols {
            let b1 = (b0 + MATVEC_BLOCK_COLS).min(self.cols);
            for i in 0..self.rows {
                let end = self.row_ptr[i + 1];
                let mut k = cursor[i];
                let mut acc = out[i];
                while k < end && (self.col_idx[k] as usize) < b1 {
                    acc += self.values[k] * v[self.col_idx[k] as usize];
                    k += 1;
                }
                out[i] = acc;
                cursor[i] = k;
            }
            b0 = b1;
        }
        out
    }

    /// Sparse·dense product `self * other`, parallelised over row blocks
    /// on the shared worker pool when `threads > 1`. Each output row is
    /// produced by exactly one task, so the result is bitwise-identical
    /// at any thread count — and bitwise-identical to
    /// `self.to_dense().matmul(other)` (see module docs).
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_dense(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, other.rows(), "inner dimensions must agree");
        let out_cols = other.cols();
        let fill_row = |i: usize, out_row: &mut [f64]| {
            let (cols, vals) = self.row(i);
            let mut c0 = 0;
            while c0 < out_cols {
                let c1 = (c0 + COL_BLOCK).min(out_cols);
                for (&c, &v) in cols.iter().zip(vals) {
                    let orow = &other.row(c as usize)[c0..c1];
                    crate::kernels::axpy(v, orow, &mut out_row[c0..c1]);
                }
                c0 = c1;
            }
        };
        let pool = em_pool::global();
        if threads <= 1 || pool.workers() == 0 || self.rows <= ROW_BLOCK {
            let mut out = Matrix::zeros(self.rows, out_cols);
            for i in 0..self.rows {
                fill_row(i, out.row_mut(i));
            }
            return out;
        }
        // f64 bit-patterns behind atomics: blocks write disjoint rows, and
        // the atomic store keeps the fan-out free of unsafe aliasing (the
        // same idiom as the perturbation engine's response slots).
        let cells: Vec<AtomicU64> = (0..self.rows * out_cols)
            .map(|_| AtomicU64::new(0))
            .collect();
        let n_blocks = self.rows.div_ceil(ROW_BLOCK);
        pool.run(n_blocks, threads, &|b| {
            let start = b * ROW_BLOCK;
            let end = (start + ROW_BLOCK).min(self.rows);
            let mut buf = vec![0.0f64; out_cols];
            for i in start..end {
                buf.iter_mut().for_each(|x| *x = 0.0);
                fill_row(i, &mut buf);
                for (cell, &x) in cells[i * out_cols..(i + 1) * out_cols].iter().zip(&buf) {
                    cell.store(x.to_bits(), Ordering::Relaxed);
                }
            }
        });
        Matrix::from_vec(
            self.rows,
            out_cols,
            cells
                .into_iter()
                .map(|c| f64::from_bits(c.into_inner()))
                .collect(),
        )
    }

    /// Frobenius norm over stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SparseMatrix {
        // 3x4:  [1 0 2 0]
        //       [0 0 0 0]
        //       [0 3 0 4]
        SparseMatrix::from_triplets(
            3,
            4,
            vec![(2, 3, 4.0), (0, 0, 1.0), (2, 1, 3.0), (0, 2, 2.0)],
        )
    }

    #[test]
    fn triplet_order_does_not_matter() {
        let a = example();
        let b = SparseMatrix::from_triplets(
            3,
            4,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 3, 4.0)],
        );
        assert_eq!(a, b);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn duplicates_coalesce_and_zeros_drop() {
        let a = SparseMatrix::from_triplets(2, 2, vec![(0, 0, 1.5), (0, 0, 0.5), (1, 1, 0.0)]);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.nnz(), 1);
        // A pair summing to zero is dropped too.
        let b = SparseMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (0, 1, -1.0)]);
        assert_eq!(b.nnz(), 0);
    }

    #[test]
    fn dense_round_trip() {
        let a = example();
        let d = a.to_dense();
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(2, 3)], 4.0);
        assert_eq!(SparseMatrix::from_dense(&d), a);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a = example();
        let t = a.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.to_dense(), a.to_dense().transpose());
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let v = vec![1.0, -1.0, 0.5, 2.0];
        assert_eq!(a.matvec(&v), a.to_dense().matvec(&v));
    }

    #[test]
    fn matmul_dense_matches_dense_bitwise() {
        let a = example();
        let b = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j) as f64 * 0.37).sin());
        let sparse = a.matmul_dense(&b, 1);
        let dense = a.to_dense().matmul(&b);
        assert_eq!(sparse.rows(), dense.rows());
        for (x, y) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_thread_count_invariant() {
        // Big enough to cross the ROW_BLOCK threshold.
        let n = 3 * ROW_BLOCK + 7;
        let entries: Vec<(u32, u32, f64)> = (0..n)
            .flat_map(|i| {
                [
                    (i as u32, (i % 17) as u32, (i as f64 * 0.7).cos()),
                    (i as u32, ((i * 5) % 23) as u32, (i as f64 * 0.3).sin()),
                ]
            })
            .collect();
        let a = SparseMatrix::from_triplets(n, 23, entries);
        let b = Matrix::from_fn(23, 8, |i, j| ((i + 2 * j) as f64).cos());
        let serial = a.matmul_dense(&b, 1);
        let parallel = a.matmul_dense(&b, 4);
        for (x, y) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = SparseMatrix::from_triplets(3, 3, vec![]);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.matvec(&[1.0, 2.0, 3.0]), vec![0.0, 0.0, 0.0]);
        assert_eq!(a.frobenius_norm(), 0.0);
    }

    use propcheck::prelude::*;

    proptest! {
        #[test]
        fn blocked_matvec_matches_simple_bitwise(
            rows in 1usize..20,
            density in 1usize..6,
            seed in 0u64..500,
        ) {
            use em_rngs::{Rng, SeedableRng};
            let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
            // Wide enough to span several column blocks, sparse enough
            // that many rows contribute nothing to a given block.
            let cols = MATVEC_BLOCK_COLS * 2 + 37;
            let mut entries = Vec::new();
            for r in 0..rows {
                for _ in 0..density {
                    let c = rng.gen_range(0..cols as u32);
                    entries.push((r as u32, c, rng.gen_range(-10.0f64..10.0)));
                }
            }
            let a = SparseMatrix::from_triplets(rows, cols, entries);
            let v: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let simple = a.matvec_simple(&v);
            let blocked = a.matvec_blocked(&v);
            for (x, y) in simple.iter().zip(&blocked) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            // The public entry point routes wide matrices through the
            // blocked path without changing bits either.
            let public = a.matvec(&v);
            for (x, y) in simple.iter().zip(&public) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
