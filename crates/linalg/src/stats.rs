//! Descriptive statistics and rank correlations used by the evaluation
//! metrics (stability, agreement, significance summaries).

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (average of middle two for even lengths); 0.0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Linear-interpolation percentile, `p` in `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Pearson correlation coefficient; 0.0 when either side is constant.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= f64::EPSILON || vy <= f64::EPSILON {
        return 0.0;
    }
    (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
}

/// Fractional ranks (average rank for ties), 1-based.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap());
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on fractional ranks).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    pearson(&ranks(xs), &ranks(ys))
}

/// Kendall tau-b rank correlation, handling ties.
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "kendall_tau: length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            if dx == 0.0 && dy == 0.0 {
                // tied in both: contributes to neither
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_x) as f64) * ((n0 - ties_y) as f64)).sqrt();
    if denom <= 0.0 {
        return 0.0;
    }
    ((concordant - discordant) as f64 / denom).clamp(-1.0, 1.0)
}

/// Min-max normalisation into [0,1]; constant input maps to all 0.5.
pub fn min_max_normalize(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() <= f64::EPSILON {
        return vec![0.5; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / (hi - lo)).collect()
}

/// Softmax with max-subtraction for numerical stability.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    softmax_into(xs, &mut out);
    out
}

/// [`softmax`] into a caller-provided buffer (cleared first), for hot
/// loops that evaluate many distributions without reallocating.
/// Identical arithmetic and accumulation order to the allocating form,
/// so the two are bitwise-interchangeable. Delegates to the dispatched
/// kernel layer ([`crate::kernels::softmax_into`]), whose shared
/// four-lane max/sum policy makes the scalar and AVX2 backends
/// bitwise-identical.
pub fn softmax_into(xs: &[f64], out: &mut Vec<f64>) {
    crate::kernels::softmax_into(xs, out);
}

/// Two-sided paired sign test p-value: under H0 (no difference), the
/// number of positive differences among non-zero differences is
/// Binomial(n, 1/2). Returns 1.0 when all differences are zero.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sign_test(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sign_test: length mismatch");
    let mut pos = 0u32;
    let mut n = 0u32;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            pos += 1;
            n += 1;
        } else if x < y {
            n += 1;
        }
    }
    if n == 0 {
        return 1.0;
    }
    // Two-sided: 2 * P(X <= min(pos, n-pos)), capped at 1.
    let k = pos.min(n - pos);
    let mut cdf = 0.0;
    for i in 0..=k {
        cdf += binomial_pmf(n, i, 0.5);
    }
    (2.0 * cdf).min(1.0)
}

fn binomial_pmf(n: u32, k: u32, p: f64) -> f64 {
    // Log-space to survive n in the hundreds.
    let ln = |x: u32| -> f64 { (1..=x).map(|i| (i as f64).ln()).sum() };
    let log_c = ln(n) - ln(k) - ln(n - k);
    (log_c + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Percentile bootstrap confidence interval for the mean of paired
/// differences `a[i] − b[i]`. Deterministic for a given seed. Returns
/// `(lo, hi)` at the given confidence level (e.g. 0.95).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn paired_bootstrap_ci(
    a: &[f64],
    b: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> (f64, f64) {
    assert_eq!(a.len(), b.len(), "paired_bootstrap_ci: length mismatch");
    assert!(!a.is_empty(), "paired_bootstrap_ci: empty input");
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.0);
    use em_rngs::{Rng, SeedableRng};
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples.max(1) {
        let mut sum = 0.0;
        for _ in 0..diffs.len() {
            sum += diffs[rng.gen_range(0..diffs.len())];
        }
        means.push(sum / diffs.len() as f64);
    }
    let alpha = (1.0 - confidence) / 2.0;
    (
        percentile(&means, alpha * 100.0),
        percentile(&means, (1.0 - alpha) * 100.0),
    )
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 100.0), 10.0);
        assert_eq!(percentile(&xs, 50.0), 5.0);
        assert_eq!(percentile(&xs, 25.0), 2.5);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_known_values() {
        let x = [1.0, 2.0, 3.0];
        assert!((kendall_tau(&x, &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&x, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_normalize_bounds() {
        let v = min_max_normalize(&[5.0, 10.0, 7.5]);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 1.0);
        assert_eq!(v[2], 0.5);
        assert_eq!(min_max_normalize(&[3.0, 3.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        let q = softmax(&[0.0, 1.0, 2.0]);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(q[2] > q[1] && q[1] > q[0]);
    }

    #[test]
    fn sign_test_detects_consistent_difference() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b: Vec<f64> = a.iter().map(|x| x - 1.0).collect();
        let p = sign_test(&a, &b);
        assert!(p < 0.01, "consistent win should be significant, p = {p}");
    }

    #[test]
    fn sign_test_neutral_cases() {
        assert_eq!(sign_test(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 1.0, 4.0, 3.0]; // 2 wins, 2 losses
        let p = sign_test(&a, &b);
        assert!(p > 0.5, "balanced wins should be insignificant, p = {p}");
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=20).map(|k| binomial_pmf(20, k, 0.5)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((binomial_pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_ci_brackets_the_true_difference() {
        let a: Vec<f64> = (0..40).map(|i| 1.0 + 0.01 * i as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| 0.5 + 0.01 * i as f64).collect();
        let (lo, hi) = paired_bootstrap_ci(&a, &b, 0.95, 500, 7);
        assert!(lo <= 0.5 && 0.5 <= hi, "CI [{lo}, {hi}] must contain 0.5");
        assert!(
            lo > 0.4 && hi < 0.6,
            "CI [{lo}, {hi}] too wide for zero-variance diffs"
        );
    }

    #[test]
    fn bootstrap_ci_is_deterministic() {
        let a = [1.0, 2.0, 3.0, 2.5];
        let b = [0.5, 2.5, 2.0, 2.0];
        let x = paired_bootstrap_ci(&a, &b, 0.9, 200, 3);
        let y = paired_bootstrap_ci(&a, &b, 0.9, 200, 3);
        assert_eq!(x, y);
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(1000.0) <= 1.0);
    }
}
