//! Positive-definite solves and (weighted) ridge regression.
//!
//! The perturbation-based explainers all reduce to a weighted least-squares
//! fit of a local linear surrogate; ridge regularisation keeps the system
//! well conditioned even when a word never appears unmasked in the sample.

use crate::matrix::Matrix;
use crate::LinalgError;

/// Cholesky factorisation of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L` with `A = L L^T`.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite {
                        pivot: i,
                        value: sum,
                    });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solve `A x = b` for symmetric positive-definite `A` via Cholesky.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let l = cholesky(a)?;
    let n = a.rows();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    // Forward substitution: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Back substitution: L^T x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Ok(x)
}

/// Result of a ridge regression fit.
#[derive(Debug, Clone)]
pub struct RidgeFit {
    /// Coefficients for each feature column of the design matrix.
    pub coefficients: Vec<f64>,
    /// Intercept term (fit separately, not penalised).
    pub intercept: f64,
    /// Weighted coefficient of determination of the fit on the training data.
    pub r_squared: f64,
}

impl RidgeFit {
    /// Predict the response for a feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept + crate::matrix::dot(&self.coefficients, x)
    }
}

/// Weighted ridge regression with an unpenalised intercept.
///
/// Minimises `Σ w_i (y_i − b − x_i·β)² + λ ||β||²`. Sample weights must be
/// non-negative; rows with zero weight are ignored. This is exactly the
/// LIME-style surrogate solver used across the explainer implementations.
pub fn ridge_regression(
    x: &Matrix,
    y: &[f64],
    weights: &[f64],
    lambda: f64,
) -> Result<RidgeFit, LinalgError> {
    let n = x.rows();
    let p = x.cols();
    if y.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            got: y.len(),
        });
    }
    if weights.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            got: weights.len(),
        });
    }
    if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
        return Err(LinalgError::InvalidWeights);
    }
    if lambda < 0.0 {
        return Err(LinalgError::InvalidLambda(lambda));
    }
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return Err(LinalgError::InvalidWeights);
    }

    // Centre x and y by their weighted means; this makes the intercept
    // separable so it is not shrunk by the penalty.
    let mut xmean = vec![0.0; p];
    let mut ymean = 0.0;
    for i in 0..n {
        let w = weights[i] / wsum;
        ymean += w * y[i];
        for (m, &v) in xmean.iter_mut().zip(x.row(i)) {
            *m += w * v;
        }
    }
    let xc = Matrix::from_fn(n, p, |i, j| x[(i, j)] - xmean[j]);
    let yc: Vec<f64> = y.iter().map(|&v| v - ymean).collect();

    // Normal equations: (Xc^T W Xc + λI) β = Xc^T W yc
    let mut gram = xc.weighted_gram(weights);
    for i in 0..p {
        gram[(i, i)] += lambda;
    }
    let wy: Vec<f64> = yc.iter().zip(weights).map(|(v, w)| v * w).collect();
    let rhs = xc.tr_matvec(&wy);
    let beta = solve_spd(&gram, &rhs)?;

    let intercept = ymean - crate::matrix::dot(&beta, &xmean);

    // Weighted R².
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in 0..n {
        let pred = intercept + crate::matrix::dot(&beta, x.row(i));
        let w = weights[i];
        ss_res += w * (y[i] - pred) * (y[i] - pred);
        ss_tot += w * (y[i] - ymean) * (y[i] - ymean);
    }
    let r_squared = if ss_tot <= f64::EPSILON {
        // A constant response is perfectly described by the intercept.
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(-1.0, 1.0)
    };

    Ok(RidgeFit {
        coefficients: beta,
        intercept,
        r_squared,
    })
}

/// Ordinary (unweighted) ridge regression.
pub fn ridge(x: &Matrix, y: &[f64], lambda: f64) -> Result<RidgeFit, LinalgError> {
    let w = vec![1.0; x.rows()];
    ridge_regression(x, y, &w, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn cholesky_of_identity_is_identity() {
        let l = cholesky(&Matrix::identity(4)).unwrap();
        assert_eq!(l, Matrix::identity(4));
    }

    #[test]
    fn cholesky_known_factor() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        assert!(approx(l[(0, 0)], 2.0, 1e-12));
        assert!(approx(l[(1, 0)], 1.0, 1e-12));
        assert!(approx(l[(1, 1)], 2.0_f64.sqrt(), 1e-12));
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(cholesky(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!(approx(*xi, *ti, 1e-10));
        }
    }

    #[test]
    fn ridge_recovers_exact_linear_relation_with_tiny_lambda() {
        // y = 2 x0 - 3 x1 + 5
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ]);
        let y: Vec<f64> = (0..5)
            .map(|i| 2.0 * x[(i, 0)] - 3.0 * x[(i, 1)] + 5.0)
            .collect();
        let fit = ridge(&x, &y, 1e-9).unwrap();
        assert!(approx(fit.coefficients[0], 2.0, 1e-5));
        assert!(approx(fit.coefficients[1], -3.0, 1e-5));
        assert!(approx(fit.intercept, 5.0, 1e-5));
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let small = ridge(&x, &y, 1e-9).unwrap();
        let big = ridge(&x, &y, 1e6).unwrap();
        assert!(small.coefficients[0] > 0.99);
        assert!(big.coefficients[0].abs() < 0.01);
    }

    #[test]
    fn weighted_ridge_ignores_zero_weight_rows() {
        // Outlier at row 2 with zero weight must not affect the fit.
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![1.0], vec![2.0]]);
        let y = vec![0.0, 1.0, 100.0, 2.0];
        let w = vec![1.0, 1.0, 0.0, 1.0];
        let fit = ridge_regression(&x, &y, &w, 1e-9).unwrap();
        assert!(approx(fit.coefficients[0], 1.0, 1e-5));
        assert!(approx(fit.intercept, 0.0, 1e-5));
    }

    #[test]
    fn ridge_rejects_negative_weights_and_lambda() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let y = vec![0.0, 1.0];
        assert!(matches!(
            ridge_regression(&x, &y, &[1.0, -1.0], 0.1),
            Err(LinalgError::InvalidWeights)
        ));
        assert!(matches!(
            ridge_regression(&x, &y, &[1.0, 1.0], -0.1),
            Err(LinalgError::InvalidLambda(_))
        ));
    }

    #[test]
    fn ridge_constant_response_has_full_r_squared() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![4.0, 4.0, 4.0];
        let fit = ridge(&x, &y, 1.0).unwrap();
        assert!(approx(fit.intercept, 4.0, 1e-9));
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn ridge_dimension_mismatch_is_error() {
        let x = Matrix::zeros(3, 2);
        assert!(matches!(
            ridge(&x, &[1.0, 2.0], 0.1),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn ridge_prediction_matches_manual() {
        let fit = RidgeFit {
            coefficients: vec![2.0, -1.0],
            intercept: 0.5,
            r_squared: 1.0,
        };
        assert!(approx(fit.predict(&[1.0, 3.0]), -0.5, 1e-12));
    }
}
