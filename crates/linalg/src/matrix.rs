//! Dense row-major matrix with the small set of operations the explainer
//! stack needs: products, transposes, slicing and norms.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `f64` matrix.
///
/// The type is deliberately small: the CREW stack only needs dense kernels on
/// matrices of at most a few thousand rows (perturbation samples × words), so
/// a `Vec<f64>` backing store with explicit loops is simpler and fast enough.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Matrix { rows, cols, data }
    }

    /// Create a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: the innermost loop walks contiguous memory in both
        // `other` and `out`, which matters for the perturbation design
        // matrices (hundreds of rows). The zero-skip must stay: dropping it
        // would turn stored -0.0 outputs into +0.0 and break the bitwise
        // agreement with the sparse kernels.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                crate::kernels::axpy(a, other.row(k), out.row_mut(i));
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(v, &mut out);
        out
    }

    /// Matrix-vector product into a caller-provided buffer — the
    /// allocation-free core of [`Matrix::matvec`] (which is now a thin
    /// wrapper). `out` is cleared and refilled with one [`dot`] per row,
    /// so both entry points produce identical bits.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.cols, "vector length must equal cols");
        crate::kernels::matvec_into(self.rows, self.cols, &self.data, v, out);
    }

    /// `self^T * v` without materialising the transpose.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length must equal rows");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let w = v[i];
            if w == 0.0 {
                continue;
            }
            crate::kernels::axpy(w, self.row(i), &mut out);
        }
        out
    }

    /// Gram matrix `self^T * self`, exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                crate::kernels::axpy(a, &row[i..], &mut g.row_mut(i)[i..]);
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Weighted Gram matrix `self^T * diag(w) * self`.
    ///
    /// # Panics
    /// Panics if `w.len() != self.rows()`.
    pub fn weighted_gram(&self, w: &[f64]) -> Matrix {
        assert_eq!(w.len(), self.rows, "weight length must equal rows");
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let wr = w[r];
            if wr == 0.0 {
                continue;
            }
            let row = self.row(r);
            for i in 0..n {
                let a = wr * row[i];
                if a == 0.0 {
                    continue;
                }
                crate::kernels::axpy(a, &row[i..], &mut g.row_mut(i)[i..]);
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Elementwise scale in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Add `s * other` in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        crate::kernels::axpy(s, &other.data, &mut self.data);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// True if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices, in four accumulator lanes.
///
/// Accumulation-order policy (the workspace-wide contract; DESIGN.md
/// "Hot kernels"): lane `l` accumulates `Σ_k a[4k+l]·b[4k+l]`, the lanes
/// combine as `(s0+s2)+(s1+s3)`, and the `len % 4` tail is added
/// sequentially. This order is **fixed and deterministic** — the same
/// inputs give the same bits on every call, thread count, and kernel
/// backend (the AVX2 path maps vector lane `l` onto accumulator `s_l`;
/// see [`crate::kernels`]) — but it reassociates the sum relative to a
/// naive sequential loop, so results may differ from a textbook reference
/// by `O(n · ε · Σ|aᵢbᵢ|)` (the property suite pins this bound). Every
/// dot-shaped reduction in the workspace (matvec, cosine, logistic/MLP
/// forward passes, ridge) goes through this one kernel, so internal
/// bitwise contracts — batch ≡ scalar prediction, thread invariance,
/// store ≡ fresh — are unaffected by the reassociation.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    crate::kernels::dot(a, b)
}

/// Euclidean norm of a slice (inherits [`dot`]'s lane order).
#[inline]
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Cosine similarity; returns 0.0 when either vector has zero norm.
/// Built on the [`dot`] lane policy, so backend choice cannot change its
/// bits (the AVX2 path fuses the three reductions into one memory pass;
/// see [`crate::kernels::cosine`]).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    crate::kernels::cosine(a, b)
}

/// Squared Euclidean distance.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_is_zero() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_rows_round_trips_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = Matrix::from_rows(&[vec![1.0, -1.0, 2.0], vec![0.5, 0.0, 3.0]]);
        let v = vec![2.0, 1.0, -1.0];
        assert_eq!(m.matvec(&v), vec![-1.0, -2.0]);
    }

    #[test]
    fn tr_matvec_matches_transpose_matvec() {
        let m = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 * 0.5 - 1.0);
        let v = vec![1.0, -2.0, 0.5, 3.0];
        let a = m.tr_matvec(&v);
        let b = m.transpose().matvec(&v);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_is_symmetric_and_matches_explicit() {
        let m = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64).sin());
        let g = m.gram();
        let explicit = m.transpose().matmul(&m);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_gram_with_unit_weights_equals_gram() {
        let m = Matrix::from_fn(4, 3, |i, j| (i as f64 - j as f64) * 0.3);
        let g = m.gram();
        let wg = m.weighted_gram(&[1.0; 4]);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - wg[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_gram_zero_weight_drops_row() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![100.0, 100.0]]);
        let wg = m.weighted_gram(&[1.0, 0.0]);
        assert_eq!(wg[(0, 0)], 1.0);
        assert_eq!(wg[(0, 1)], 2.0);
        assert_eq!(wg[(1, 1)], 4.0);
    }

    #[test]
    fn cosine_basic_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 2.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.axpy(2.0, &b);
        a.scale(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }
}
