//! Runtime-dispatched SIMD reduction kernels.
//!
//! Every dot-shaped reduction in the workspace funnels into this module.
//! Two backends implement each kernel:
//!
//! - **Scalar** — the four-accumulator unrolled loops introduced with the
//!   interning pass (PR 7): lane `l` accumulates `Σ_k a[4k+l]·b[4k+l]`,
//!   lanes combine as `(s0+s2)+(s1+s3)`, and the `len % 4` tail is added
//!   sequentially.
//! - **Avx2** — the same loops expressed as AVX2 `f64x4` intrinsics. A
//!   `_mm256_add_pd(acc, _mm256_mul_pd(x, y))` step performs, per lane,
//!   exactly the scalar `s_l += a·b` (one IEEE multiply rounding, one IEEE
//!   add rounding), so vector lane `l` holds bit-for-bit the scalar
//!   accumulator `s_l` after every step. The horizontal combine stores the
//!   lanes and sums them in the documented `(s0+s2)+(s1+s3)` order, and
//!   tails run the identical sequential scalar loop.
//!
//! **FMA is deliberately not used.** A fused multiply-add rounds once
//! where mul-then-add rounds twice, which would change bits and break the
//! backend-equivalence contract; the whole point of the dispatch layer is
//! that backend choice can never change any artifact. The property suite
//! pins `scalar ≡ avx2` bitwise for every kernel, including all remainder
//! tail lengths.
//!
//! The backend is detected once at startup (`is_x86_feature_detected!`)
//! and can be forced with `EM_KERNEL=scalar|avx2` — useful for the CI
//! artifact-identity runs. An unknown value, or requesting `avx2` on a
//! machine without it, panics rather than silently falling back. In-process
//! tests use the `*_with(backend, …)` entry points instead of the env var
//! (env mutation is racy under the threaded test harness).

use std::sync::OnceLock;

/// The kernel implementation selected at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Four-accumulator unrolled scalar loops.
    Scalar,
    /// AVX2 `f64x4` intrinsics, bitwise-identical to [`KernelBackend::Scalar`].
    Avx2,
}

impl KernelBackend {
    /// Stable lowercase name (matches the `EM_KERNEL` values).
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
        }
    }
}

/// True when the running CPU supports AVX2.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

static BACKEND: OnceLock<KernelBackend> = OnceLock::new();

/// The backend every dispatched kernel uses, resolved once per process:
/// the `EM_KERNEL` override if set, else AVX2 when the CPU has it.
///
/// # Panics
/// Panics on an unknown `EM_KERNEL` value, or `EM_KERNEL=avx2` on a CPU
/// without AVX2 — a forced backend that silently degraded would defeat
/// the artifact-identity checks that force it.
#[inline]
pub fn active_backend() -> KernelBackend {
    if let Some(b) = BACKEND.get() {
        return *b;
    }
    init_backend()
}

#[cold]
fn init_backend() -> KernelBackend {
    *BACKEND.get_or_init(|| match std::env::var("EM_KERNEL") {
        Ok(v) if v == "scalar" => KernelBackend::Scalar,
        Ok(v) if v == "avx2" => {
            assert!(
                avx2_available(),
                "EM_KERNEL=avx2 requested but the CPU does not support AVX2"
            );
            KernelBackend::Avx2
        }
        Ok(v) => panic!("EM_KERNEL must be `scalar` or `avx2`, got `{v}`"),
        Err(_) => {
            if avx2_available() {
                KernelBackend::Avx2
            } else {
                KernelBackend::Scalar
            }
        }
    })
}

// ---------------------------------------------------------------------------
// dot
// ---------------------------------------------------------------------------

/// Dot product under the active backend (see module docs for the
/// accumulation-order policy both backends share).
///
/// # Panics
/// Panics if lengths differ.
/// Dispatch cutoff: reductions shorter than this skip backend dispatch
/// and run the inlined scalar core directly. Below ~a cache line of
/// lanes the detection load and outlined AVX2 call cost more than the
/// kernel itself (the workspace is full of length-4..48 strips — gram
/// columns, embedding rows, feature blocks). Value-neutral by
/// construction: the property suite pins scalar ≡ AVX2 bitwise, so
/// where the cutoff falls can never change a result.
const DISPATCH_MIN_LEN: usize = 64;

#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < DISPATCH_MIN_LEN {
        assert_eq!(a.len(), b.len(), "dot: length mismatch");
        return dot_scalar(a, b);
    }
    dot_with(active_backend(), a, b)
}

/// [`dot`] with an explicit backend (test/bench entry point).
///
/// # Panics
/// Panics if lengths differ, or on [`KernelBackend::Avx2`] without CPU
/// support.
#[inline]
pub fn dot_with(backend: KernelBackend, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    match backend {
        KernelBackend::Scalar => dot_scalar(a, b),
        // SAFETY: the Avx2 backend is only ever selected (or explicitly
        // requested) when `avx2_available()` holds; re-checked here so a
        // hand-constructed backend value cannot fault.
        KernelBackend::Avx2 => {
            assert!(
                avx2_available(),
                "AVX2 backend requested without CPU support"
            );
            unsafe { dot_avx2(a, b) }
        }
    }
}

#[inline]
fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (x, y) in (&mut ca).zip(&mut cb) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut sum = (s0 + s2) + (s1 + s3);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += x * y;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let chunks = a.len() / 4;
    let mut acc = _mm256_setzero_pd();
    for i in 0..chunks {
        let x = _mm256_loadu_pd(a.as_ptr().add(4 * i));
        let y = _mm256_loadu_pd(b.as_ptr().add(4 * i));
        // mul then add: two roundings per lane, same as the scalar path.
        acc = _mm256_add_pd(acc, _mm256_mul_pd(x, y));
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut sum = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for (x, y) in a[4 * chunks..].iter().zip(&b[4 * chunks..]) {
        sum += x * y;
    }
    sum
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    dot_scalar(a, b)
}

// ---------------------------------------------------------------------------
// cosine
// ---------------------------------------------------------------------------

/// Cosine similarity under the active backend; 0.0 when either vector has
/// zero norm. The AVX2 path fuses the three reductions (`a·b`, `a·a`,
/// `b·b`) into one memory pass; each of the three sums follows the exact
/// lane-and-tail sequence of a separate [`dot`] call, so the fusion is
/// bitwise-neutral.
#[inline]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < DISPATCH_MIN_LEN {
        return cosine_with(KernelBackend::Scalar, a, b);
    }
    cosine_with(active_backend(), a, b)
}

/// [`cosine`] with an explicit backend (test/bench entry point).
#[inline]
pub fn cosine_with(backend: KernelBackend, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch");
    match backend {
        KernelBackend::Scalar => {
            let na = dot_scalar(a, a).sqrt();
            let nb = dot_scalar(b, b).sqrt();
            if na == 0.0 || nb == 0.0 {
                return 0.0;
            }
            (dot_scalar(a, b) / (na * nb)).clamp(-1.0, 1.0)
        }
        KernelBackend::Avx2 => {
            assert!(
                avx2_available(),
                "AVX2 backend requested without CPU support"
            );
            unsafe { cosine_avx2(a, b) }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn cosine_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let chunks = a.len() / 4;
    let mut ab = _mm256_setzero_pd();
    let mut aa = _mm256_setzero_pd();
    let mut bb = _mm256_setzero_pd();
    for i in 0..chunks {
        let x = _mm256_loadu_pd(a.as_ptr().add(4 * i));
        let y = _mm256_loadu_pd(b.as_ptr().add(4 * i));
        ab = _mm256_add_pd(ab, _mm256_mul_pd(x, y));
        aa = _mm256_add_pd(aa, _mm256_mul_pd(x, x));
        bb = _mm256_add_pd(bb, _mm256_mul_pd(y, y));
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), ab);
    let mut dab = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    _mm256_storeu_pd(lanes.as_mut_ptr(), aa);
    let mut daa = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    _mm256_storeu_pd(lanes.as_mut_ptr(), bb);
    let mut dbb = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for (x, y) in a[4 * chunks..].iter().zip(&b[4 * chunks..]) {
        dab += x * y;
        daa += x * x;
        dbb += y * y;
    }
    let na = daa.sqrt();
    let nb = dbb.sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dab / (na * nb)).clamp(-1.0, 1.0)
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn cosine_avx2(a: &[f64], b: &[f64]) -> f64 {
    cosine_with(KernelBackend::Scalar, a, b)
}

// ---------------------------------------------------------------------------
// axpy
// ---------------------------------------------------------------------------

/// `y[i] += s * x[i]` over equal-length slices. Element-wise (no
/// reduction), so the two backends are trivially bitwise-identical: each
/// lane performs the same mul-then-add rounding as the scalar loop.
/// Every strip-accumulation loop in the workspace (dense `matmul`,
/// `tr_matvec`, Gram updates, sparse·dense tiles, attention context
/// vectors) routes through this one kernel.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn axpy(s: f64, x: &[f64], y: &mut [f64]) {
    if x.len() < DISPATCH_MIN_LEN {
        assert_eq!(x.len(), y.len(), "axpy: length mismatch");
        return axpy_scalar(s, x, y);
    }
    axpy_with(active_backend(), s, x, y)
}

/// [`axpy`] with an explicit backend (test/bench entry point).
#[inline]
pub fn axpy_with(backend: KernelBackend, s: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match backend {
        KernelBackend::Scalar => axpy_scalar(s, x, y),
        KernelBackend::Avx2 => {
            assert!(
                avx2_available(),
                "AVX2 backend requested without CPU support"
            );
            unsafe { axpy_avx2(s, x, y) }
        }
    }
}

#[inline]
fn axpy_scalar(s: f64, x: &[f64], y: &mut [f64]) {
    for (o, &v) in y.iter_mut().zip(x) {
        *o += s * v;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(s: f64, x: &[f64], y: &mut [f64]) {
    use std::arch::x86_64::*;
    let chunks = x.len() / 4;
    let vs = _mm256_set1_pd(s);
    for i in 0..chunks {
        let xv = _mm256_loadu_pd(x.as_ptr().add(4 * i));
        let yv = _mm256_loadu_pd(y.as_ptr().add(4 * i));
        _mm256_storeu_pd(
            y.as_mut_ptr().add(4 * i),
            _mm256_add_pd(yv, _mm256_mul_pd(vs, xv)),
        );
    }
    for (o, &v) in y[4 * chunks..].iter_mut().zip(&x[4 * chunks..]) {
        *o += s * v;
    }
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn axpy_avx2(s: f64, x: &[f64], y: &mut [f64]) {
    axpy_scalar(s, x, y)
}

// ---------------------------------------------------------------------------
// matvec_into
// ---------------------------------------------------------------------------

/// Row-major matrix·vector product into a caller buffer: `out` is cleared
/// and refilled with one [`dot`] per row. The backend is resolved once for
/// the whole matrix, so the per-row dots skip the dispatch check.
///
/// # Panics
/// Panics if `data.len() != rows * cols` or `v.len() != cols`.
#[inline]
pub fn matvec_into(rows: usize, cols: usize, data: &[f64], v: &[f64], out: &mut Vec<f64>) {
    let backend = if cols < DISPATCH_MIN_LEN {
        KernelBackend::Scalar
    } else {
        active_backend()
    };
    matvec_into_with(backend, rows, cols, data, v, out)
}

/// [`matvec_into`] with an explicit backend (test/bench entry point).
pub fn matvec_into_with(
    backend: KernelBackend,
    rows: usize,
    cols: usize,
    data: &[f64],
    v: &[f64],
    out: &mut Vec<f64>,
) {
    assert_eq!(data.len(), rows * cols, "matvec: data length mismatch");
    assert_eq!(v.len(), cols, "vector length must equal cols");
    out.clear();
    out.reserve(rows);
    match backend {
        KernelBackend::Scalar => {
            for i in 0..rows {
                out.push(dot_scalar(&data[i * cols..(i + 1) * cols], v));
            }
        }
        KernelBackend::Avx2 => {
            assert!(
                avx2_available(),
                "AVX2 backend requested without CPU support"
            );
            unsafe { matvec_into_avx2(rows, cols, data, v, out) }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matvec_into_avx2(rows: usize, cols: usize, data: &[f64], v: &[f64], out: &mut Vec<f64>) {
    for i in 0..rows {
        // Same-feature call: inlines into this function, no re-dispatch.
        out.push(dot_avx2(&data[i * cols..(i + 1) * cols], v));
    }
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn matvec_into_avx2(rows: usize, cols: usize, data: &[f64], v: &[f64], out: &mut Vec<f64>) {
    for i in 0..rows {
        out.push(dot_scalar(&data[i * cols..(i + 1) * cols], v));
    }
}

// ---------------------------------------------------------------------------
// softmax_into
// ---------------------------------------------------------------------------

/// Numerically-stable softmax into a caller buffer. Both backends share a
/// four-lane policy so they are bitwise-identical:
///
/// 1. **max** — lane `l` tracks `max` over `xs[4k+l]` by strict-`>`
///    selection (AVX2: `_CMP_GT_OQ` + blend, replicating the scalar
///    `if x > m { m = x }`, including its keep-on-NaN behaviour); the four
///    lane maxima are folded sequentially in lane order 0..3, then the
///    tail. Selection, not arithmetic, so a ±0.0 lane choice is
///    value-neutral in the `(x - max).exp()` shift that consumes it.
/// 2. **exp** — element-wise scalar `(x - max).exp()` in both backends
///    (`exp` is a libm call; vectorising it would change bits).
/// 3. **normalise** — the sum of exponentials uses [`dot`]'s four-lane
///    accumulation policy; the final divide is element-wise (one IEEE
///    divide per element in either backend).
///
/// Empty input clears `out` and returns.
#[inline]
pub fn softmax_into(xs: &[f64], out: &mut Vec<f64>) {
    if xs.len() < DISPATCH_MIN_LEN {
        return softmax_into_with(KernelBackend::Scalar, xs, out);
    }
    softmax_into_with(active_backend(), xs, out)
}

/// [`softmax_into`] with an explicit backend (test/bench entry point).
pub fn softmax_into_with(backend: KernelBackend, xs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if xs.is_empty() {
        return;
    }
    match backend {
        KernelBackend::Scalar => {
            let m = max4_scalar(xs);
            out.extend(xs.iter().map(|x| (x - m).exp()));
            let s = sum4_scalar(out);
            for e in out.iter_mut() {
                *e /= s;
            }
        }
        KernelBackend::Avx2 => {
            assert!(
                avx2_available(),
                "AVX2 backend requested without CPU support"
            );
            unsafe {
                let m = max4_avx2(xs);
                out.extend(xs.iter().map(|x| (x - m).exp()));
                let s = sum4_avx2(out);
                div_avx2(out, s);
            }
        }
    }
}

/// Four-lane maximum: lane `l` folds `xs[4k+l]` by strict-`>` selection,
/// lanes combine sequentially 0..3, tail appended sequentially.
#[inline]
fn max4_scalar(xs: &[f64]) -> f64 {
    let mut chunks = xs.chunks_exact(4);
    let mut m = [f64::NEG_INFINITY; 4];
    for x in &mut chunks {
        for l in 0..4 {
            if x[l] > m[l] {
                m[l] = x[l];
            }
        }
    }
    let mut best = f64::NEG_INFINITY;
    for &lane in &m {
        if lane > best {
            best = lane;
        }
    }
    for &x in chunks.remainder() {
        if x > best {
            best = x;
        }
    }
    best
}

/// Four-lane sum with [`dot`]'s combine order (`(s0+s2)+(s1+s3)` + tail).
#[inline]
fn sum4_scalar(xs: &[f64]) -> f64 {
    let mut chunks = xs.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for x in &mut chunks {
        s0 += x[0];
        s1 += x[1];
        s2 += x[2];
        s3 += x[3];
    }
    let mut sum = (s0 + s2) + (s1 + s3);
    for &x in chunks.remainder() {
        sum += x;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn max4_avx2(xs: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let chunks = xs.len() / 4;
    let mut m = _mm256_set1_pd(f64::NEG_INFINITY);
    for i in 0..chunks {
        let x = _mm256_loadu_pd(xs.as_ptr().add(4 * i));
        // Strict-greater selection (not `_mm256_max_pd`, whose NaN and
        // ±0.0 choices differ from the scalar `if x > m`): where x > m,
        // take x; on NaN the compare is false and m is kept.
        let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(x, m);
        m = _mm256_blendv_pd(m, x, gt);
    }
    let mut lanes = [f64::NEG_INFINITY; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), m);
    let mut best = f64::NEG_INFINITY;
    for &lane in &lanes {
        if lane > best {
            best = lane;
        }
    }
    for &x in &xs[4 * chunks..] {
        if x > best {
            best = x;
        }
    }
    best
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum4_avx2(xs: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let chunks = xs.len() / 4;
    let mut acc = _mm256_setzero_pd();
    for i in 0..chunks {
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(xs.as_ptr().add(4 * i)));
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut sum = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for &x in &xs[4 * chunks..] {
        sum += x;
    }
    sum
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn div_avx2(xs: &mut [f64], s: f64) {
    use std::arch::x86_64::*;
    let chunks = xs.len() / 4;
    let vs = _mm256_set1_pd(s);
    for i in 0..chunks {
        let x = _mm256_loadu_pd(xs.as_ptr().add(4 * i));
        // IEEE divide is exact per lane: same bits as the scalar `/`.
        _mm256_storeu_pd(xs.as_mut_ptr().add(4 * i), _mm256_div_pd(x, vs));
    }
    for x in &mut xs[4 * chunks..] {
        *x /= s;
    }
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn max4_avx2(xs: &[f64]) -> f64 {
    max4_scalar(xs)
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn sum4_avx2(xs: &[f64]) -> f64 {
    sum4_scalar(xs)
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn div_avx2(xs: &mut [f64], s: f64) {
    for x in xs.iter_mut() {
        *x /= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Avx2.name(), "avx2");
    }

    #[test]
    fn active_backend_is_stable() {
        // Whatever is detected, repeated calls agree (OnceLock).
        assert_eq!(active_backend(), active_backend());
    }

    #[test]
    fn scalar_dot_matches_documented_policy() {
        // 5 elements: one full chunk + tail of 1.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.5, 0.25, -1.0, 2.0, -0.5];
        let expect: f64 = ((1.0 * 0.5 + 3.0 * -1.0) + (2.0 * 0.25 + 4.0 * 2.0)) + 5.0 * -0.5;
        assert_eq!(
            dot_with(KernelBackend::Scalar, &a, &b).to_bits(),
            expect.to_bits()
        );
    }

    #[test]
    fn softmax_handles_empty_and_singleton() {
        let mut out = vec![f64::NAN; 3];
        softmax_into_with(KernelBackend::Scalar, &[], &mut out);
        assert!(out.is_empty());
        softmax_into_with(KernelBackend::Scalar, &[42.0], &mut out);
        assert_eq!(out, vec![1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use propcheck::prelude::*;

    /// Vectors long enough to exercise full chunks plus every tail length
    /// 0..8 (the strategy range spans 0..=24 elements).
    fn kernel_vec() -> impl Strategy<Value = Vec<f64>> {
        propcheck::collection::vec(-1000.0f64..1000.0, 0..25)
    }

    proptest! {
        #[test]
        fn dot_scalar_equals_avx2_bitwise(a in kernel_vec(), b in kernel_vec()) {
            prop_assume!(avx2_available());
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let s = dot_with(KernelBackend::Scalar, a, b);
            let v = dot_with(KernelBackend::Avx2, a, b);
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }

        #[test]
        fn cosine_scalar_equals_avx2_bitwise(a in kernel_vec(), b in kernel_vec()) {
            prop_assume!(avx2_available());
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let s = cosine_with(KernelBackend::Scalar, a, b);
            let v = cosine_with(KernelBackend::Avx2, a, b);
            prop_assert_eq!(s.to_bits(), v.to_bits());
        }

        #[test]
        fn axpy_scalar_equals_avx2_bitwise(
            s in -100.0f64..100.0,
            x in kernel_vec(),
            y in kernel_vec(),
        ) {
            prop_assume!(avx2_available());
            let n = x.len().min(y.len());
            let (x, y0) = (&x[..n], &y[..n]);
            let mut ys = y0.to_vec();
            let mut yv = y0.to_vec();
            axpy_with(KernelBackend::Scalar, s, x, &mut ys);
            axpy_with(KernelBackend::Avx2, s, x, &mut yv);
            for (a, b) in ys.iter().zip(&yv) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn matvec_scalar_equals_avx2_bitwise(
            rows in 0usize..6,
            cols in 0usize..11,
            seed in 0u64..1000,
        ) {
            prop_assume!(avx2_available());
            use em_rngs::{Rng, SeedableRng};
            let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
            let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let v: Vec<f64> = (0..cols).map(|_| rng.gen_range(-10.0..10.0)).collect();
            // Dirty buffers must be fully overwritten by both backends.
            let mut os = vec![f64::NAN; 2];
            let mut ov = vec![f64::NAN; 5];
            matvec_into_with(KernelBackend::Scalar, rows, cols, &data, &v, &mut os);
            matvec_into_with(KernelBackend::Avx2, rows, cols, &data, &v, &mut ov);
            prop_assert_eq!(os.len(), rows);
            prop_assert_eq!(ov.len(), rows);
            for (a, b) in os.iter().zip(&ov) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn softmax_scalar_equals_avx2_bitwise(xs in kernel_vec()) {
            prop_assume!(avx2_available());
            let mut os = vec![f64::NAN; 1];
            let mut ov = vec![f64::NAN; 7];
            softmax_into_with(KernelBackend::Scalar, &xs, &mut os);
            softmax_into_with(KernelBackend::Avx2, &xs, &mut ov);
            prop_assert_eq!(os.len(), xs.len());
            prop_assert_eq!(ov.len(), xs.len());
            for (a, b) in os.iter().zip(&ov) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn every_tail_length_is_covered_exactly(tail in 0usize..8, seed in 0u64..500) {
            prop_assume!(avx2_available());
            use em_rngs::{Rng, SeedableRng};
            let mut rng = em_rngs::rngs::StdRng::seed_from_u64(seed);
            // Two full chunks plus the exact tail under test.
            let n = 8 + tail;
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
            let s = dot_with(KernelBackend::Scalar, &a, &b);
            let v = dot_with(KernelBackend::Avx2, &a, &b);
            prop_assert_eq!(s.to_bits(), v.to_bits());
            let cs = cosine_with(KernelBackend::Scalar, &a, &b);
            let cv = cosine_with(KernelBackend::Avx2, &a, &b);
            prop_assert_eq!(cs.to_bits(), cv.to_bits());
        }
    }
}
