//! LEMON (Jørgensen et al.): LIME for EM with three fixes — dual (per-side)
//! explanations, *attribution potential*, and counterfactual-aware weights.
//!
//! Attribution potential answers the non-match problem: a token with zero
//! drop-attribution may still be decisive, because *injecting* its copy
//! into the other record would raise the match score. LEMON reports
//! `weight + potential` so such tokens surface. Our reconstruction keeps
//! exactly that structure: Landmark-style per-side drop surrogates plus a
//! per-token counterfactual injection probe.

use crew_core::{
    fit_word_surrogate, query_masks, query_pairs, words_of, Explainer, PerturbationSet,
    SurrogateOptions, WordExplanation,
};
use em_data::{EntityPair, Side, TokenizedPair};
use em_matchers::Matcher;
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};

/// LEMON configuration.
#[derive(Debug, Clone, Copy)]
pub struct LemonOptions {
    /// Drop-perturbation samples per side.
    pub samples_per_side: usize,
    pub kernel_width: f64,
    pub lambda: f64,
    pub seed: u64,
    /// Weight of the attribution-potential term in the final score.
    pub potential_weight: f64,
    /// Worker threads for model queries (1 = sequential).
    pub threads: usize,
}

impl Default for LemonOptions {
    fn default() -> Self {
        LemonOptions {
            samples_per_side: 128,
            kernel_width: 0.75,
            lambda: 1e-3,
            seed: 0x1e304,
            potential_weight: 0.5,
            threads: 1,
        }
    }
}

/// The LEMON explainer.
pub struct Lemon {
    options: LemonOptions,
}

impl Lemon {
    pub fn new(options: LemonOptions) -> Self {
        Lemon { options }
    }

    /// Dual drop-explanation of one side (other side fixed).
    fn side_drop_weights(
        &self,
        matcher: &dyn Matcher,
        tokenized: &TokenizedPair,
        side: Side,
    ) -> Result<(Vec<usize>, Vec<f64>, f64), crew_core::ExplainError> {
        let side_indices = tokenized.side_indices(side);
        if side_indices.is_empty() {
            return Ok((side_indices, Vec::new(), 1.0));
        }
        let n_total = tokenized.len();
        let m = side_indices.len();
        let mut rng = StdRng::seed_from_u64(self.options.seed ^ (0x51de << (side as u64)));
        let mut masks: Vec<Vec<bool>> = vec![vec![true; n_total]];
        for _ in 0..self.options.samples_per_side {
            let mut mask = vec![true; n_total];
            let n_drop = rng.gen_range(1..=m.max(2) - 1).max(1);
            let mut order = side_indices.clone();
            for i in 0..n_drop.min(m.saturating_sub(1)) {
                let j = rng.gen_range(i..m);
                order.swap(i, j);
            }
            for &i in order.iter().take(n_drop) {
                mask[i] = false;
            }
            masks.push(mask);
        }
        let responses = query_masks(tokenized, &masks, matcher, self.options.threads);
        let sub_masks: Vec<Vec<bool>> = masks
            .iter()
            .map(|mask| side_indices.iter().map(|&i| mask[i]).collect())
            .collect();
        let kept_fraction: Vec<f64> = sub_masks
            .iter()
            .map(|sm| sm.iter().filter(|&&b| b).count() as f64 / m as f64)
            .collect();
        let set = PerturbationSet {
            masks: sub_masks,
            responses,
            kept_fraction,
        };
        let fit = fit_word_surrogate(
            &set,
            &SurrogateOptions {
                kernel_width: self.options.kernel_width,
                lambda: self.options.lambda,
            },
        )?;
        Ok((side_indices, fit.weights, fit.r_squared))
    }

    /// Attribution potential of every token: Δscore from injecting a copy
    /// of the token into the other record's aligned attribute.
    fn attribution_potential(
        &self,
        matcher: &dyn Matcher,
        tokenized: &TokenizedPair,
        base: f64,
    ) -> Vec<f64> {
        let full_mask = vec![true; tokenized.len()];
        let pairs: Vec<EntityPair> = tokenized
            .words()
            .iter()
            .map(|w| {
                tokenized.apply_mask_with_injections(
                    &full_mask,
                    &[(w.side.other(), w.attribute, w.text.clone())],
                )
            })
            .collect();
        query_pairs(&pairs, matcher, self.options.threads)
            .into_iter()
            .map(|p| (p - base).max(0.0))
            .collect()
    }
}

impl Default for Lemon {
    fn default() -> Self {
        Lemon::new(LemonOptions::default())
    }
}

impl Explainer for Lemon {
    fn name(&self) -> &str {
        "lemon"
    }

    fn explain(
        &self,
        matcher: &dyn Matcher,
        pair: &EntityPair,
    ) -> Result<WordExplanation, crew_core::ExplainError> {
        let tokenized = TokenizedPair::new(pair.clone());
        if tokenized.is_empty() {
            return Err(crew_core::ExplainError::EmptyPair);
        }
        let base = matcher.predict_proba(pair);
        let (li, lw, lr2) = self.side_drop_weights(matcher, &tokenized, Side::Left)?;
        let (ri, rw, rr2) = self.side_drop_weights(matcher, &tokenized, Side::Right)?;
        let mut weights = vec![0.0; tokenized.len()];
        for (&i, &w) in li.iter().zip(&lw) {
            weights[i] = w;
        }
        for (&i, &w) in ri.iter().zip(&rw) {
            weights[i] = w;
        }
        // Potential only matters where a token is *not already* matched; on
        // confident matches injection has little headroom, which the max(0)
        // + additive form handles naturally.
        let potential = self.attribution_potential(matcher, &tokenized, base);
        for (w, p) in weights.iter_mut().zip(&potential) {
            *w += self.options.potential_weight * p;
        }
        Ok(WordExplanation {
            explainer: "lemon".to_string(),
            words: words_of(&tokenized),
            weights,
            base_score: base,
            intercept: 0.0,
            surrogate_r2: 0.5 * (lr2 + rr2),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{magic_matcher, magic_pair};
    use em_data::{Record, Schema};
    use std::sync::Arc;

    #[test]
    fn lemon_finds_planted_evidence() {
        let lemon = Lemon::new(LemonOptions {
            samples_per_side: 300,
            ..Default::default()
        });
        let expl = lemon.explain(&magic_matcher(), &magic_pair()).unwrap();
        let ranked = expl.ranked_indices();
        assert!(
            ranked[..2].contains(&0) && ranked[..2].contains(&3),
            "{ranked:?}"
        );
    }

    #[test]
    fn potential_surfaces_decisive_tokens_on_non_matches() {
        // "magic" exists only on the left; drop-based weights are flat
        // because the pair scores 0.1 regardless. The potential term must
        // single out the left "magic".
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = em_data::EntityPair::new(
            schema,
            Record::new(0, vec!["magic alpha beta".into()]),
            Record::new(1, vec!["gamma delta".into()]),
        )
        .unwrap();
        let lemon = Lemon::default();
        let expl = lemon.explain(&magic_matcher(), &pair).unwrap();
        assert_eq!(expl.words[0].text, "magic");
        assert_eq!(expl.ranked_indices()[0], 0, "weights: {:?}", expl.weights);
        // Potential contribution: injecting magic flips 0.1 → 0.9; weighted
        // by 0.5 → at least 0.4.
        assert!(expl.weights[0] >= 0.35);
    }

    #[test]
    fn potential_is_nonnegative() {
        let lemon = Lemon::default();
        let tokenized = TokenizedPair::new(magic_pair());
        let pot = lemon.attribution_potential(&magic_matcher(), &tokenized, 0.9);
        assert!(pot.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn lemon_is_deterministic() {
        let lemon = Lemon::default();
        let a = lemon.explain(&magic_matcher(), &magic_pair()).unwrap();
        let b = lemon.explain(&magic_matcher(), &magic_pair()).unwrap();
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn zero_potential_weight_reduces_to_dual_drop() {
        let with = Lemon::new(LemonOptions {
            potential_weight: 0.0,
            ..Default::default()
        });
        let expl = with.explain(&magic_matcher(), &magic_pair()).unwrap();
        // Still finds the planted words via drop surrogates.
        let ranked = expl.ranked_indices();
        assert!(ranked[..2].contains(&0) && ranked[..2].contains(&3));
    }
}
