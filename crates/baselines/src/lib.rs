//! # em-baselines
//!
//! From-scratch Rust reimplementations of the five explanation baselines
//! the CREW paper compares against:
//!
//! - [`Lime`] — schema-agnostic LIME-for-text;
//! - [`Mojito`] — LIME with EM-aware DROP/COPY perturbations;
//! - [`Landmark`] — per-record explanations against the other record as a
//!   fixed landmark, with injection augmentation for non-matches;
//! - [`Lemon`] — dual explanations + attribution potential;
//! - [`Certa`] — counterfactual attribute saliency from record
//!   substitutions;
//! - [`Wym`] *(extension)* — decision-unit explanations in the style of the
//!   authors' WYM system (cross-record term pairs as features).
//!
//! All share the `crew-core` perturbation/surrogate substrate and implement
//! [`crew_core::Explainer`], so score differences in the evaluation
//! reflect the algorithms rather than implementation plumbing.

// Index-based loops are kept where they mirror the textbook formulation
// of the numeric kernels; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
pub mod certa;
pub mod landmark;
pub mod lemon;
pub mod lime;
pub mod mojito;
pub mod wym;

pub use certa::{Certa, CertaOptions};
pub use landmark::{Landmark, LandmarkOptions};
pub use lemon::{Lemon, LemonOptions};
pub use lime::{Lime, LimeOptions};
pub use mojito::{Mojito, MojitoMode, MojitoOptions};
pub use wym::{DecisionUnit, Wym, WymOptions};

#[cfg(test)]
pub(crate) mod testutil {
    use em_data::{EntityPair, Record, Schema};
    use em_matchers::Matcher;
    use std::sync::Arc;

    /// Matcher with a planted ground truth: 0.9 iff "magic" appears on both
    /// sides, else 0.1.
    pub struct MagicMatcher;

    impl Matcher for MagicMatcher {
        fn name(&self) -> &str {
            "magic"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            let l = em_text::tokenize(&pair.left().full_text());
            let r = em_text::tokenize(&pair.right().full_text());
            if l.iter().any(|t| t == "magic") && r.iter().any(|t| t == "magic") {
                0.9
            } else {
                0.1
            }
        }
    }

    pub fn magic_matcher() -> MagicMatcher {
        MagicMatcher
    }

    /// One-attribute pair with "magic" on both sides plus filler:
    /// words are [magic alpha beta | magic gamma delta].
    pub fn magic_pair() -> EntityPair {
        let schema = Arc::new(Schema::new(vec!["t"]));
        EntityPair::new(
            schema,
            Record::new(0, vec!["magic alpha beta".into()]),
            Record::new(1, vec!["magic gamma delta".into()]),
        )
        .unwrap()
    }
}

#[cfg(test)]
mod contract_tests {
    //! Every baseline must satisfy the Explainer contract: weights aligned
    //! with TokenizedPair order, finite values, deterministic output.
    use super::testutil::{magic_matcher, magic_pair};
    use crew_core::Explainer;
    use em_data::TokenizedPair;

    fn all_explainers() -> Vec<Box<dyn Explainer>> {
        vec![
            Box::new(super::Lime::default()),
            Box::new(super::Mojito::default()),
            Box::new(super::Landmark::default()),
            Box::new(super::Lemon::default()),
            Box::new(
                super::Certa::new(
                    vec![
                        em_data::Record::new(900, vec!["spare text".into()]),
                        em_data::Record::new(901, vec!["donor words".into()]),
                    ],
                    super::CertaOptions::default(),
                )
                .unwrap(),
            ),
        ]
    }

    #[test]
    fn weights_align_with_tokenized_pair() {
        let pair = magic_pair();
        let n = TokenizedPair::new(pair.clone()).len();
        for explainer in all_explainers() {
            let expl = explainer.explain(&magic_matcher(), &pair).unwrap();
            assert_eq!(expl.words.len(), n, "{}", explainer.name());
            assert_eq!(expl.weights.len(), n, "{}", explainer.name());
            assert!(
                expl.weights.iter().all(|w| w.is_finite()),
                "{} produced non-finite weights",
                explainer.name()
            );
            assert!(
                (0.0..=1.0).contains(&expl.base_score),
                "{}",
                explainer.name()
            );
        }
    }

    #[test]
    fn explainers_are_deterministic() {
        let pair = magic_pair();
        for explainer in all_explainers() {
            let a = explainer.explain(&magic_matcher(), &pair).unwrap();
            let b = explainer.explain(&magic_matcher(), &pair).unwrap();
            assert_eq!(a.weights, b.weights, "{}", explainer.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<String> = all_explainers()
            .iter()
            .map(|e| e.name().to_string())
            .collect();
        assert_eq!(names.len(), 5);
    }
}
