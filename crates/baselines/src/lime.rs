//! Plain LIME-for-text applied to EM pairs: the two entity descriptions are
//! treated as one document of words, perturbed with uniform drop counts, and
//! a weighted ridge surrogate yields per-word attributions. This is the
//! schema-agnostic baseline every EM-aware explainer improves on.

use crew_core::{
    estimate_word_importance, Explainer, MaskStrategy, PerturbOptions, SurrogateOptions,
    WordExplanation,
};
use em_data::{EntityPair, TokenizedPair};
use em_matchers::Matcher;

/// LIME configuration.
#[derive(Debug, Clone, Copy)]
pub struct LimeOptions {
    pub samples: usize,
    pub kernel_width: f64,
    pub lambda: f64,
    pub seed: u64,
    pub threads: usize,
}

impl Default for LimeOptions {
    fn default() -> Self {
        LimeOptions {
            samples: 256,
            kernel_width: 0.75,
            lambda: 1e-3,
            seed: 0x11e,
            threads: 1,
        }
    }
}

/// The LIME baseline explainer.
pub struct Lime {
    options: LimeOptions,
}

impl Lime {
    pub fn new(options: LimeOptions) -> Self {
        Lime { options }
    }
}

impl Default for Lime {
    fn default() -> Self {
        Lime::new(LimeOptions::default())
    }
}

impl Explainer for Lime {
    fn name(&self) -> &str {
        "lime"
    }

    fn explain(
        &self,
        matcher: &dyn Matcher,
        pair: &EntityPair,
    ) -> Result<WordExplanation, crew_core::ExplainError> {
        let tokenized = TokenizedPair::new(pair.clone());
        estimate_word_importance(
            &tokenized,
            matcher,
            &PerturbOptions {
                samples: self.options.samples,
                strategy: MaskStrategy::UniformCount,
                seed: self.options.seed,
                threads: self.options.threads,
            },
            &SurrogateOptions {
                kernel_width: self.options.kernel_width,
                lambda: self.options.lambda,
            },
            "lime",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{magic_matcher, magic_pair};

    #[test]
    fn lime_finds_planted_evidence() {
        let lime = Lime::new(LimeOptions {
            samples: 400,
            ..Default::default()
        });
        let expl = lime.explain(&magic_matcher(), &magic_pair()).unwrap();
        let ranked = expl.ranked_indices();
        // The two "magic" tokens are indices 0 (left) and 3 (right).
        assert!(
            ranked[..2].contains(&0) && ranked[..2].contains(&3),
            "{ranked:?}"
        );
        assert_eq!(expl.explainer, "lime");
        assert!(expl.surrogate_r2 > 0.5);
    }

    #[test]
    fn lime_is_deterministic() {
        let lime = Lime::default();
        let a = lime.explain(&magic_matcher(), &magic_pair()).unwrap();
        let b = lime.explain(&magic_matcher(), &magic_pair()).unwrap();
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn different_seeds_vary_but_agree_on_top() {
        let a = Lime::new(LimeOptions {
            seed: 1,
            samples: 400,
            ..Default::default()
        })
        .explain(&magic_matcher(), &magic_pair())
        .unwrap();
        let b = Lime::new(LimeOptions {
            seed: 2,
            samples: 400,
            ..Default::default()
        })
        .explain(&magic_matcher(), &magic_pair())
        .unwrap();
        assert_ne!(a.weights, b.weights);
        let top = |e: &WordExplanation| {
            let mut t = e.ranked_indices()[..2].to_vec();
            t.sort_unstable();
            t
        };
        assert_eq!(top(&a), top(&b));
    }
}
