//! WYM-style decision units (Baraldi et al., "Why do You Match?") —
//! an *extension* baseline from the CREW authors' own lineage, not among
//! the five systems the abstract compares against.
//!
//! WYM's idea: instead of independent words, the natural feature space of
//! an EM pair is the set of **decision units** — pairs of similar terms,
//! one from each record, plus the left-over unique terms. We reproduce the
//! mechanism post-hoc: build decision units by greedy cross-record token
//! alignment, perturb at unit granularity (dropping a unit removes both of
//! its words), fit the shared ridge surrogate over unit indicators, and
//! emit word weights by distributing each unit's weight to its members.

use crew_core::{
    fit_word_surrogate, query_masks, words_of, Explainer, PerturbationSet, SurrogateOptions,
    WordExplanation,
};
use em_data::{EntityPair, Side, TokenizedPair};
use em_matchers::Matcher;
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};

/// One decision unit: a cross-record pair of similar words, or a single
/// unpaired word.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionUnit {
    /// Word indices (1 for unique terms, 2 for paired terms).
    pub member_indices: Vec<usize>,
    /// Similarity of the paired terms (1.0 for unique terms).
    pub similarity: f64,
}

/// WYM configuration.
#[derive(Debug, Clone, Copy)]
pub struct WymOptions {
    /// Minimum Jaro-Winkler similarity for two cross-record words of the
    /// same attribute to form a paired unit.
    pub pair_threshold: f64,
    /// Perturbation samples over units.
    pub samples: usize,
    pub kernel_width: f64,
    pub lambda: f64,
    pub seed: u64,
    /// Worker threads for model queries (1 = sequential).
    pub threads: usize,
}

impl Default for WymOptions {
    fn default() -> Self {
        WymOptions {
            pair_threshold: 0.85,
            samples: 256,
            kernel_width: 0.75,
            lambda: 1e-3,
            seed: 0x3713,
            threads: 1,
        }
    }
}

/// The WYM-style explainer.
pub struct Wym {
    options: WymOptions,
}

impl Wym {
    pub fn new(options: WymOptions) -> Self {
        Wym { options }
    }

    /// Build decision units for a tokenized pair: greedy best-first
    /// matching of left words to right words within the same attribute,
    /// above the similarity threshold; everything unpaired becomes a
    /// singleton unit.
    pub fn decision_units(&self, tokenized: &TokenizedPair) -> Vec<DecisionUnit> {
        let words = tokenized.words();
        let left: Vec<usize> = tokenized.side_indices(Side::Left);
        let right: Vec<usize> = tokenized.side_indices(Side::Right);
        // Candidate cross-record pairs with similarity, same attribute only.
        let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
        for &l in &left {
            for &r in &right {
                if words[l].attribute != words[r].attribute {
                    continue;
                }
                let sim = em_text::jaro_winkler(&words[l].text, &words[r].text);
                if sim >= self.options.pair_threshold {
                    candidates.push((sim, l, r));
                }
            }
        }
        // Greedy best-first (stable for ties by indices).
        candidates.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap()
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        let mut used = vec![false; words.len()];
        let mut units = Vec::new();
        for (sim, l, r) in candidates {
            if used[l] || used[r] {
                continue;
            }
            used[l] = true;
            used[r] = true;
            units.push(DecisionUnit {
                member_indices: vec![l, r],
                similarity: sim,
            });
        }
        for (i, u) in used.iter().enumerate() {
            if !u {
                units.push(DecisionUnit {
                    member_indices: vec![i],
                    similarity: 1.0,
                });
            }
        }
        // Deterministic order: by first member index.
        units.sort_by_key(|u| u.member_indices[0]);
        units
    }
}

impl Default for Wym {
    fn default() -> Self {
        Wym::new(WymOptions::default())
    }
}

impl Explainer for Wym {
    fn name(&self) -> &str {
        "wym"
    }

    fn explain(
        &self,
        matcher: &dyn Matcher,
        pair: &EntityPair,
    ) -> Result<WordExplanation, crew_core::ExplainError> {
        let tokenized = TokenizedPair::new(pair.clone());
        let n = tokenized.len();
        if n == 0 {
            return Err(crew_core::ExplainError::EmptyPair);
        }
        if self.options.samples == 0 {
            return Err(crew_core::ExplainError::NoSamples);
        }
        let units = self.decision_units(&tokenized);
        let m = units.len();

        // Sample unit-level masks; expand to word masks for the queries.
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let mut unit_masks: Vec<Vec<bool>> = vec![vec![true; m]];
        for _ in 0..self.options.samples {
            let n_drop = rng.gen_range(1..=m.max(2) - 1).max(1);
            let mut order: Vec<usize> = (0..m).collect();
            for i in 0..n_drop.min(m.saturating_sub(1)) {
                let j = rng.gen_range(i..m);
                order.swap(i, j);
            }
            let mut mask = vec![true; m];
            for &u in order.iter().take(n_drop) {
                mask[u] = false;
            }
            unit_masks.push(mask);
        }
        // Expand unit masks to word masks, then query through the shared
        // engine (dedup + buffered rebuild + batched prediction).
        let word_masks: Vec<Vec<bool>> = unit_masks
            .iter()
            .map(|um| {
                let mut word_mask = vec![true; n];
                for (u, &keep) in um.iter().enumerate() {
                    if !keep {
                        for &w in &units[u].member_indices {
                            word_mask[w] = false;
                        }
                    }
                }
                word_mask
            })
            .collect();
        let responses = query_masks(&tokenized, &word_masks, matcher, self.options.threads);
        let kept_fraction: Vec<f64> = unit_masks
            .iter()
            .map(|um| um.iter().filter(|&&b| b).count() as f64 / m as f64)
            .collect();
        let set = PerturbationSet {
            masks: unit_masks,
            responses,
            kept_fraction,
        };
        let fit = fit_word_surrogate(
            &set,
            &SurrogateOptions {
                kernel_width: self.options.kernel_width,
                lambda: self.options.lambda,
            },
        )?;
        // Unit weight → member words (split evenly, like CREW's word view).
        let mut weights = vec![0.0; n];
        for (u, unit) in units.iter().enumerate() {
            let share = fit.weights[u] / unit.member_indices.len() as f64;
            for &w in &unit.member_indices {
                weights[w] = share;
            }
        }
        Ok(WordExplanation {
            explainer: "wym".to_string(),
            words: words_of(&tokenized),
            weights,
            base_score: set.responses[0],
            intercept: fit.intercept,
            surrogate_r2: fit.r_squared,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{magic_matcher, magic_pair};
    use em_data::{Record, Schema};
    use std::sync::Arc;

    #[test]
    fn decision_units_pair_identical_cross_record_words() {
        let tokenized = TokenizedPair::new(magic_pair());
        let wym = Wym::default();
        let units = wym.decision_units(&tokenized);
        // "magic" (0) pairs with "magic" (3); the four fillers are singletons.
        let paired: Vec<&DecisionUnit> = units
            .iter()
            .filter(|u| u.member_indices.len() == 2)
            .collect();
        assert_eq!(paired.len(), 1);
        assert_eq!(paired[0].member_indices, vec![0, 3]);
        assert_eq!(paired[0].similarity, 1.0);
        assert_eq!(units.len(), 5); // 1 pair + 4 singletons
    }

    #[test]
    fn decision_units_respect_attribute_boundaries() {
        let schema = Arc::new(Schema::new(vec!["a", "b"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["token".into(), "".into()]),
            Record::new(1, vec!["".into(), "token".into()]),
        )
        .unwrap();
        let tokenized = TokenizedPair::new(pair);
        let units = Wym::default().decision_units(&tokenized);
        // Same word in different attributes must NOT pair.
        assert!(units.iter().all(|u| u.member_indices.len() == 1));
    }

    #[test]
    fn typo_variants_still_pair() {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["panasonic tv".into()]),
            Record::new(1, vec!["panasonik tv".into()]),
        )
        .unwrap();
        let tokenized = TokenizedPair::new(pair);
        let units = Wym::default().decision_units(&tokenized);
        let pairs: Vec<_> = units
            .iter()
            .filter(|u| u.member_indices.len() == 2)
            .collect();
        assert_eq!(
            pairs.len(),
            2,
            "both brand (typo) and tv should pair: {units:?}"
        );
    }

    #[test]
    fn greedy_matching_is_one_to_one() {
        // Two identical left words, one right word: only one pairing.
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["dup dup".into()]),
            Record::new(1, vec!["dup".into()]),
        )
        .unwrap();
        let tokenized = TokenizedPair::new(pair);
        let units = Wym::default().decision_units(&tokenized);
        let paired = units.iter().filter(|u| u.member_indices.len() == 2).count();
        assert_eq!(paired, 1);
        let covered: usize = units.iter().map(|u| u.member_indices.len()).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn wym_finds_planted_evidence_as_one_unit() {
        let wym = Wym::new(WymOptions {
            samples: 300,
            ..Default::default()
        });
        let expl = wym.explain(&magic_matcher(), &magic_pair()).unwrap();
        // The "magic"+"magic" unit carries the decision; its two members
        // share the top weight.
        let ranked = expl.ranked_indices();
        assert!(
            ranked[..2].contains(&0) && ranked[..2].contains(&3),
            "{ranked:?} weights {:?}",
            expl.weights
        );
        assert_eq!(
            expl.weights[0], expl.weights[3],
            "paired words share the unit weight"
        );
        assert!(expl.surrogate_r2 > 0.5);
    }

    #[test]
    fn wym_is_deterministic() {
        let wym = Wym::default();
        let a = wym.explain(&magic_matcher(), &magic_pair()).unwrap();
        let b = wym.explain(&magic_matcher(), &magic_pair()).unwrap();
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let empty = EntityPair::new(
            schema,
            Record::new(0, vec!["".into()]),
            Record::new(1, vec!["".into()]),
        )
        .unwrap();
        assert!(Wym::default().explain(&magic_matcher(), &empty).is_err());
        let zero = Wym::new(WymOptions {
            samples: 0,
            ..Default::default()
        });
        assert!(zero.explain(&magic_matcher(), &magic_pair()).is_err());
    }
}
