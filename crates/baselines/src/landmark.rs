//! Landmark Explanation (Baraldi et al.): explain each record of the pair
//! separately while holding the *other* record fixed as a landmark, then
//! recombine the two half-explanations. For predicted non-matches the
//! perturbed side is augmented by *injecting* the landmark's tokens, so
//! drop-perturbations can also express "adding overlap raises the score" —
//! the double-entity generation trick of the original system.

use crew_core::{
    fit_word_surrogate, query_pairs, words_of, Explainer, PerturbationSet, SurrogateOptions,
    WordExplanation,
};
use em_data::{EntityPair, MaskedPairBuffer, Side, TokenizedPair};
use em_matchers::Matcher;
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};

/// Landmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct LandmarkOptions {
    /// Perturbation samples *per side*.
    pub samples_per_side: usize,
    pub kernel_width: f64,
    pub lambda: f64,
    pub seed: u64,
    /// Augment perturbations with landmark-token injection when the model
    /// predicts non-match.
    pub injection: bool,
    /// Worker threads for model queries (1 = sequential).
    pub threads: usize,
}

impl Default for LandmarkOptions {
    fn default() -> Self {
        LandmarkOptions {
            samples_per_side: 128,
            kernel_width: 0.75,
            lambda: 1e-3,
            seed: 0x1a17d,
            injection: true,
            threads: 1,
        }
    }
}

/// The Landmark explainer.
pub struct Landmark {
    options: LandmarkOptions,
}

impl Landmark {
    pub fn new(options: LandmarkOptions) -> Self {
        Landmark { options }
    }

    /// Explain one side with the other as landmark. Returns weights for the
    /// side's word indices (parallel to `side_indices`).
    fn explain_side(
        &self,
        matcher: &dyn Matcher,
        tokenized: &TokenizedPair,
        side: Side,
        inject: bool,
    ) -> Result<(Vec<usize>, Vec<f64>, f64, f64), crew_core::ExplainError> {
        let side_indices = tokenized.side_indices(side);
        if side_indices.is_empty() {
            return Ok((side_indices, Vec::new(), 0.0, 1.0));
        }
        let n_total = tokenized.len();
        let m = side_indices.len();
        let mut rng = StdRng::seed_from_u64(self.options.seed ^ (side as u64 + 1));

        // Landmark tokens to inject: the other record's words, targeted at
        // this side's aligned attributes.
        let landmark_words: Vec<(usize, String)> = tokenized
            .words()
            .iter()
            .filter(|w| w.side != side)
            .map(|w| (w.attribute, w.text.clone()))
            .collect();

        // Sample masks over this side only.
        let mut masks: Vec<Vec<bool>> = vec![vec![true; n_total]];
        let mut inject_flags: Vec<bool> = vec![false];
        for s in 0..self.options.samples_per_side {
            let mut mask = vec![true; n_total];
            let n_drop = rng.gen_range(1..=m.max(2) - 1).max(1);
            let mut order = side_indices.clone();
            for i in 0..n_drop.min(m - 1) {
                let j = rng.gen_range(i..m);
                order.swap(i, j);
            }
            for &i in order.iter().take(n_drop) {
                mask[i] = false;
            }
            masks.push(mask);
            // Half the samples get landmark injection when enabled.
            inject_flags.push(inject && s % 2 == 1);
        }

        let injections: Vec<(Side, usize, String)> = landmark_words
            .iter()
            .map(|(attr, text)| (side, *attr, text.clone()))
            .collect();
        let mut buffer = MaskedPairBuffer::new(tokenized);
        let pairs: Vec<EntityPair> = masks
            .iter()
            .zip(&inject_flags)
            .map(|(mask, &inj)| {
                if inj {
                    buffer.apply_with_injections(mask, &injections).clone()
                } else {
                    buffer.apply(mask).clone()
                }
            })
            .collect();
        let responses = query_pairs(&pairs, matcher, self.options.threads);

        // Restrict the design to this side's words.
        let sub_masks: Vec<Vec<bool>> = masks
            .iter()
            .map(|mask| side_indices.iter().map(|&i| mask[i]).collect())
            .collect();
        let kept_fraction: Vec<f64> = sub_masks
            .iter()
            .map(|sm| sm.iter().filter(|&&b| b).count() as f64 / m as f64)
            .collect();
        let set = PerturbationSet {
            masks: sub_masks,
            responses,
            kept_fraction,
        };
        let fit = fit_word_surrogate(
            &set,
            &SurrogateOptions {
                kernel_width: self.options.kernel_width,
                lambda: self.options.lambda,
            },
        )?;
        Ok((side_indices, fit.weights, set.responses[0], fit.r_squared))
    }
}

impl Default for Landmark {
    fn default() -> Self {
        Landmark::new(LandmarkOptions::default())
    }
}

impl Explainer for Landmark {
    fn name(&self) -> &str {
        "landmark"
    }

    fn explain(
        &self,
        matcher: &dyn Matcher,
        pair: &EntityPair,
    ) -> Result<WordExplanation, crew_core::ExplainError> {
        let tokenized = TokenizedPair::new(pair.clone());
        if tokenized.is_empty() {
            return Err(crew_core::ExplainError::EmptyPair);
        }
        let base = matcher.predict_proba(pair);
        let inject = self.options.injection && base < matcher.threshold();

        let (li, lw, _, lr2) = self.explain_side(matcher, &tokenized, Side::Left, inject)?;
        let (ri, rw, _, rr2) = self.explain_side(matcher, &tokenized, Side::Right, inject)?;

        let mut weights = vec![0.0; tokenized.len()];
        for (&i, &w) in li.iter().zip(&lw) {
            weights[i] = w;
        }
        for (&i, &w) in ri.iter().zip(&rw) {
            weights[i] = w;
        }
        Ok(WordExplanation {
            explainer: "landmark".to_string(),
            words: words_of(&tokenized),
            weights,
            base_score: base,
            intercept: 0.0,
            surrogate_r2: 0.5 * (lr2 + rr2),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{magic_matcher, magic_pair};
    use em_data::{Record, Schema};
    use std::sync::Arc;

    #[test]
    fn landmark_finds_planted_evidence_on_both_sides() {
        let lm = Landmark::new(LandmarkOptions {
            samples_per_side: 300,
            ..Default::default()
        });
        let expl = lm.explain(&magic_matcher(), &magic_pair()).unwrap();
        // magic tokens at 0 (left) and 3 (right) must dominate their sides.
        assert!(expl.weights[0] > expl.weights[1].abs());
        assert!(expl.weights[0] > expl.weights[2].abs());
        assert!(expl.weights[3] > expl.weights[4].abs());
        assert!(expl.weights[3] > expl.weights[5].abs());
    }

    #[test]
    fn injection_helps_non_match_pairs() {
        // Right record lacks "magic": without injection, dropping left
        // tokens never changes the 0.1 score and the explanation is flat.
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = em_data::EntityPair::new(
            schema,
            Record::new(0, vec!["magic alpha beta".into()]),
            Record::new(1, vec!["gamma delta".into()]),
        )
        .unwrap();
        let with = Landmark::new(LandmarkOptions {
            samples_per_side: 300,
            injection: true,
            ..Default::default()
        })
        .explain(&magic_matcher(), &pair)
        .unwrap();
        let without = Landmark::new(LandmarkOptions {
            samples_per_side: 300,
            injection: false,
            ..Default::default()
        })
        .explain(&magic_matcher(), &pair)
        .unwrap();
        let mass = |e: &WordExplanation| e.weights.iter().map(|w| w.abs()).sum::<f64>();
        assert!(
            mass(&with) > mass(&without),
            "injection should produce informative weights: {} vs {}",
            mass(&with),
            mass(&without)
        );
    }

    #[test]
    fn one_sided_pair_is_handled() {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = em_data::EntityPair::new(
            schema,
            Record::new(0, vec!["magic words here".into()]),
            Record::new(1, vec!["".into()]),
        )
        .unwrap();
        let lm = Landmark::default();
        let expl = lm.explain(&magic_matcher(), &pair).unwrap();
        assert_eq!(expl.weights.len(), 3);
    }

    #[test]
    fn landmark_is_deterministic() {
        let lm = Landmark::default();
        let a = lm.explain(&magic_matcher(), &magic_pair()).unwrap();
        let b = lm.explain(&magic_matcher(), &magic_pair()).unwrap();
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn empty_pair_is_error() {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = em_data::EntityPair::new(
            schema,
            Record::new(0, vec!["".into()]),
            Record::new(1, vec!["".into()]),
        )
        .unwrap();
        assert!(Landmark::default()
            .explain(&magic_matcher(), &pair)
            .is_err());
    }
}
