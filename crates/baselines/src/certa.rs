//! CERTA (Teofili et al.): saliency from counterfactual record
//! substitutions. For every (side, attribute) cell the value is swapped
//! with values drawn from a support set of records; the attribute's
//! saliency is how often/how much those substitutions move the prediction.
//! Attribute saliency is then distributed down to the attribute's words,
//! signed by the effect of dropping the whole cell — giving CERTA its
//! characteristic attribute-granular (coarse) explanations.

use crew_core::{query_pairs, words_of, Explainer, WordExplanation};
use em_data::{Dataset, EntityPair, Record, Side, TokenizedPair};
use em_matchers::Matcher;
use em_rngs::rngs::StdRng;
use em_rngs::seq::SliceRandom;
use em_rngs::SeedableRng;

/// CERTA configuration.
#[derive(Debug, Clone, Copy)]
pub struct CertaOptions {
    /// Counterfactual substitutions per cell.
    pub substitutions: usize,
    pub seed: u64,
    /// Worker threads for model queries (1 = sequential).
    pub threads: usize,
}

impl Default for CertaOptions {
    fn default() -> Self {
        CertaOptions {
            substitutions: 12,
            seed: 0xce47a,
            threads: 1,
        }
    }
}

/// The CERTA explainer. Holds a support set of records sampled from the
/// dataset the model operates on.
pub struct Certa {
    support: Vec<Record>,
    options: CertaOptions,
}

impl Certa {
    /// Build from an explicit support set.
    pub fn new(
        support: Vec<Record>,
        options: CertaOptions,
    ) -> Result<Self, crew_core::ExplainError> {
        if support.is_empty() {
            return Err(crew_core::ExplainError::NoSamples);
        }
        Ok(Certa { support, options })
    }

    /// Sample a support set from a dataset (both records of up to
    /// `max_records` pairs).
    pub fn from_dataset(
        dataset: &Dataset,
        max_records: usize,
        options: CertaOptions,
    ) -> Result<Self, crew_core::ExplainError> {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut support: Vec<Record> = Vec::with_capacity(max_records);
        let mut idx: Vec<usize> = (0..dataset.len()).collect();
        idx.shuffle(&mut rng);
        for i in idx {
            let ex = &dataset.examples()[i];
            support.push(ex.pair.left().clone());
            if support.len() >= max_records {
                break;
            }
            support.push(ex.pair.right().clone());
            if support.len() >= max_records {
                break;
            }
        }
        Certa::new(support, options)
    }
}

impl Explainer for Certa {
    fn name(&self) -> &str {
        "certa"
    }

    fn explain(
        &self,
        matcher: &dyn Matcher,
        pair: &EntityPair,
    ) -> Result<WordExplanation, crew_core::ExplainError> {
        let tokenized = TokenizedPair::new(pair.clone());
        if tokenized.is_empty() {
            return Err(crew_core::ExplainError::EmptyPair);
        }
        let base = matcher.predict_proba(pair);
        let n_attrs = pair.schema().len();
        let mut rng = StdRng::seed_from_u64(self.options.seed);

        // Saliency per (side, attribute).
        let mut saliency = vec![[0.0f64; 2]; n_attrs];
        for attr in 0..n_attrs {
            for (s_idx, side) in [Side::Left, Side::Right].into_iter().enumerate() {
                if tokenized.cell_indices(side, attr).is_empty() {
                    continue;
                }
                // Counterfactual substitutions from the support set, plus
                // the whole-cell drop, batched into one engine call.
                let mut order: Vec<usize> = (0..self.support.len()).collect();
                order.shuffle(&mut rng);
                let mut probes: Vec<EntityPair> =
                    Vec::with_capacity(self.options.substitutions + 1);
                for &ri in order.iter().take(self.options.substitutions) {
                    let donor = &self.support[ri];
                    if donor.len() <= attr {
                        continue;
                    }
                    let mut perturbed = pair.clone();
                    perturbed
                        .record_mut(side)
                        .set_value(attr, donor.value(attr).to_string());
                    probes.push(perturbed);
                }
                if probes.is_empty() {
                    continue;
                }
                let mut dropped = pair.clone();
                dropped.record_mut(side).set_value(attr, String::new());
                probes.push(dropped);
                let scores = query_pairs(&probes, matcher, self.options.threads);
                let (drop_score, sub_scores) = scores.split_last().expect("probes non-empty");
                let deltas: Vec<f64> = sub_scores.iter().map(|p| (p - base).abs()).collect();
                // Sign from dropping the whole cell: if removing the value
                // lowers the score the cell supports the match.
                let drop_delta = base - drop_score;
                let magnitude = deltas.iter().sum::<f64>() / deltas.len() as f64;
                saliency[attr][s_idx] = magnitude * drop_delta.signum();
            }
        }

        // Distribute cell saliency uniformly over the cell's words.
        let words = words_of(&tokenized);
        let mut weights = vec![0.0; words.len()];
        for attr in 0..n_attrs {
            for (s_idx, side) in [Side::Left, Side::Right].into_iter().enumerate() {
                let cell = tokenized.cell_indices(side, attr);
                if cell.is_empty() {
                    continue;
                }
                let share = saliency[attr][s_idx] / cell.len() as f64;
                for i in cell {
                    weights[i] = share;
                }
            }
        }
        Ok(WordExplanation {
            explainer: "certa".to_string(),
            words,
            weights,
            base_score: base,
            intercept: 0.0,
            // CERTA has no surrogate; its "fidelity" comes from true
            // counterfactual queries, report 1.0 as the neutral value.
            surrogate_r2: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{magic_matcher, magic_pair};
    use em_data::Schema;
    use std::sync::Arc;

    fn support() -> Vec<Record> {
        vec![
            Record::new(100, vec!["plain words".into()]),
            Record::new(101, vec!["other filler".into()]),
            Record::new(102, vec!["more noise tokens".into()]),
        ]
    }

    #[test]
    fn certa_assigns_uniform_weights_within_cells() {
        let certa = Certa::new(support(), CertaOptions::default()).unwrap();
        let expl = certa.explain(&magic_matcher(), &magic_pair()).unwrap();
        // magic_pair: one attribute, 3 words each side; all words of one
        // cell share the same weight.
        assert_eq!(expl.weights[0], expl.weights[1]);
        assert_eq!(expl.weights[1], expl.weights[2]);
        assert_eq!(expl.weights[3], expl.weights[4]);
    }

    #[test]
    fn saliency_positive_for_supporting_cells() {
        // Replacing either title with support text destroys the match, and
        // dropping the cell lowers the score → positive weights.
        let certa = Certa::new(support(), CertaOptions::default()).unwrap();
        let expl = certa.explain(&magic_matcher(), &magic_pair()).unwrap();
        assert!(expl.weights[0] > 0.0, "weights: {:?}", expl.weights);
        assert!(expl.weights[3] > 0.0);
        assert_eq!(expl.base_score, 0.9);
    }

    #[test]
    fn empty_support_is_rejected() {
        assert!(Certa::new(vec![], CertaOptions::default()).is_err());
    }

    #[test]
    fn from_dataset_collects_records() {
        use em_synth::{generate, Family, GeneratorConfig};
        let d = generate(
            Family::Beers,
            GeneratorConfig {
                entities: 20,
                pairs: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let certa = Certa::from_dataset(&d, 16, CertaOptions::default()).unwrap();
        assert_eq!(certa.support.len(), 16);
    }

    #[test]
    fn certa_is_deterministic() {
        let certa = Certa::new(support(), CertaOptions::default()).unwrap();
        let a = certa.explain(&magic_matcher(), &magic_pair()).unwrap();
        let b = certa.explain(&magic_matcher(), &magic_pair()).unwrap();
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn null_cells_get_zero_weight() {
        let schema = Arc::new(Schema::new(vec!["t", "extra"]));
        let pair = em_data::EntityPair::new(
            schema,
            Record::new(0, vec!["magic one".into(), "".into()]),
            Record::new(1, vec!["magic two".into(), "filler".into()]),
        )
        .unwrap();
        let support = vec![
            Record::new(100, vec!["plain words".into(), "x".into()]),
            Record::new(101, vec!["other".into(), "y".into()]),
        ];
        let certa = Certa::new(support, CertaOptions::default()).unwrap();
        let expl = certa.explain(&magic_matcher(), &pair).unwrap();
        // All weights are finite; the left "extra" cell is empty so only 5
        // words exist, none with NaN.
        assert_eq!(expl.weights.len(), 5);
        assert!(expl.weights.iter().all(|w| w.is_finite()));
    }
}
