//! Mojito (Di Cicco et al.): LIME adapted to EM with two EM-aware
//! perturbation modes.
//!
//! - **DROP** explains predicted matches: delete tokens and watch the score
//!   fall (same mechanics as LIME but attribute-aware sampling);
//! - **COPY** explains predicted non-matches: copy a token from one record
//!   into the aligned attribute of the other and watch the score rise —
//!   each token's feature is "was it copied", so attributions answer *"what
//!   would make these match?"*.
//!
//! `MojitoMode::Auto` picks DROP/COPY from the model's own prediction, as
//! the original tool does.

use crew_core::{
    estimate_word_importance, words_of, Explainer, MaskStrategy, PerturbOptions, PerturbationSet,
    SurrogateOptions, WordExplanation,
};
use em_data::{EntityPair, Side, TokenizedPair};
use em_matchers::Matcher;
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};

/// Which perturbation mode to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MojitoMode {
    Drop,
    Copy,
    /// DROP when the model predicts match, COPY otherwise.
    Auto,
}

/// Mojito configuration.
#[derive(Debug, Clone, Copy)]
pub struct MojitoOptions {
    pub mode: MojitoMode,
    pub samples: usize,
    pub kernel_width: f64,
    pub lambda: f64,
    pub seed: u64,
    pub threads: usize,
}

impl Default for MojitoOptions {
    fn default() -> Self {
        MojitoOptions {
            mode: MojitoMode::Auto,
            samples: 256,
            kernel_width: 0.75,
            lambda: 1e-3,
            seed: 0x0b0,
            threads: 1,
        }
    }
}

/// The Mojito explainer.
pub struct Mojito {
    options: MojitoOptions,
}

impl Mojito {
    pub fn new(options: MojitoOptions) -> Self {
        Mojito { options }
    }

    fn explain_drop(
        &self,
        matcher: &dyn Matcher,
        tokenized: &TokenizedPair,
    ) -> Result<WordExplanation, crew_core::ExplainError> {
        let mut expl = estimate_word_importance(
            tokenized,
            matcher,
            &PerturbOptions {
                samples: self.options.samples,
                strategy: MaskStrategy::AttributeStratified,
                seed: self.options.seed,
                threads: self.options.threads,
            },
            &SurrogateOptions {
                kernel_width: self.options.kernel_width,
                lambda: self.options.lambda,
            },
            "mojito-drop",
        )?;
        expl.explainer = "mojito".to_string();
        Ok(expl)
    }

    fn explain_copy(
        &self,
        matcher: &dyn Matcher,
        tokenized: &TokenizedPair,
    ) -> Result<WordExplanation, crew_core::ExplainError> {
        let n = tokenized.len();
        if n == 0 {
            return Err(crew_core::ExplainError::EmptyPair);
        }
        if self.options.samples == 0 {
            return Err(crew_core::ExplainError::NoSamples);
        }
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let full_mask = vec![true; n];
        // Feature i = "token i was copied to the other record's aligned
        // attribute". Sample binary copy vectors; row 0 = no copies.
        let mut copy_vectors: Vec<Vec<bool>> = vec![vec![false; n]];
        for _ in 0..self.options.samples {
            let mut v: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.3)).collect();
            if v.iter().all(|&b| !b) {
                v[rng.gen_range(0..n)] = true;
            }
            copy_vectors.push(v);
        }
        let words = tokenized.words();
        let pairs: Vec<EntityPair> = copy_vectors
            .iter()
            .map(|v| {
                let injections: Vec<(Side, usize, String)> = v
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c)
                    .map(|(i, _)| {
                        let w = &words[i];
                        (w.side.other(), w.attribute, w.text.clone())
                    })
                    .collect();
                tokenized.apply_mask_with_injections(&full_mask, &injections)
            })
            .collect();
        let responses = crew_core::query_pairs(&pairs, matcher, self.options.threads);
        // Proximity: samples with fewer copies are closer to the original.
        let kept_fraction: Vec<f64> = copy_vectors
            .iter()
            .map(|v| 1.0 - v.iter().filter(|&&b| b).count() as f64 / n as f64)
            .collect();
        let set = PerturbationSet {
            masks: copy_vectors
                .iter()
                .map(|v| v.iter().map(|&b| !b).collect())
                .collect(),
            responses,
            kept_fraction,
        };
        // Fit on the copy indicators: rebuild design from the original copy
        // vectors (mask = NOT copied, so invert back).
        let fit = crew_core::fit_word_surrogate(
            &PerturbationSet {
                masks: set
                    .masks
                    .iter()
                    .map(|m| m.iter().map(|&b| !b).collect())
                    .collect(),
                responses: set.responses.clone(),
                kept_fraction: set.kept_fraction.clone(),
            },
            &SurrogateOptions {
                kernel_width: self.options.kernel_width,
                lambda: self.options.lambda,
            },
        )?;
        Ok(WordExplanation {
            explainer: "mojito".to_string(),
            words: words_of(tokenized),
            weights: fit.weights,
            base_score: set.responses[0],
            intercept: fit.intercept,
            surrogate_r2: fit.r_squared,
        })
    }
}

impl Default for Mojito {
    fn default() -> Self {
        Mojito::new(MojitoOptions::default())
    }
}

impl Explainer for Mojito {
    fn name(&self) -> &str {
        "mojito"
    }

    fn explain(
        &self,
        matcher: &dyn Matcher,
        pair: &EntityPair,
    ) -> Result<WordExplanation, crew_core::ExplainError> {
        let tokenized = TokenizedPair::new(pair.clone());
        let mode = match self.options.mode {
            MojitoMode::Auto => {
                if matcher.predict_proba(pair) >= matcher.threshold() {
                    MojitoMode::Drop
                } else {
                    MojitoMode::Copy
                }
            }
            m => m,
        };
        match mode {
            MojitoMode::Drop => self.explain_drop(matcher, &tokenized),
            MojitoMode::Copy => self.explain_copy(matcher, &tokenized),
            MojitoMode::Auto => unreachable!("resolved above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{magic_matcher, magic_pair};
    use em_data::{Record, Schema};
    use std::sync::Arc;

    #[test]
    fn drop_mode_finds_planted_evidence() {
        let mojito = Mojito::new(MojitoOptions {
            mode: MojitoMode::Drop,
            samples: 400,
            ..Default::default()
        });
        let expl = mojito.explain(&magic_matcher(), &magic_pair()).unwrap();
        let ranked = expl.ranked_indices();
        assert!(
            ranked[..2].contains(&0) && ranked[..2].contains(&3),
            "{ranked:?}"
        );
    }

    #[test]
    fn copy_mode_surfaces_what_would_make_a_match() {
        // Non-matching pair: only the left has "magic". Copying it to the
        // right flips the MagicMatcher to 0.9 — so the left "magic" token
        // should get the highest copy attribution.
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = em_data::EntityPair::new(
            schema,
            Record::new(0, vec!["magic alpha".into()]),
            Record::new(1, vec!["beta gamma".into()]),
        )
        .unwrap();
        let mojito = Mojito::new(MojitoOptions {
            mode: MojitoMode::Copy,
            samples: 300,
            ..Default::default()
        });
        let expl = mojito.explain(&magic_matcher(), &pair).unwrap();
        assert_eq!(expl.words[0].text, "magic");
        let ranked = expl.ranked_indices();
        assert_eq!(
            ranked[0], 0,
            "copying 'magic' should rank first: {:?}",
            expl.weights
        );
        assert!(expl.weights[0] > 0.0);
        assert!(expl.base_score < 0.5);
    }

    #[test]
    fn auto_mode_picks_by_prediction() {
        // Match pair → drop branch; base score is the matched probability.
        let mojito = Mojito::default();
        let expl = mojito.explain(&magic_matcher(), &magic_pair()).unwrap();
        assert_eq!(expl.base_score, 0.9);

        // Non-match pair → copy branch; base stays at the unperturbed 0.1.
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = em_data::EntityPair::new(
            schema,
            Record::new(0, vec!["magic only left".into()]),
            Record::new(1, vec!["nothing here".into()]),
        )
        .unwrap();
        let expl2 = mojito.explain(&magic_matcher(), &pair).unwrap();
        assert!((expl2.base_score - 0.1).abs() < 1e-12);
    }

    #[test]
    fn copy_mode_is_deterministic() {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = em_data::EntityPair::new(
            schema,
            Record::new(0, vec!["magic a".into()]),
            Record::new(1, vec!["b".into()]),
        )
        .unwrap();
        let mojito = Mojito::new(MojitoOptions {
            mode: MojitoMode::Copy,
            ..Default::default()
        });
        let a = mojito.explain(&magic_matcher(), &pair).unwrap();
        let b = mojito.explain(&magic_matcher(), &pair).unwrap();
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn zero_samples_rejected_in_copy_mode() {
        let mojito = Mojito::new(MojitoOptions {
            mode: MojitoMode::Copy,
            samples: 0,
            ..Default::default()
        });
        assert!(mojito.explain(&magic_matcher(), &magic_pair()).is_err());
    }
}
