//! The perturbation engine: sample word-drop masks, rebuild textual pairs,
//! and query the matcher — optionally in parallel. All perturbation-based
//! explainers (CREW, LIME, Mojito, Landmark, LEMON) share this substrate,
//! so score differences reflect algorithms rather than plumbing.
//!
//! Query execution is batched and cache-aware: identical masks are
//! queried once (a dedup memo), pairs are rebuilt through a reusable
//! [`MaskedPairBuffer`] instead of per-sample allocation, blocks of
//! rebuilt pairs go through [`Matcher::predict_proba_batch`] so
//! vectorisable models amortise feature extraction, and blocks are
//! distributed over the shared `em-pool` worker pool. Each response
//! depends only on its own mask, so results are bitwise-identical at any
//! thread count, block size, and on the batched vs scalar matcher paths.

use em_data::{EntityPair, MaskedPairBuffer, Side, TokenizedPair};
use em_matchers::Matcher;
use em_rngs::rngs::StdRng;
use em_rngs::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// How drop masks are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskStrategy {
    /// LIME-for-text style: per sample, choose a drop count uniformly in
    /// `1..=n-1` and drop that many uniformly chosen words.
    UniformCount,
    /// Independent per-word keep with probability 0.5.
    Bernoulli,
    /// Attribute-stratified: like `UniformCount` but drops are spread over
    /// attributes proportionally, so a sample never silently concentrates
    /// on one attribute (CREW's schema-aware sampler).
    AttributeStratified,
    /// Only perturb one side, keeping the other fixed (Landmark-style).
    SingleSide(Side),
}

/// Options for perturbation sampling.
#[derive(Debug, Clone, Copy)]
pub struct PerturbOptions {
    /// Number of perturbed samples (the all-kept sample is added on top).
    pub samples: usize,
    pub strategy: MaskStrategy,
    pub seed: u64,
    /// Number of worker threads for model queries (1 = sequential).
    pub threads: usize,
}

impl Default for PerturbOptions {
    fn default() -> Self {
        PerturbOptions {
            samples: 256,
            strategy: MaskStrategy::AttributeStratified,
            seed: 0xc4e4,
            threads: 1,
        }
    }
}

/// A perturbation sample: masks (true = word kept) and the matcher's
/// response on each rebuilt pair. Row 0 is always the unperturbed pair.
#[derive(Debug, Clone)]
pub struct PerturbationSet {
    pub masks: Vec<Vec<bool>>,
    pub responses: Vec<f64>,
    /// Fraction of words kept per sample (cached for kernels).
    pub kept_fraction: Vec<f64>,
}

impl PerturbationSet {
    /// Number of samples (including the unperturbed row 0).
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Model probability on the original pair.
    pub fn base_score(&self) -> f64 {
        self.responses[0]
    }

    /// Approximate resident heap bytes of this set — the accounting unit
    /// of the byte-budgeted stores (masks dominate: one byte per word per
    /// sample the way `Vec<bool>` stores them).
    pub fn approx_bytes(&self) -> usize {
        let masks: usize = self.masks.iter().map(|m| m.len() + 24).sum();
        masks + (self.responses.len() + self.kept_fraction.len()) * 8 + 64
    }
}

/// Generate drop masks for a tokenized pair (without querying any model).
pub fn sample_masks(
    tokenized: &TokenizedPair,
    opts: &PerturbOptions,
) -> Result<Vec<Vec<bool>>, crate::ExplainError> {
    let n = tokenized.len();
    if n == 0 {
        return Err(crate::ExplainError::EmptyPair);
    }
    if opts.samples == 0 {
        return Err(crate::ExplainError::NoSamples);
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut masks = Vec::with_capacity(opts.samples + 1);
    masks.push(vec![true; n]); // row 0: original
    let perturbable: Vec<usize> = match opts.strategy {
        MaskStrategy::SingleSide(side) => tokenized.side_indices(side),
        _ => (0..n).collect(),
    };
    if perturbable.is_empty() {
        return Err(crate::ExplainError::EmptyPair);
    }
    for _ in 0..opts.samples {
        let mut mask = vec![true; n];
        match opts.strategy {
            MaskStrategy::Bernoulli => {
                for &i in &perturbable {
                    mask[i] = rng.gen_bool(0.5);
                }
                // Never emit the all-dropped mask on this path either.
                if perturbable.iter().all(|&i| !mask[i]) {
                    mask[perturbable[rng.gen_range(0..perturbable.len())]] = true;
                }
            }
            MaskStrategy::UniformCount | MaskStrategy::SingleSide(_) => {
                let max_drop = perturbable.len().max(2) - 1;
                let n_drop = rng.gen_range(1..=max_drop.max(1));
                let mut order = perturbable.clone();
                partial_shuffle(&mut order, n_drop, &mut rng);
                for &i in order.iter().take(n_drop) {
                    mask[i] = false;
                }
            }
            MaskStrategy::AttributeStratified => {
                // Choose a global drop fraction, then apply it within every
                // non-empty attribute group independently.
                let frac: f64 = rng.gen_range(0.1..0.9);
                for group in tokenized.attribute_groups() {
                    if group.is_empty() {
                        continue;
                    }
                    let n_drop = ((group.len() as f64 * frac).round() as usize).min(group.len());
                    let mut order = group.clone();
                    partial_shuffle(&mut order, n_drop, &mut rng);
                    for &i in order.iter().take(n_drop) {
                        mask[i] = false;
                    }
                }
                if mask.iter().all(|&m| !m) {
                    mask[rng.gen_range(0..n)] = true;
                }
            }
        }
        masks.push(mask);
    }
    Ok(masks)
}

/// Fisher-Yates prefix shuffle: after the call the first `k` items are a
/// uniform random sample without replacement.
fn partial_shuffle(items: &mut [usize], k: usize, rng: &mut StdRng) {
    let n = items.len();
    for i in 0..k.min(n.saturating_sub(1)) {
        let j = rng.gen_range(i..n);
        items.swap(i, j);
    }
}

/// Number of pairs handed to one [`Matcher::predict_proba_batch`] call
/// when blocks are fanned out over pool workers. Large enough to
/// amortise the per-batch feature caches, small enough that blocks
/// load-balance across workers. On the inline path the whole query is a
/// single block: masked cell values recur across the full mask set, so
/// one batch maximises per-call cache hits. Block size never changes
/// results — batch prediction is bitwise-identical to the scalar loop.
const QUERY_BLOCK: usize = 32;

/// Run `total` items in blocks: one block spanning everything when the
/// query stays inline (no thread budget, no live pool workers, or too
/// few items to split), [`QUERY_BLOCK`]-sized blocks over the shared
/// pool otherwise. `run_block` receives `(start, end)` item ranges.
fn run_blocked(total: usize, threads: usize, run_block: &(dyn Fn(usize, usize) + Sync)) {
    let pool = em_pool::global();
    if threads <= 1 || pool.workers() == 0 || total <= QUERY_BLOCK {
        if total > 0 {
            em_obs::gauge!("perturb/batch_size", total as u64);
            run_block(0, total);
        }
    } else {
        let n_blocks = total.div_ceil(QUERY_BLOCK);
        pool.run(n_blocks, threads, &|b| {
            let start = b * QUERY_BLOCK;
            let end = (start + QUERY_BLOCK).min(total);
            em_obs::gauge!("perturb/batch_size", (end - start) as u64);
            run_block(start, end);
        });
    }
}

/// Query the matcher on every masked rebuild of the pair.
///
/// Identical masks are queried once and their response is shared (drop
/// sampling on short pairs repeats masks often). Unique masks are
/// processed in blocks: each block rebuilds its pairs through one
/// [`MaskedPairBuffer`] and issues a single batched prediction; blocks
/// run on the shared worker pool when `threads > 1`. Responses land in
/// per-mask slots, so the output is independent of scheduling.
pub fn query_masks(
    tokenized: &TokenizedPair,
    masks: &[Vec<bool>],
    matcher: &dyn Matcher,
    threads: usize,
) -> Vec<f64> {
    let _span = em_obs::span!("perturb/query");
    // Dedup memo: input index → unique slot, unique slot → first input.
    let mut first_seen: HashMap<&[bool], usize> = HashMap::with_capacity(masks.len());
    let mut slot_of: Vec<usize> = Vec::with_capacity(masks.len());
    let mut unique: Vec<usize> = Vec::with_capacity(masks.len());
    for (i, mask) in masks.iter().enumerate() {
        let next = unique.len();
        let slot = *first_seen.entry(mask.as_slice()).or_insert(next);
        if slot == next {
            unique.push(i);
        }
        slot_of.push(slot);
    }

    em_obs::counter!("perturb/masks", masks.len() as u64);
    em_obs::counter!("perturb/unique_masks", unique.len() as u64);
    em_obs::counter!("perturb/pairs_queried", unique.len() as u64);

    // f64 bit-patterns behind atomics: blocks write disjoint slots, and
    // the atomic store keeps the fan-out free of unsafe aliasing.
    let slots: Vec<AtomicU64> = (0..unique.len()).map(|_| AtomicU64::new(0)).collect();
    run_blocked(unique.len(), threads, &|start, end| {
        let mut buffer = MaskedPairBuffer::new(tokenized);
        let pairs: Vec<EntityPair> = unique[start..end]
            .iter()
            .map(|&i| buffer.apply(&masks[i]).clone())
            .collect();
        for (slot, p) in (start..end).zip(matcher.predict_proba_batch(&pairs)) {
            slots[slot].store(p.to_bits(), Ordering::SeqCst);
        }
    });
    slot_of
        .iter()
        .map(|&slot| f64::from_bits(slots[slot].load(Ordering::SeqCst)))
        .collect()
}

/// Query the matcher on a slice of pre-built pairs, in batched blocks,
/// on the shared pool when `threads > 1` — the substrate for explainers
/// whose perturbations are not pure drop masks (injection and
/// substitution loops in Landmark, LEMON, Mojito-COPY, CERTA).
///
/// Output order matches input order and is independent of scheduling.
pub fn query_pairs(pairs: &[EntityPair], matcher: &dyn Matcher, threads: usize) -> Vec<f64> {
    let _span = em_obs::span!("perturb/query");
    em_obs::counter!("perturb/pairs_queried", pairs.len() as u64);
    let slots: Vec<AtomicU64> = (0..pairs.len()).map(|_| AtomicU64::new(0)).collect();
    run_blocked(pairs.len(), threads, &|start, end| {
        for (slot, p) in (start..end).zip(matcher.predict_proba_batch(&pairs[start..end])) {
            slots[slot].store(p.to_bits(), Ordering::SeqCst);
        }
    });
    slots
        .iter()
        .map(|slot| f64::from_bits(slot.load(Ordering::SeqCst)))
        .collect()
}

/// Sample masks and query the matcher in one step.
///
/// Guards against misbehaving models: a non-finite probability from the
/// matcher is reported as [`crate::ExplainError::NonFiniteModelOutput`]
/// instead of silently corrupting the surrogate fit; out-of-range finite
/// values are clamped into `[0, 1]`.
pub fn perturb(
    tokenized: &TokenizedPair,
    matcher: &dyn Matcher,
    opts: &PerturbOptions,
) -> Result<PerturbationSet, crate::ExplainError> {
    let masks = {
        let _span = em_obs::span!("perturb/sample");
        sample_masks(tokenized, opts)?
    };
    let mut responses = query_masks(tokenized, &masks, matcher, opts.threads);
    for (i, r) in responses.iter_mut().enumerate() {
        if !r.is_finite() {
            return Err(crate::ExplainError::NonFiniteModelOutput {
                sample: i,
                value: *r,
            });
        }
        *r = r.clamp(0.0, 1.0);
    }
    let n = tokenized.len() as f64;
    let kept_fraction = masks
        .iter()
        .map(|m| m.iter().filter(|&&b| b).count() as f64 / n)
        .collect();
    Ok(PerturbationSet {
        masks,
        responses,
        kept_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{Record, Schema};
    use std::sync::Arc;

    struct CountingMatcher;
    impl Matcher for CountingMatcher {
        fn name(&self) -> &str {
            "counting"
        }
        // Score = fraction of words present on the left title.
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            em_text::token_count(pair.left().value(0)) as f64 / 4.0
        }
    }

    fn tokenized() -> TokenizedPair {
        let schema = Arc::new(Schema::new(vec!["title", "brand"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["one two three four".into(), "acme".into()]),
            Record::new(1, vec!["one two".into(), "acme".into()]),
        )
        .unwrap();
        TokenizedPair::new(pair)
    }

    #[test]
    fn row_zero_is_unperturbed() {
        let tp = tokenized();
        let set = perturb(&tp, &CountingMatcher, &PerturbOptions::default()).unwrap();
        assert!(set.masks[0].iter().all(|&b| b));
        assert_eq!(set.base_score(), 1.0);
        assert_eq!(set.kept_fraction[0], 1.0);
        assert_eq!(set.len(), 257);
    }

    #[test]
    fn masks_are_deterministic_per_seed() {
        let tp = tokenized();
        let opts = PerturbOptions {
            samples: 50,
            ..Default::default()
        };
        let a = sample_masks(&tp, &opts).unwrap();
        let b = sample_masks(&tp, &opts).unwrap();
        assert_eq!(a, b);
        let opts2 = PerturbOptions { seed: 999, ..opts };
        let c = sample_masks(&tp, &opts2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn no_mask_is_all_dropped() {
        let tp = tokenized();
        for strategy in [
            MaskStrategy::UniformCount,
            MaskStrategy::Bernoulli,
            MaskStrategy::AttributeStratified,
        ] {
            let opts = PerturbOptions {
                samples: 200,
                strategy,
                ..Default::default()
            };
            let masks = sample_masks(&tp, &opts).unwrap();
            for m in &masks {
                assert!(m.iter().any(|&b| b), "all-dropped mask from {strategy:?}");
            }
        }
    }

    #[test]
    fn uniform_count_always_drops_something() {
        let tp = tokenized();
        let opts = PerturbOptions {
            samples: 100,
            strategy: MaskStrategy::UniformCount,
            ..Default::default()
        };
        let masks = sample_masks(&tp, &opts).unwrap();
        for m in masks.iter().skip(1) {
            assert!(m.iter().any(|&b| !b), "a perturbed sample must drop a word");
        }
    }

    #[test]
    fn single_side_leaves_other_side_untouched() {
        let tp = tokenized();
        let opts = PerturbOptions {
            samples: 100,
            strategy: MaskStrategy::SingleSide(Side::Right),
            ..Default::default()
        };
        let masks = sample_masks(&tp, &opts).unwrap();
        let left = tp.side_indices(Side::Left);
        for m in &masks {
            for &i in &left {
                assert!(m[i], "left side must stay intact");
            }
        }
    }

    #[test]
    fn responses_reflect_masks() {
        let tp = tokenized();
        let set = perturb(
            &tp,
            &CountingMatcher,
            &PerturbOptions {
                samples: 64,
                ..Default::default()
            },
        )
        .unwrap();
        for (mask, &resp) in set.masks.iter().zip(&set.responses) {
            // Count kept words in left title (indices 0..4).
            let kept = mask[..4].iter().filter(|&&b| b).count();
            assert!((resp - kept as f64 / 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let tp = tokenized();
        let opts = PerturbOptions {
            samples: 100,
            threads: 1,
            ..Default::default()
        };
        let masks = sample_masks(&tp, &opts).unwrap();
        let seq = query_masks(&tp, &masks, &CountingMatcher, 1);
        let par = query_masks(&tp, &masks, &CountingMatcher, 4);
        assert_eq!(seq, par);
    }

    /// Counts distinct model invocations through either prediction path.
    struct InvocationCounter(std::sync::atomic::AtomicUsize);
    impl Matcher for InvocationCounter {
        fn name(&self) -> &str {
            "invocation-counter"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            self.0.fetch_add(1, Ordering::SeqCst);
            em_text::token_count(pair.left().value(0)) as f64 / 4.0
        }
    }

    #[test]
    fn duplicate_masks_are_queried_once() {
        let tp = tokenized();
        let n = tp.len();
        let mut distinct = vec![vec![true; n]; 1];
        let mut with_dup = vec![false; n];
        with_dup[0] = true;
        distinct.push(with_dup.clone());
        // 64 copies of each distinct mask, interleaved.
        let masks: Vec<Vec<bool>> = (0..128).map(|i| distinct[i % 2].clone()).collect();
        let counter = InvocationCounter(std::sync::atomic::AtomicUsize::new(0));
        let responses = query_masks(&tp, &masks, &counter, 1);
        assert_eq!(counter.0.load(Ordering::SeqCst), 2, "dedup memo missed");
        // Copies share their original's response.
        for chunk in responses.chunks(2) {
            assert_eq!(chunk[0], responses[0]);
            assert_eq!(chunk[1], responses[1]);
        }
    }

    #[test]
    fn query_pairs_matches_scalar_loop_at_any_thread_count() {
        let tp = tokenized();
        let opts = PerturbOptions {
            samples: 90,
            ..Default::default()
        };
        let masks = sample_masks(&tp, &opts).unwrap();
        let pairs: Vec<EntityPair> = masks.iter().map(|m| tp.apply_mask(m)).collect();
        let want: Vec<f64> = pairs
            .iter()
            .map(|p| CountingMatcher.predict_proba(p))
            .collect();
        for threads in [1usize, 2, 8] {
            assert_eq!(query_pairs(&pairs, &CountingMatcher, threads), want);
        }
    }

    #[test]
    fn empty_pair_and_zero_samples_are_errors() {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let empty = TokenizedPair::new(
            EntityPair::new(
                Arc::clone(&schema),
                Record::new(0, vec!["".into()]),
                Record::new(1, vec!["".into()]),
            )
            .unwrap(),
        );
        assert!(matches!(
            sample_masks(&empty, &PerturbOptions::default()),
            Err(crate::ExplainError::EmptyPair)
        ));
        let tp = tokenized();
        assert!(matches!(
            sample_masks(
                &tp,
                &PerturbOptions {
                    samples: 0,
                    ..Default::default()
                }
            ),
            Err(crate::ExplainError::NoSamples)
        ));
    }

    #[test]
    fn stratified_masks_touch_every_attribute() {
        let tp = tokenized();
        let opts = PerturbOptions {
            samples: 300,
            strategy: MaskStrategy::AttributeStratified,
            ..Default::default()
        };
        let masks = sample_masks(&tp, &opts).unwrap();
        // Both the title group and the brand group must get dropped in some
        // samples.
        let brand_indices = tp.cell_indices(Side::Left, 1);
        let brand_dropped = masks.iter().any(|m| brand_indices.iter().any(|&i| !m[i]));
        assert!(
            brand_dropped,
            "stratified sampling never perturbed the brand"
        );
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use em_data::{EntityPair, Record, Schema};
    use std::sync::Arc;

    struct NanMatcher;
    impl Matcher for NanMatcher {
        fn name(&self) -> &str {
            "nan"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            // NaN once the pair loses words; finite on the original.
            if em_text::token_count(&pair.left().full_text()) < 3 {
                f64::NAN
            } else {
                0.5
            }
        }
    }

    struct OutOfRangeMatcher;
    impl Matcher for OutOfRangeMatcher {
        fn name(&self) -> &str {
            "oob"
        }
        fn predict_proba(&self, _: &EntityPair) -> f64 {
            1.7
        }
    }

    fn tokenized() -> TokenizedPair {
        let schema = Arc::new(Schema::new(vec!["t"]));
        let pair = EntityPair::new(
            schema,
            Record::new(0, vec!["one two three".into()]),
            Record::new(1, vec!["four five".into()]),
        )
        .unwrap();
        TokenizedPair::new(pair)
    }

    #[test]
    fn nan_output_is_reported_not_propagated() {
        let tp = tokenized();
        let err = perturb(
            &tp,
            &NanMatcher,
            &PerturbOptions {
                samples: 64,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::ExplainError::NonFiniteModelOutput { .. }
        ));
        let msg = format!("{err}");
        assert!(msg.contains("non-finite"));
    }

    #[test]
    fn out_of_range_output_is_clamped() {
        let tp = tokenized();
        let set = perturb(
            &tp,
            &OutOfRangeMatcher,
            &PerturbOptions {
                samples: 16,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(set.responses.iter().all(|&r| (0.0..=1.0).contains(&r)));
        assert_eq!(set.base_score(), 1.0);
    }
}
