//! Counterfactual explanations from cluster explanations: the smallest set
//! of clusters whose removal flips the matcher's decision. This is the
//! actionable reading of a CREW explanation ("the pair stops matching if
//! you take away THIS evidence"), mirroring the counterfactual output of
//! CERTA but at cluster granularity.

use crate::explanation::ClusterExplanation;
use em_data::{EntityPair, TokenizedPair};
use em_matchers::Matcher;

/// A counterfactual found by [`find_counterfactual`].
#[derive(Debug, Clone)]
pub struct Counterfactual {
    /// Indices into `ClusterExplanation::clusters` of the removed clusters.
    pub removed_clusters: Vec<usize>,
    /// Word indices removed in total.
    pub removed_words: Vec<usize>,
    /// Model probability before the removal.
    pub probability_before: f64,
    /// Model probability after the removal.
    pub probability_after: f64,
    /// The perturbed pair that realises the flip.
    pub flipped_pair: EntityPair,
}

impl Counterfactual {
    /// Number of clusters the user must discount to flip the decision —
    /// the cost of the counterfactual.
    pub fn cost(&self) -> usize {
        self.removed_clusters.len()
    }
}

/// Options for the counterfactual search.
#[derive(Debug, Clone, Copy)]
pub struct CounterfactualOptions {
    /// Maximum number of clusters to remove before giving up.
    pub max_removals: usize,
}

impl Default for CounterfactualOptions {
    fn default() -> Self {
        CounterfactualOptions { max_removals: 5 }
    }
}

/// Greedy search for a minimal flipping cluster set.
///
/// Clusters are considered in order of their relevance toward the current
/// prediction (most supporting first); at each step the cluster whose
/// removal moves the probability furthest toward the opposite class is
/// removed. Returns `Ok(None)` when no flip is found within
/// `max_removals` (the decision is robust to the explanation's evidence).
pub fn find_counterfactual(
    matcher: &dyn Matcher,
    pair: &EntityPair,
    explanation: &ClusterExplanation,
    options: CounterfactualOptions,
) -> Result<Option<Counterfactual>, crate::ExplainError> {
    let tokenized = TokenizedPair::new(pair.clone());
    let n = tokenized.len();
    if n == 0 {
        return Err(crate::ExplainError::EmptyPair);
    }
    if options.max_removals == 0 {
        return Ok(None);
    }
    let base = matcher.predict_proba(pair);
    let predicted_match = base >= matcher.threshold();

    let mut mask = vec![true; n];
    let mut removed_clusters: Vec<usize> = Vec::new();

    for _ in 0..options.max_removals.min(explanation.clusters.len()) {
        // Candidate = not-yet-removed cluster minimising the resulting
        // class score (i.e. moving hardest toward the flip).
        let mut best: Option<(usize, f64, Vec<bool>)> = None;
        for (ci, cluster) in explanation.clusters.iter().enumerate() {
            if removed_clusters.contains(&ci) {
                continue;
            }
            let mut trial = mask.clone();
            for &w in &cluster.member_indices {
                if w < n {
                    trial[w] = false;
                }
            }
            let p = matcher.predict_proba(&tokenized.apply_mask(&trial));
            let score_toward_prediction = if predicted_match { p } else { 1.0 - p };
            if best
                .as_ref()
                .is_none_or(|(_, s, _)| score_toward_prediction < *s)
            {
                best = Some((ci, score_toward_prediction, trial));
            }
        }
        let Some((ci, _, trial)) = best else {
            break;
        };
        removed_clusters.push(ci);
        mask = trial;
        let current = matcher.predict_proba(&tokenized.apply_mask(&mask));
        let flipped = (current >= matcher.threshold()) != predicted_match;
        if flipped {
            let removed_words: Vec<usize> = (0..n).filter(|&i| !mask[i]).collect();
            return Ok(Some(Counterfactual {
                removed_clusters,
                removed_words,
                probability_before: base,
                probability_after: current,
                flipped_pair: tokenized.apply_mask(&mask),
            }));
        }
    }
    Ok(None)
}

/// Robustness of a decision under its own explanation: the fraction of the
/// explanation's clusters that must be removed to flip, in `(0, 1]`;
/// `None` when the decision never flips within the budget.
pub fn explanation_robustness(
    matcher: &dyn Matcher,
    pair: &EntityPair,
    explanation: &ClusterExplanation,
) -> Result<Option<f64>, crate::ExplainError> {
    let total = explanation.clusters.len().max(1);
    let cf = find_counterfactual(
        matcher,
        pair,
        explanation,
        CounterfactualOptions {
            max_removals: total,
        },
    )?;
    Ok(cf.map(|c| c.cost() as f64 / total as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crew::{Crew, CrewOptions};
    use em_data::{Record, Schema};
    use em_embed::{EmbeddingOptions, WordEmbeddings};
    use std::sync::Arc;

    /// Matches iff both sides contain "anchor".
    struct AnchorMatcher;
    impl Matcher for AnchorMatcher {
        fn name(&self) -> &str {
            "anchor"
        }
        fn predict_proba(&self, pair: &EntityPair) -> f64 {
            let l = em_text::tokenize(&pair.left().full_text());
            let r = em_text::tokenize(&pair.right().full_text());
            if l.iter().any(|t| t == "anchor") && r.iter().any(|t| t == "anchor") {
                0.95
            } else {
                0.05
            }
        }
    }

    fn pair() -> EntityPair {
        let schema = Arc::new(Schema::new(vec!["t"]));
        EntityPair::new(
            schema,
            Record::new(0, vec!["anchor alpha beta".into()]),
            Record::new(1, vec!["anchor gamma".into()]),
        )
        .unwrap()
    }

    fn crew() -> Crew {
        let corpus: Vec<Vec<String>> = vec![em_text::tokenize("anchor alpha beta gamma anchor")];
        let emb = WordEmbeddings::train(
            corpus.iter().map(|v| v.as_slice()),
            EmbeddingOptions {
                dimensions: 8,
                ..Default::default()
            },
        )
        .unwrap();
        Crew::new(Arc::new(emb), CrewOptions::default())
    }

    #[test]
    fn counterfactual_flips_the_anchor_pair() {
        let p = pair();
        let c = crew();
        let ce = c.explain_clusters(&AnchorMatcher, &p).unwrap();
        let cf = find_counterfactual(&AnchorMatcher, &p, &ce, CounterfactualOptions::default())
            .unwrap()
            .expect("anchor pair must be flippable");
        assert!(cf.probability_before >= 0.5);
        assert!(cf.probability_after < 0.5);
        assert!(cf.cost() >= 1);
        // The flipped pair must actually lack an anchor on some side.
        assert!(AnchorMatcher.predict_proba(&cf.flipped_pair) < 0.5);
        // Removed word indices are consistent with the mask.
        assert!(!cf.removed_words.is_empty());
    }

    #[test]
    fn robust_decisions_return_none() {
        struct Constant;
        impl Matcher for Constant {
            fn name(&self) -> &str {
                "constant"
            }
            fn predict_proba(&self, _: &EntityPair) -> f64 {
                0.9
            }
        }
        let p = pair();
        let c = crew();
        let ce = c.explain_clusters(&Constant, &p).unwrap();
        let cf = find_counterfactual(&Constant, &p, &ce, CounterfactualOptions::default()).unwrap();
        assert!(cf.is_none());
        assert_eq!(explanation_robustness(&Constant, &p, &ce).unwrap(), None);
    }

    #[test]
    fn robustness_is_fraction_of_clusters() {
        let p = pair();
        let c = crew();
        let ce = c.explain_clusters(&AnchorMatcher, &p).unwrap();
        let r = explanation_robustness(&AnchorMatcher, &p, &ce)
            .unwrap()
            .unwrap();
        assert!(r > 0.0 && r <= 1.0);
    }

    #[test]
    fn zero_budget_returns_none() {
        let p = pair();
        let c = crew();
        let ce = c.explain_clusters(&AnchorMatcher, &p).unwrap();
        let cf = find_counterfactual(
            &AnchorMatcher,
            &p,
            &ce,
            CounterfactualOptions { max_removals: 0 },
        )
        .unwrap();
        assert!(cf.is_none());
    }

    #[test]
    fn greedy_removal_is_most_supporting_first() {
        // The first removed cluster must contain an anchor word (the only
        // evidence that matters).
        let p = pair();
        let c = crew();
        let ce = c.explain_clusters(&AnchorMatcher, &p).unwrap();
        let cf = find_counterfactual(&AnchorMatcher, &p, &ce, CounterfactualOptions::default())
            .unwrap()
            .unwrap();
        let first = &ce.clusters[cf.removed_clusters[0]];
        let has_anchor = first
            .member_indices
            .iter()
            .any(|&i| ce.word_level.words[i].text == "anchor");
        assert!(has_anchor, "greedy should remove anchor evidence first");
    }
}
