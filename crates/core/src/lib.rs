//! # crew-core
//!
//! CREW — **C**luste**R**s of **E**xplanation **W**ords — an explanation
//! system for entity-matching models, reproducing *"Explaining Entity
//! Matching with Clusters of Words"* (Benassi, Guerra, Paganelli, Tiano —
//! ICDE 2024).
//!
//! CREW explains a black-box matcher's decision on one candidate pair as a
//! small set of **clusters of words**, built from three knowledge sources:
//! the semantic similarity of the words (corpus-trained embeddings), their
//! arrangement into the dataset's attributes, and their importance in
//! explaining the model (perturbation attributions).
//!
//! The crate also hosts the shared substrate every baseline explainer in
//! `em-baselines` builds on: the perturbation engine ([`perturb`]), the
//! LIME-style weighted-ridge surrogate ([`surrogate`]) and the
//! [`Explainer`] trait with its common [`WordExplanation`] currency.
//!
//! ```no_run
//! use crew_core::{Crew, CrewOptions, Explainer};
//! use em_embed::{EmbeddingOptions, WordEmbeddings};
//! # fn demo(train: &em_data::Dataset, matcher: &dyn em_matchers::Matcher,
//! #         pair: &em_data::EntityPair) -> Result<(), Box<dyn std::error::Error>> {
//! let embeddings = WordEmbeddings::train_on_dataset(train, EmbeddingOptions::default())?;
//! let crew = Crew::new(std::sync::Arc::new(embeddings), CrewOptions::default());
//! let explanation = crew.explain_clusters(matcher, pair)?;
//! println!("{}", explanation.render(pair.schema()));
//! # Ok(())
//! # }
//! ```

pub mod counterfactual;
pub mod crew;
pub mod explainer;
pub mod explanation;
pub mod global;
pub mod knowledge;
pub mod perturb;
pub mod report;
pub mod surrogate;

pub use counterfactual::{
    explanation_robustness, find_counterfactual, Counterfactual, CounterfactualOptions,
};
pub use crew::{ClusterAlgorithm, Crew, CrewOptions};
pub use explainer::{estimate_word_importance, Explainer};
pub use explanation::{
    words_of, ClusterExplanation, ExplanationUnit, WordCluster, WordExplanation,
};
pub use global::{
    aggregate_explanations, explain_dataset, AttributeImportance, GlobalExplanation, RecurringWord,
};
pub use knowledge::{
    attribute_distances, combined_distances, combined_distances_with, importance_distances,
    opposite_sign_cannot_links, semantic_coherence, semantic_distances, semantic_distances_with,
    KnowledgeWeights,
};
pub use perturb::{
    perturb, query_masks, query_pairs, sample_masks, MaskStrategy, PerturbOptions, PerturbationSet,
};
pub use report::{cluster_explanation_to_json, word_explanation_to_json};
pub use surrogate::{
    fit_group_surrogate, fit_word_surrogate, kernel_weight, SurrogateFit, SurrogateOptions,
};

/// Errors from the explanation stack.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplainError {
    /// The pair has no words to explain.
    EmptyPair,
    /// Zero perturbation samples requested.
    NoSamples,
    /// Group surrogate called with no/empty groups.
    NoGroups,
    /// A group referenced a word outside the pair.
    GroupIndexOutOfRange,
    /// Kernel width must be positive.
    InvalidKernelWidth(f64),
    /// Knowledge mixing weights invalid (negative or all zero).
    InvalidWeights,
    /// Importance weight vector length mismatch.
    WeightLengthMismatch { expected: usize, got: usize },
    /// Fidelity retention target τ outside (0, 1].
    InvalidTau(f64),
    /// The matcher returned NaN or an infinity for a perturbed pair.
    NonFiniteModelOutput { sample: usize, value: f64 },
    /// Underlying solver failure.
    Linalg(em_linalg::LinalgError),
    /// Underlying clustering failure.
    Cluster(em_cluster::ClusterError),
}

impl std::fmt::Display for ExplainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExplainError::EmptyPair => write!(f, "pair has no words to explain"),
            ExplainError::NoSamples => write!(f, "perturbation sample budget must be positive"),
            ExplainError::NoGroups => write!(f, "group surrogate requires non-empty groups"),
            ExplainError::GroupIndexOutOfRange => {
                write!(f, "group references a word index outside the pair")
            }
            ExplainError::InvalidKernelWidth(w) => {
                write!(f, "kernel width must be positive, got {w}")
            }
            ExplainError::InvalidWeights => {
                write!(f, "knowledge weights must be non-negative and not all zero")
            }
            ExplainError::WeightLengthMismatch { expected, got } => {
                write!(f, "expected {expected} word weights, got {got}")
            }
            ExplainError::InvalidTau(t) => write!(f, "tau must be in (0,1], got {t}"),
            ExplainError::NonFiniteModelOutput { sample, value } => {
                write!(
                    f,
                    "matcher returned non-finite probability {value} on perturbed sample {sample}"
                )
            }
            ExplainError::Linalg(e) => write!(f, "solver failure: {e}"),
            ExplainError::Cluster(e) => write!(f, "clustering failure: {e}"),
        }
    }
}

impl std::error::Error for ExplainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExplainError::Linalg(e) => Some(e),
            ExplainError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use em_data::{EntityPair, Record, Schema, TokenizedPair};
    use propcheck::prelude::*;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn masks_always_keep_a_word(
            l in "[a-c ]{1,20}",
            r in "[a-c ]{1,20}",
            samples in 1usize..64,
            seed in 0u64..100,
        ) {
            let schema = Arc::new(Schema::new(vec!["t"]));
            let pair = EntityPair::new(
                schema,
                Record::new(0, vec![l]),
                Record::new(1, vec![r]),
            ).unwrap();
            let tp = TokenizedPair::new(pair);
            prop_assume!(!tp.is_empty());
            let opts = PerturbOptions { samples, seed, ..Default::default() };
            let masks = sample_masks(&tp, &opts).unwrap();
            prop_assert_eq!(masks.len(), samples + 1);
            for m in &masks {
                prop_assert!(m.iter().any(|&b| b));
                prop_assert_eq!(m.len(), tp.len());
            }
        }

        #[test]
        fn importance_distance_matrix_is_valid(ws in propcheck::collection::vec(-1.0f64..1.0, 2..15)) {
            let d = importance_distances(&ws);
            for i in 0..ws.len() {
                prop_assert_eq!(d[(i, i)], 0.0);
                for j in 0..ws.len() {
                    prop_assert!((0.0..=1.0).contains(&d[(i, j)]));
                    prop_assert!((d[(i, j)] - d[(j, i)]).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn kernel_weight_monotone(f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            // Keeping more words => at least as close => at least the weight.
            prop_assert!(kernel_weight(hi, 0.75) >= kernel_weight(lo, 0.75) - 1e-12);
        }
    }
}
